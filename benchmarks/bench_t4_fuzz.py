"""T4 — fuzzer throughput: differential-oracle programs per second.

The differential harness (``repro.fuzz``) is only useful if a campaign
covers enough seeds per CPU-minute, so its cost profile is tracked like
any other experiment: programs/second for the oracle with progressively
more paths enabled — interpreter-only, +VM, +pass-level verification,
and the full configuration (+PGO, +C when a compiler is present).
"""

from __future__ import annotations

import shutil
import time

import pytest

from repro.fuzz import GenConfig, OracleConfig, generate_program, run_oracle

SEEDS = 20
HAVE_CC = shutil.which("gcc") is not None

CONFIGS = [
    ("interp", dict(run_vm=False, run_c=False, run_pgo=False,
                    run_ssa=False, run_cps=False, verify_each_pass=False)),
    ("interp+vm", dict(run_c=False, run_pgo=False, run_ssa=False,
                       run_cps=False, verify_each_pass=False)),
    ("interp+vm+verify", dict(run_c=False, run_pgo=False, run_ssa=False,
                              run_cps=False)),
    ("all-paths", dict()),
]

_initialized = False


@pytest.mark.parametrize("label,overrides", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_t4_fuzz_throughput(label, overrides, report):
    table = report("T4_fuzz")
    global _initialized
    if not _initialized:
        table.columns("paths", "programs", "divergences", "seconds",
                      "programs_per_sec")
        table.note(f"{SEEDS} seeded programs per row; every 5th seed is "
                   "expression-only so the CPS/SSA baselines are "
                   "exercised in the full configuration.")
        if not HAVE_CC:
            table.note("gcc unavailable: the C path was skipped in "
                       "'all-paths'.")
        _initialized = True

    divergences = 0
    start = time.perf_counter()
    for seed in range(SEEDS):
        config = GenConfig(expr_only=True) if seed % 5 == 4 else GenConfig()
        prog = generate_program(seed, config)
        if run_oracle(prog, OracleConfig(**overrides)) is not None:
            divergences += 1
    elapsed = time.perf_counter() - start

    assert divergences == 0, f"{label}: the oracle found real divergences"
    table.row(label, SEEDS, divergences, elapsed, SEEDS / elapsed)

"""F4 — profile-guided optimization: static pipeline vs PGO pipeline.

Two compiles of every suite program, both measured by retired VM
instructions on the *bench* inputs:

* **static** — the standard pipeline with default options;
* **pgo** — the two-phase driver: optimize statically, run the *test*
  inputs against an instrumented image (training), then re-optimize
  with the collected profile (hot-loop peeling + hot-site inlining)
  and recompile.

Train/test discipline: the profile only ever sees ``test_args``; all
reported counts are measured on ``bench_args``.  Expected shape: PGO
beats static (strictly fewer instructions) on at least 3 programs and
never loses — peeling is only applied where entry values fold, and
cold sites are left alone.

``REPRO_BENCH_SMOKE=1`` shrinks the program list for the CI smoke job.
"""

from __future__ import annotations

import os

import pytest

from repro import compile_source
from repro.backend import bytecode as bc
from repro.backend.codegen import compile_world
from repro.eval import summarize_profile
from repro.profile import compile_profiled
from repro.programs.suite import ALL_PROGRAMS

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_SMOKE_NAMES = ("fannkuch", "mandelbrot", "matmul", "nqueens", "filter_image")
PROGRAMS = ([p for p in ALL_PROGRAMS if p.name in _SMOKE_NAMES]
            if _SMOKE else ALL_PROGRAMS)

_rows: dict[str, dict] = {}
_initialized = False


def _instructions(compiled, program) -> tuple[int, object]:
    """(retired instructions, result) for a bench run on a fresh VM."""
    from repro.core import fold
    from repro.core import types as ct

    param_types, _ = compiled.fn_types[program.entry]
    vm_args = [fold.canonicalize(t.kind, a) if isinstance(t, ct.PrimType)
               else a
               for a, t in zip(program.bench_args, param_types)]
    fresh_vm = bc.VM(compiled.program)
    result = fresh_vm.call(compiled.program, program.entry, *vm_args)
    return fresh_vm.executed, result


@pytest.mark.parametrize("program", PROGRAMS, ids=lambda p: p.name)
def test_f4_pgo(program, report, benchmark):
    table = report("F4_pgo")
    global _initialized
    if not _initialized:
        table.columns("program", "static_instructions", "pgo_instructions",
                      "saved", "saved_pct", "loop_iterations_trained")
        table.note(
            "trained on test_args, measured on bench_args; pgo uses "
            "hot-loop peeling + profile-driven inlining on top of the "
            "static pipeline.  Shape check: pgo < static on >= 3 "
            "programs, never worse."
        )
        _initialized = True

    static_world = compile_source(program.source, optimize=True)
    static_compiled = compile_world(static_world)
    static_instr, static_result = _instructions(static_compiled, program)

    pgo_world = compile_source(program.source, optimize=False)

    def workload(compiled, _p=program):
        compiled.call(_p.entry, *_p.test_args)

    pgo_compiled, profile, _stats = compile_profiled(pgo_world, workload)
    pgo_instr, pgo_result = _instructions(pgo_compiled, program)

    assert pgo_result == static_result, (
        f"{program.name}: PGO changed the program result"
    )

    benchmark.pedantic(pgo_compiled.call,
                       args=(program.entry, *program.bench_args),
                       rounds=3, iterations=1)
    benchmark.extra_info["static_instructions"] = static_instr
    benchmark.extra_info["pgo_instructions"] = pgo_instr

    saved = static_instr - pgo_instr
    summary = summarize_profile(profile)
    table.row(program.name, static_instr, pgo_instr, saved,
              100.0 * saved / static_instr if static_instr else 0.0,
              summary["loop_iterations"])
    _rows[program.name] = {"static": static_instr, "pgo": pgo_instr}


def test_f4_shape(report, benchmark):
    """After all programs ran: PGO wins on >= 3 and never loses."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = report("F4_pgo")
    wins = sum(1 for c in _rows.values() if c["pgo"] < c["static"])
    losses = sum(1 for c in _rows.values() if c["pgo"] > c["static"])
    table.note(f"pgo < static on {wins}/{len(_rows)} programs, "
               f"{losses} regressions")
    assert wins >= 3, f"PGO won on only {wins} programs"
    assert losses == 0, f"PGO regressed on {losses} programs"

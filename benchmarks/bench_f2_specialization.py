"""F2 — speedup from partial-evaluation-driven specialization.

Each PE workload is compiled twice: with its ``@`` markers (the online
partial evaluator specializes the marked calls) and with the markers
stripped from the source (the call stays dynamic; closure elimination
alone makes it compilable).  Both run on the shared VM; we report the
retired-instruction ratio.  Expected shape (paper): integer-factor
speedups on specialization-friendly kernels.
"""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.backend import bytecode as bc
from repro.backend.codegen import compile_world
from repro.core import fold
from repro.core import types as ct
from repro.programs import by_tag

PE_PROGRAMS = [p for p in by_tag("pe")]

_initialized = False


def _strip_markers(source: str) -> str:
    return source.replace("@", "").replace("$", "")


def _instructions(compiled, entry, args) -> int:
    param_types, _ = compiled.fn_types[entry]
    vm_args = [fold.canonicalize(t.kind, a) if isinstance(t, ct.PrimType) else a
               for a, t in zip(args, param_types)]
    vm = bc.VM(compiled.program)
    vm.call(compiled.program, entry, *vm_args)
    return vm.executed


@pytest.mark.parametrize("program", PE_PROGRAMS, ids=lambda p: p.name)
def test_f2_specialization(program, report, benchmark):
    table = report("F2_specialization")
    global _initialized
    if not _initialized:
        table.columns("program", "instrs_dynamic", "instrs_specialized",
                      "speedup", "results_agree")
        table.note(
            "instrs = retired VM instructions on bench-sized inputs; "
            "speedup = dynamic/specialized.  Expected: > 1 everywhere, "
            "large on pow-style kernels."
        )
        _initialized = True

    specialized = compile_world(compile_source(program.source))
    dynamic = compile_world(compile_source(_strip_markers(program.source)))

    args = program.bench_args
    spec_instrs = _instructions(specialized, program.entry, args)
    dyn_instrs = _instructions(dynamic, program.entry, args)
    r_spec = specialized.call(program.entry, *args)
    r_dyn = dynamic.call(program.entry, *args)

    benchmark.pedantic(specialized.call, args=(program.entry, *args),
                       rounds=3, iterations=1)
    benchmark.extra_info["speedup"] = dyn_instrs / max(spec_instrs, 1)

    agree = r_spec == r_dyn
    table.row(program.name, dyn_instrs, spec_instrs,
              dyn_instrs / max(spec_instrs, 1), agree)
    assert agree, f"{program.name}: specialization changed the result"
    assert spec_instrs <= dyn_instrs, (
        f"{program.name}: specialization made the program slower"
    )

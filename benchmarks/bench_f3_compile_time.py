"""F3 — compile-time scaling.

A generated program family (N arithmetic-heavy functions in a call
chain, each with loops) is pushed through the full pipeline at
increasing N.  Reported: wall-clock per size plus IR node counts;
shape check: close-to-linear growth (ratio of per-function cost across
sizes stays bounded).
"""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.eval import collect_world_stats

SIZES = [4, 8, 16, 32]

_times: dict[int, float] = {}
_initialized = False


def generate_program(n_functions: int) -> str:
    parts = []
    for i in range(n_functions):
        callee = f"f{i - 1}(acc, {i})" if i > 0 else "acc + seed"
        parts.append(f"""
fn f{i}(seed: i64, salt: i64) -> i64 {{
    let mut acc = seed * {i + 3} + salt;
    for k in 0..8 {{
        acc = (acc * 31 + k) % 1000003;
        if acc % 2 == 0 {{ acc += {i}; }} else {{ acc -= 1; }}
    }}
    {callee}
}}
""")
    parts.append(f"fn main(x: i64) -> i64 {{ f{n_functions - 1}(x, 1) }}")
    return "\n".join(parts)


@pytest.mark.parametrize("size", SIZES)
def test_f3_compile_time(size, report, benchmark):
    table = report("F3_compile_time")
    global _initialized
    if not _initialized:
        table.columns("functions", "loc", "continuations", "primops",
                      "mean_compile_s", "s_per_function")
        table.note("near-linear scaling expected: s_per_function roughly "
                   "flat across sizes.")
        _initialized = True

    source = generate_program(size)
    world = benchmark.pedantic(compile_source, args=(source,),
                               rounds=3, iterations=1)
    stats = collect_world_stats(world)
    mean = benchmark.stats.stats.mean
    _times[size] = mean
    table.row(size, len(source.splitlines()), stats.continuations,
              stats.primops, mean, mean / size)


def test_f3_shape(report, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = report("F3_compile_time")
    if len(_times) >= 2:
        sizes = sorted(_times)
        per_fn = [_times[s] / s for s in sizes]
        ratio = max(per_fn) / max(min(per_fn), 1e-9)
        table.note(f"per-function cost spread across sizes: {ratio:.2f}x")
        assert ratio < 8, "compile time grows far superlinearly"

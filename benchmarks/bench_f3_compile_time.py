"""F3 — compile-time scaling and the analysis cache.

Two workloads, one table:

* the generated *chain* family (N arithmetic-heavy functions in a call
  chain, each with loops) pushed through the full pipeline at
  increasing N — shape check: close-to-linear growth;
* the full evaluation suite, optimized twice per program — once with
  ``cache_analyses`` off (every pass recomputes scopes/CFGs/schedules
  from scratch) and once with the incremental analysis manager on.

What is timed is the optimization pipeline on a freshly emitted world:
parsing and IR construction are byte-for-byte identical in both arms
(the cache only exists inside the pipeline), so including them would
add an identical constant to both measurements and report dilution of
the frontend rather than the effect under study.  ``frontend_s`` is
still reported per row for context.

Every row reports both timings plus the speedup; the cached pipeline
must produce byte-identical printed IR and identical program behaviour
(the cache is an optimization, never an approximation).  The suite-wide
geometric-mean speedup is asserted to stay above 1.5x.
"""

from __future__ import annotations

import gc
import math
import time

import pytest

from repro.backend.interp import Interpreter
from repro.core.printer import print_world
from repro.core.world import World
from repro.eval import collect_world_stats
from repro.frontend import compile_to_ast, emit_module
from repro.programs.suite import ALL_PROGRAMS
from repro.transform.pipeline import OptimizeOptions, optimize

SIZES = [4, 8, 16, 32]
ROUNDS = 5

_chain_times: dict[int, float] = {}
_suite_speedups: list[float] = []
_initialized = False


def generate_program(n_functions: int) -> str:
    parts = []
    for i in range(n_functions):
        callee = f"f{i - 1}(acc, {i})" if i > 0 else "acc + seed"
        parts.append(f"""
fn f{i}(seed: i64, salt: i64) -> i64 {{
    let mut acc = seed * {i + 3} + salt;
    for k in 0..8 {{
        acc = (acc * 31 + k) % 1000003;
        if acc % 2 == 0 {{ acc += {i}; }} else {{ acc -= 1; }}
    }}
    {callee}
}}
""")
    parts.append(f"fn main(x: i64) -> i64 {{ f{n_functions - 1}(x, 1) }}")
    return "\n".join(parts)


def _emit(source: str) -> World:
    module = compile_to_ast(source)
    world = World("bench")
    emit_module(module, world)
    return world


def _timed_pair(source: str):
    """Best-of-``ROUNDS`` pipeline wall-clock for both cache modes.

    Alternating uncached/cached within each round (rather than timing
    one mode then the other) spreads scheduler and allocator noise
    evenly across both; the min filters out the remaining outliers.
    Returns ``(world_uncached, world_cached, uncached_s, cached_s,
    frontend_s)``.
    """
    best = {False: float("inf"), True: float("inf")}
    worlds = {False: None, True: None}
    frontend = float("inf")
    for _ in range(ROUNDS):
        for cache in (False, True):
            # Reclaim the previous round's (cyclic) dead world outside
            # the timed region so collector pauses don't smear into
            # whichever run happens to cross a GC threshold.
            worlds[cache] = None
            gc.collect()
            begin = time.perf_counter()
            world = _emit(source)
            mid = time.perf_counter()
            optimize(world,
                     options=OptimizeOptions(cache_analyses=cache))
            elapsed = time.perf_counter() - mid
            frontend = min(frontend, mid - begin)
            if elapsed < best[cache]:
                best[cache] = elapsed
            worlds[cache] = world
    return worlds[False], worlds[True], best[False], best[True], frontend


def _table(report):
    table = report("F3_compile_time")
    global _initialized
    if not _initialized:
        table.columns("case", "loc", "continuations", "primops",
                      "frontend_s", "uncached_s", "cached_s", "speedup")
        table.note("chain-N rows: generated N-function call chain "
                   "(scaling family); suite rows: evaluation programs. "
                   "uncached_s/cached_s = best-of-"
                   f"{ROUNDS} interleaved optimization-pipeline runs "
                   "with cache_analyses off/on on freshly emitted "
                   "worlds; frontend_s = parse+emit (identical in both "
                   "arms, excluded from the ratio).")
        _initialized = True
    return table


def _compare_worlds(world_uncached, world_cached, entry, args) -> None:
    assert print_world(world_uncached) == print_world(world_cached), \
        "analysis caching changed the optimized IR"
    ref = Interpreter(world_uncached)
    got = Interpreter(world_cached)
    assert ref.call(entry, *args) == got.call(entry, *args), \
        "analysis caching changed program results"
    assert "".join(ref.output) == "".join(got.output), \
        "analysis caching changed program output"


@pytest.mark.parametrize("size", SIZES)
def test_f3_chain_compile_time(size, report):
    table = _table(report)
    source = generate_program(size)
    (world_uncached, world_cached,
     uncached, cached, frontend) = _timed_pair(source)
    _compare_worlds(world_uncached, world_cached, "main", (7,))
    stats = collect_world_stats(world_cached)
    _chain_times[size] = cached
    table.row(f"chain-{size}", len(source.splitlines()),
              stats.continuations, stats.primops,
              frontend, uncached, cached, uncached / cached)


def test_f3_shape(report):
    table = _table(report)
    if len(_chain_times) >= 2:
        sizes = sorted(_chain_times)
        per_fn = [_chain_times[s] / s for s in sizes]
        ratio = max(per_fn) / max(min(per_fn), 1e-9)
        table.note(f"per-function cost spread across sizes: {ratio:.2f}x")
        assert ratio < 8, "compile time grows far superlinearly"


@pytest.mark.parametrize("program", ALL_PROGRAMS,
                         ids=lambda p: p.name)
def test_f3_suite_cache(program, report):
    table = _table(report)
    (world_uncached, world_cached,
     uncached, cached, frontend) = _timed_pair(program.source)
    _compare_worlds(world_uncached, world_cached,
                    program.entry, program.test_args)
    stats = collect_world_stats(world_cached)
    speedup = uncached / cached
    _suite_speedups.append(speedup)
    table.row(program.name, len(program.source.splitlines()),
              stats.continuations, stats.primops,
              frontend, uncached, cached, speedup)


F3B_SIZES = [8, 32]
F3B_EDITS = 24
_f3b_totals: dict[int, tuple[float, float]] = {}


def _schedule_fingerprint(schedule):
    return {block.gid: [op.gid for op in schedule.ops_in(block)]
            for block in schedule.blocks()}


@pytest.mark.parametrize("size", F3B_SIZES)
def test_f3b_long_lived_worker(size, report):
    """F3b — the serve-daemon scenario: one warm world, repeated small
    edits, full re-analysis demanded after each.

    The warm arm keeps the world's analysis manager alive across edits,
    so each edit re-floods only the touched entry and every other
    scope/CFG/schedule is served from cache.  The cold arm builds a
    fresh manager per edit — the recompute-per-entry behaviour this PR
    replaces.  Both must agree on every schedule after every edit.
    """
    from repro.core.analyses import AnalysisManager
    from repro.core.primops import Literal
    from repro.core.types import I64

    source = generate_program(size)
    # The freshly emitted module keeps its N functions as separate
    # top-level entries (full optimization specializes the whole chain
    # into one nest, which would collapse the per-entry granularity the
    # scenario is about).
    world = _emit(source)
    manager = world.analyses
    entries = [c for c in manager.top_level() if c.has_body()]
    assert len(entries) > size / 2, "chain functions did not stay top-level"

    edit_sites = [
        member
        for entry in entries
        for member in manager.scope(entry).continuations()
        if member.has_body()
        and any(isinstance(arg, Literal) and arg.type is I64
                for arg in member.args)
    ]
    if not edit_sites:
        pytest.skip("no literal jump argument to edit")

    def apply_edit(step: int):
        """Toggle the low bit of some member's literal jump argument."""
        member = edit_sites[step % len(edit_sites)]
        for index, arg in enumerate(member.args):
            if isinstance(arg, Literal) and arg.type is I64:
                member.update_arg(
                    index, world.literal(I64, int(arg.value) ^ 1))
                return

    for entry in entries:  # prime the warm caches
        manager.schedule(entry)

    warm_total = cold_total = 0.0
    for step in range(F3B_EDITS):
        apply_edit(step)
        begin = time.perf_counter()
        warm = [manager.schedule(entry) for entry in entries]
        warm_total += time.perf_counter() - begin

        begin = time.perf_counter()
        fresh = AnalysisManager(world)
        cold = [fresh.schedule(entry) for entry in entries]
        cold_total += time.perf_counter() - begin

        for w, c in zip(warm, cold):
            assert (_schedule_fingerprint(w)
                    == _schedule_fingerprint(c)), \
                "warm (patched) schedule diverged from recompute"

    _f3b_totals[size] = (warm_total, cold_total)
    table = _table(report)
    table.row(f"f3b-warm-{size}", len(source.splitlines()),
              len(entries), F3B_EDITS,
              "", cold_total, warm_total, cold_total / warm_total)
    assert warm_total * 2 < cold_total, (
        f"warm re-analysis ({warm_total:.4f}s over {F3B_EDITS} edits) "
        f"is not clearly cheaper than per-edit recompute "
        f"({cold_total:.4f}s)")


def test_f3b_sublinear(report):
    """Warm per-edit cost must scale sub-linearly in world size: the
    repair is proportional to the touched entry, while the cold baseline
    re-walks every scope."""
    table = _table(report)
    if len(_f3b_totals) < 2:
        pytest.skip("f3b rows incomplete")
    small, large = sorted(_f3b_totals)
    warm_ratio = _f3b_totals[large][0] / _f3b_totals[small][0]
    cold_ratio = _f3b_totals[large][1] / _f3b_totals[small][1]
    table.note(f"f3b-warm rows: {F3B_EDITS} small edits against one "
               f"long-lived world; uncached_s = fresh AnalysisManager "
               f"per edit, cached_s = warm manager patched in place. "
               f"warm growth {small}->{large}: {warm_ratio:.2f}x vs "
               f"cold {cold_ratio:.2f}x")
    assert warm_ratio < cold_ratio, (
        f"warm re-analysis grows as fast as recompute "
        f"({warm_ratio:.2f}x vs {cold_ratio:.2f}x "
        f"from chain-{small} to chain-{large})")


def test_f3_cache_geomean(report):
    table = _table(report)
    assert len(_suite_speedups) == len(ALL_PROGRAMS)
    geomean = math.exp(sum(map(math.log, _suite_speedups))
                       / len(_suite_speedups))
    table.row("geomean(suite)", "", "", "", "", "", "", geomean)
    table.note(f"suite geomean optimization-time speedup "
               f"(cached vs uncached): {geomean:.2f}x")
    assert geomean >= 1.5, (
        f"analysis cache speedup regressed: geomean {geomean:.2f}x < 1.5x")

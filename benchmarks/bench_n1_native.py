"""N1 — native execution tier: machine code vs. VM vs. interpreter.

Two measurements:

1. **Engine comparison** — every suite program compiled three ways from
   the same statically optimized world: graph interpreter, bytecode VM
   and the native ``.so`` (``repro.native``), timed on the program's
   bench arguments.  The interpreter is timed on the (smaller) *test*
   arguments — it is orders of magnitude slower and the point is scale,
   not precision — and normalized per-program only where the workloads
   coincide.  The summary row asserts the acceptance criterion: native
   over VM geomean speedup >= 5x.

2. **Serve promotion latency** — a real daemon with tight hotness
   thresholds; measures the wall-clock from first request until the
   reply reports ``tier == "native"`` with a cold object store versus a
   second daemon sharing the same store (the ``.so`` is a content hit:
   no cc run, only dlopen), plus the steady-state native request
   latency.

Everything skips when the host has no C compiler.
"""

from __future__ import annotations

import math
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro import compile_source
from repro.backend.codegen import compile_world
from repro.backend.interp import Interpreter
from repro.native import compile_native_world, find_cc
from repro.programs.suite import ALL_PROGRAMS
from repro.serve.client import ServeClient

pytestmark = pytest.mark.skipif(find_cc() is None,
                                reason="no C compiler on PATH")

_rows: dict[str, dict] = {}
_initialized = False

SERVE_SRC = ("fn fib(n: i64) -> i64 { if n < 2 { n } "
             "else { fib(n - 1) + fib(n - 2) } }\n"
             "fn main(n: i64) -> i64 { fib(n) }")


def _time(thunk, repeat: int = 3) -> float:
    best = math.inf
    for _ in range(repeat):
        started = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("program", ALL_PROGRAMS, ids=lambda p: p.name)
def test_n1_engines(program, report):
    table = report("N1_native")
    global _initialized
    if not _initialized:
        table.columns("program", "interp_ms (test args)", "vm_ms",
                      "native_ms", "native/vm speedup")
        table.note("vm and native timed on bench args (best of 3); the "
                   "interpreter on the smaller test args — it is the "
                   "reference semantics, not a contender")
        _initialized = True

    world = compile_source(program.source)
    compiled = compile_world(world)
    module = compile_native_world(world)

    interp_s = _time(lambda: Interpreter(world).call(program.entry,
                                                     *program.test_args),
                     repeat=1)
    vm_s = _time(lambda: compiled.call(program.entry, *program.bench_args))
    native_s = _time(lambda: module.run(program.entry,
                                        list(program.bench_args)))

    # the .so must agree with the VM on the bench workload too
    want = compiled.call(program.entry, *program.bench_args)
    got = module.run(program.entry, list(program.bench_args))
    assert got.trap is None
    if isinstance(want, float) and isinstance(got.result, float):
        assert (want == got.result
                or (math.isnan(want) and math.isnan(got.result)))
    else:
        assert got.result == want

    speedup = vm_s / native_s if native_s else math.inf
    table.row(program.name, interp_s * 1e3, vm_s * 1e3, native_s * 1e3,
              speedup)
    _rows[program.name] = {"vm": vm_s, "native": native_s}


def test_n1_summary(report):
    assert _rows, "engine rows must run first"
    table = report("N1_native")
    speedups = [row["vm"] / row["native"] for row in _rows.values()]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    table.row("geomean", "", "", "", geomean)
    table.note(f"acceptance: native/vm geomean >= 5x (measured "
               f"{geomean:.1f}x over {len(speedups)} programs)")
    assert geomean >= 5.0, f"native tier too slow: geomean {geomean:.2f}x"


# ---------------------------------------------------------------------------
# serve promotion: cold compile vs. warm .so store
# ---------------------------------------------------------------------------


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _daemon(tmp, tag):
    port = _free_port()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", str(port),
         "--workers", "2", "--cache-dir", str(tmp / f"cache-{tag}"),
         "--crash-dir", str(tmp / "crashes"),
         "--native-dir", str(tmp / "native"),   # shared across daemons
         "--hot-requests", "2"],
        env=dict(os.environ))
    client = ServeClient(port=port, timeout=180.0)
    deadline = time.monotonic() + 30.0
    while True:
        try:
            client.ping()
            return proc, client
        except Exception:
            if time.monotonic() > deadline:
                proc.kill()
                raise RuntimeError("serve daemon did not come up")
            client.close()
            time.sleep(0.2)


def _promote(client) -> tuple[float, float]:
    """(seconds the background native compile took, native request ms).

    The timer runs from the request that trips the hotness threshold
    (promotion launches before that request executes) until ``stats``
    reports the key ready — i.e. the background pipeline + cc run on a
    cold store, or pipeline + content hit on a warm one.
    """
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        started = time.perf_counter()  # promotion triggers pre-execution
        # tiny argument: hotness is per *program* (args excluded from
        # the key), so cheap requests promote without polluting the
        # window with their own execution time
        reply = client.run(SERVE_SRC, [[5]])
        assert reply["ok"], reply
        if reply["native_state"] in ("pending", "ready"):
            break
    else:
        raise AssertionError("daemon never started the promotion")
    while time.monotonic() < deadline:
        states = client.stats()["tiering"]["native_states"]
        assert not states["quarantined"], "native compile failed"
        if states["ready"]:
            compile_s = time.perf_counter() - started
            reply = client.run(SERVE_SRC, [[22]])
            assert reply["tier"] == "native", reply
            native_ms = _time(lambda: client.run(SERVE_SRC, [[22]])) * 1e3
            return compile_s, native_ms
        time.sleep(0.005)
    raise AssertionError("daemon never promoted the program to native")


def test_n1_serve_promotion(tmp_path_factory, report):
    table = report("N1_native")
    tmp = tmp_path_factory.mktemp("bench-native-serve")

    proc, client = _daemon(tmp, "cold")
    try:
        cold_s, native_ms = _promote(client)
        stats = client.stats()["tiering"]
        assert stats["native_compiles"] == 1
        assert stats["native_cache_hits"] == 0
    finally:
        client.close()
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=15.0)

    # Second daemon, same object store: promotion is a content hit.
    proc, client = _daemon(tmp, "warm")
    try:
        warm_s, _ = _promote(client)
        stats = client.stats()["tiering"]
        assert stats["native_cache_hits"] == 1
    finally:
        client.close()
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=15.0)

    table.row("serve cold promote", "", "", cold_s * 1e3, "cc run")
    table.row("serve warm promote", "", "", warm_s * 1e3, ".so store hit")
    table.note(f"background promotion latency: cold (cc run) "
               f"{cold_s * 1e3:.0f}ms vs warm (.so store hit) "
               f"{warm_s * 1e3:.0f}ms; steady-state native request "
               f"{native_ms:.2f}ms")

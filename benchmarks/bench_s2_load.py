"""S2 — fleet throughput under concurrent load: 1 vs N shards.

Boots a real fleet (``python -m repro.serve --shards N``) per shard
count on a fresh store, warms it (every distinct request once), then
drives it with a closed-loop asyncio load generator: many concurrent
clients, each holding one connection to the router and issuing mixed
compile/run traffic back-to-back.  ``overloaded`` replies are retried
with the client library's shared exponential backoff + jitter
(:func:`repro.serve.client.backoff_delay`), so shed load is part of
the measured latency, not a failure.

Reported per shard count: sustained throughput (req/s) and p50 / p99 /
p999 latency.  The summary asserts the fleet contract: zero failed
replies at every shard count and byte-identical compile artifacts
across 1/2/4 shards.  The >= 2x scaling criterion (4 shards vs 1) is
asserted only on machines with >= 4 cores — shards are processes, so
on a single-core box the comparison measures scheduler churn, not the
architecture; the numbers are still reported.

``REPRO_BENCH_SMOKE=1`` shrinks the client count and shard list for CI.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import signal
import statistics
import subprocess
import sys
import time

import pytest

from repro.programs.suite import ALL_PROGRAMS
from repro.serve.client import (RETRY_ATTEMPTS, ServeClient,
                                backoff_delay)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SHARD_COUNTS = [1, 2] if SMOKE else [1, 2, 4]
CLIENTS = 50 if SMOKE else 1000
REQUESTS_PER_CLIENT = 2 if SMOKE else 4

# Small distinct working set: the measured phase is warm-store traffic,
# which is what a fleet actually serves in steady state.
_COMPILE_PROGRAMS = ALL_PROGRAMS[:8]
_RUN_PROGRAMS = ([p for p in ALL_PROGRAMS
                  if p.name in ("pow", "ackermann", "nqueens", "sieve")]
                 or ALL_PROGRAMS[:4])

_results: dict[int, dict] = {}
_initialized = False


def _traffic_mix() -> list[dict]:
    mix: list[dict] = []
    for program in _COMPILE_PROGRAMS:
        mix.append({"op": "compile", "source": program.source,
                    "opt": "none"})
        mix.append({"op": "compile", "source": program.source,
                    "opt": "static"})
    for program in _RUN_PROGRAMS:
        mix.append({"op": "run", "source": program.source,
                    "entry": program.entry,
                    "args": [list(program.test_args)]})
    return mix


@pytest.fixture()
def fleet_factory(tmp_path_factory):
    procs = []

    def boot(shards: int):
        tmp = tmp_path_factory.mktemp(f"bench-fleet-{shards}")
        port_file = tmp / "router.port"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve",
             "--shards", str(shards), "--port", "0",
             "--port-file", str(port_file),
             "--workers", "2", "--max-pending", "64", "--no-native",
             "--cache-dir", str(tmp / "cache"),
             "--crash-dir", str(tmp / "crashes")],
            env=dict(os.environ))
        procs.append(proc)
        deadline = time.monotonic() + 120.0
        while not port_file.exists():
            if proc.poll() is not None:
                raise RuntimeError(f"fleet({shards}) died on startup")
            if time.monotonic() > deadline:
                proc.kill()
                raise RuntimeError(f"fleet({shards}) reported no port")
            time.sleep(0.1)
        return proc, int(port_file.read_text())

    yield boot
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
    for proc in procs:
        try:
            proc.wait(timeout=60.0)
        except subprocess.TimeoutExpired:
            proc.kill()


def _warm_store(port: int, mix: list[dict]) -> dict[str, str]:
    """Issue every distinct request once; digest the compile artifacts."""
    digests: dict[str, str] = {}
    with ServeClient(port=port, timeout=300.0) as client:
        for request in mix:
            reply = client.request(dict(request))
            assert reply.get("ok"), reply
            if request["op"] == "compile":
                key = f"{request['opt']}:{reply['key']}"
                # Only the deterministic artifacts: the stats artifact
                # carries wall-clock phase timings.
                material = {name: reply["artifacts"][name]
                            for name in ("ir", "c", "bytecode")}
                digests[key] = hashlib.sha256(
                    json.dumps(material,
                               sort_keys=True).encode()).hexdigest()
    return digests


async def _client_loop(host: str, port: int, stream: list[dict],
                       latencies: list[float], failures: list[dict],
                       retries: list[int]) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for request in stream:
            line = json.dumps(request).encode() + b"\n"
            started = time.perf_counter()
            for attempt in range(RETRY_ATTEMPTS + 1):
                writer.write(line)
                await writer.drain()
                reply = json.loads(await reader.readline())
                if reply.get("ok") or \
                        reply.get("error", {}).get("code") != "overloaded":
                    break
                retries.append(attempt)
                await asyncio.sleep(backoff_delay(attempt))
            latencies.append(time.perf_counter() - started)
            if not reply.get("ok"):
                failures.append(reply)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass


async def _generate_load(port: int, mix: list[dict]):
    latencies: list[float] = []
    failures: list[dict] = []
    retries: list[int] = []
    streams = []
    for index in range(CLIENTS):
        streams.append([dict(mix[(index + step) % len(mix)])
                        for step in range(REQUESTS_PER_CLIENT)])
    started = time.perf_counter()
    await asyncio.gather(*(
        _client_loop("127.0.0.1", port, stream, latencies, failures,
                     retries)
        for stream in streams))
    elapsed = time.perf_counter() - started
    return latencies, failures, retries, elapsed


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_s2_load(shards, fleet_factory, report):
    table = report("S2_load")
    global _initialized
    if not _initialized:
        table.columns("shards", "clients", "requests", "throughput_rps",
                      "p50_ms", "p99_ms", "p999_ms", "retries", "failed")
        table.note(
            f"closed-loop: {CLIENTS} concurrent clients x "
            f"{REQUESTS_PER_CLIENT} mixed compile/run requests on a "
            f"warm store; overloaded replies retried with backoff "
            f"(client library policy). Acceptance: 0 failed replies, "
            f"byte-identical artifacts across shard counts, >= 2x "
            f"throughput at 4 shards vs 1 on >= 4 cores.")
        _initialized = True

    proc, port = fleet_factory(shards)
    mix = _traffic_mix()
    digests = _warm_store(port, mix)

    latencies, failures, retries, elapsed = asyncio.run(
        _generate_load(port, mix))
    assert proc.poll() is None, "fleet died under load"
    assert not failures, failures[:3]
    total = CLIENTS * REQUESTS_PER_CLIENT
    assert len(latencies) == total

    throughput = total / elapsed
    _results[shards] = {"throughput": throughput, "digests": digests,
                        "failed": len(failures)}
    table.row(shards, CLIENTS, total, throughput,
              _percentile(latencies, 0.50) * 1000,
              _percentile(latencies, 0.99) * 1000,
              _percentile(latencies, 0.999) * 1000,
              len(retries), len(failures))


def test_s2_summary(report):
    assert len(_results) == len(SHARD_COUNTS)
    table = report("S2_load")

    # Byte-identical artifacts regardless of how the fleet is sharded.
    reference = _results[SHARD_COUNTS[0]]["digests"]
    for shards in SHARD_COUNTS[1:]:
        assert _results[shards]["digests"] == reference, (
            f"artifacts at {shards} shard(s) differ from "
            f"{SHARD_COUNTS[0]} shard(s)")
    table.note(f"artifact digests identical across shard counts "
               f"{SHARD_COUNTS} ({len(reference)} distinct compiles)")

    assert all(r["failed"] == 0 for r in _results.values())

    cores = os.cpu_count() or 1
    if 4 in _results and cores >= 4 and not SMOKE:
        ratio = (_results[4]["throughput"] /
                 _results[1]["throughput"])
        table.note(f"scaling 4 vs 1 shards: {ratio:.2f}x "
                   f"({cores} cores)")
        assert ratio >= 2.0, (
            f"4 shards should sustain >= 2x the throughput of 1, "
            f"got {ratio:.2f}x")
    else:
        ratios = {s: _results[s]["throughput"] /
                  _results[SHARD_COUNTS[0]]["throughput"]
                  for s in SHARD_COUNTS[1:]}
        table.note(
            f"scaling vs {SHARD_COUNTS[0]} shard(s): "
            + ", ".join(f"{s}: {r:.2f}x" for s, r in ratios.items())
            + f" — >=2x gate skipped ({cores} core(s), smoke={SMOKE}); "
              f"shards are processes, so scaling needs real cores.")

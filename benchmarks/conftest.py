"""Shared infrastructure for the experiment harness.

Every ``bench_*`` module regenerates one table or figure of the
(reconstructed) evaluation — see DESIGN.md §4 and EXPERIMENTS.md.  Each
test contributes rows to a session-wide report; at session end the
tables are printed and written to ``benchmarks/results/`` twice: a
human-readable ``<ID>.txt`` table and a machine-readable ``<ID>.json``
(columns, per-row records with raw values, notes) so the perf
trajectory can be tracked across PRs.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_tables: dict[str, dict] = defaultdict(
    lambda: {"columns": None, "rows": [], "raw_rows": [], "notes": []}
)


class Reporter:
    """Accumulates rows for one experiment's table."""

    def __init__(self, experiment: str):
        self.experiment = experiment

    def columns(self, *names: str) -> None:
        _tables[self.experiment]["columns"] = list(names)

    def row(self, *values) -> None:
        table = _tables[self.experiment]
        table["rows"].append([_format(v) for v in values])
        table["raw_rows"].append(list(values))

    def note(self, text: str) -> None:
        _tables[self.experiment]["notes"].append(text)


def _format(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@pytest.fixture(scope="session")
def report():
    """Factory: ``report("T1")`` returns the T1 table reporter."""
    return Reporter


def _render(experiment: str, table: dict) -> str:
    lines = [f"== {experiment} =="]
    columns = table["columns"]
    rows = table["rows"]
    if columns:
        widths = [max(len(str(c)), *(len(r[i]) for r in rows))
                  if rows else len(str(c))
                  for i, c in enumerate(columns)]
        lines.append("  ".join(str(c).ljust(w)
                               for c, w in zip(columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    for note in table["notes"]:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _json_payload(experiment: str, table: dict) -> dict:
    columns = table["columns"] or []
    records = [dict(zip(columns, row)) for row in table["raw_rows"]]
    return {
        "experiment": experiment,
        "columns": columns,
        "records": records,
        "notes": table["notes"],
    }


def pytest_sessionfinish(session):
    if not _tables:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    for experiment in sorted(_tables):
        text = _render(experiment, _tables[experiment])
        path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        json_path = os.path.join(RESULTS_DIR, f"{experiment}.json")
        with open(json_path, "w") as f:
            json.dump(_json_payload(experiment, _tables[experiment]), f,
                      indent=2)
            f.write("\n")
        if reporter is not None:
            reporter.write_line("")
            for line in text.splitlines():
                reporter.write_line(line)

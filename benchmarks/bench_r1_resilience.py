"""R1 — cost of fault isolation in the pipeline.

The fault-tolerant pipeline buys checkpoint/rollback per pass; this
benchmark prices it.  Each suite program is optimized three ways —
strict (no checkpoints, the pre-fault-tolerance behaviour), per-phase
checkpoints (the default), and per-round checkpoints (the cheaper
granularity) — and the overhead of each non-strict mode over strict is
reported.  Shape check: per-round checkpointing stays within a small
multiple of strict compile time.
"""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.programs.suite import ALL_PROGRAMS
from repro.transform.pipeline import OptimizeOptions, optimize

PROGRAMS = [p.name for p in ALL_PROGRAMS[:6]]

MODES = {
    "strict": OptimizeOptions(strict=True),
    "phase": OptimizeOptions(checkpoint_granularity="phase"),
    "round": OptimizeOptions(checkpoint_granularity="round"),
}

_times: dict[tuple[str, str], float] = {}
_checkpoints: dict[tuple[str, str], int] = {}
_initialized = False


def _optimize_fresh(source: str, options: OptimizeOptions):
    world = compile_source(source, optimize=False)
    return optimize(world, options=options)


@pytest.mark.parametrize("mode", list(MODES))
@pytest.mark.parametrize("name", PROGRAMS)
def test_r1_resilience(name, mode, report, benchmark):
    table = report("R1_resilience")
    global _initialized
    if not _initialized:
        table.columns("program", "mode", "checkpoints", "mean_s",
                      "overhead_vs_strict")
        table.note("checkpoint/rollback tax: optimize() wall-clock by "
                   "checkpoint granularity, normalized to strict "
                   "(fail-fast, no snapshots).")
        _initialized = True

    from repro.programs.suite import by_name

    source = by_name(name).source
    options = MODES[mode]
    stats_box = []
    benchmark.pedantic(
        lambda: stats_box.append(_optimize_fresh(source, options)),
        rounds=3, iterations=1)
    mean = benchmark.stats.stats.mean
    _times[(name, mode)] = mean
    _checkpoints[(name, mode)] = stats_box[-1].checkpoints
    strict_mean = _times.get((name, "strict"))
    overhead = (mean / strict_mean) if strict_mean else float("nan")
    table.row(name, mode, _checkpoints[(name, mode)], mean,
              f"{overhead:.2f}x" if strict_mean else "-")


def test_r1_shape(report, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = report("R1_resilience")
    ratios = []
    for name in PROGRAMS:
        strict = _times.get((name, "strict"))
        round_ = _times.get((name, "round"))
        if strict and round_:
            ratios.append(round_ / strict)
    if ratios:
        worst = max(ratios)
        table.note(f"worst per-round overhead: {worst:.2f}x strict")
        assert worst < 10, "round-granularity checkpointing too expensive"

"""A1 — ablation: construction-time folding on/off (design decision 1).

The world normally folds and simplifies while the frontend constructs
the graph.  With folding disabled (value numbering stays on), the same
programs produce more primops and the pipeline inherits the slack.
Reported: primop counts and construction-time GVN/fold statistics for
both configurations; the timed quantity is unoptimized construction.
"""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.eval import collect_world_stats
from repro.programs import ALL_PROGRAMS

SUBSET = [p for p in ALL_PROGRAMS
          if p.name in ("fannkuch", "nbody", "mandelbrot", "sieve",
                        "matmul", "dot_generic", "compose")]

_initialized = False


@pytest.mark.parametrize("folding", [True, False], ids=["fold", "nofold"])
@pytest.mark.parametrize("program", SUBSET, ids=lambda p: p.name)
def test_a1_construction_folding(program, folding, report, benchmark):
    table = report("A1_folding")
    global _initialized
    if not _initialized:
        table.columns("program", "folding", "primops", "gvn_hits",
                      "folds_fired")
        table.note("construction only (optimize=False); folding off means "
                   "every simplification the factories perform for free "
                   "is deferred to later passes.")
        _initialized = True

    world = benchmark.pedantic(
        compile_source, args=(program.source,),
        kwargs={"optimize": False, "folding": folding},
        rounds=3, iterations=1,
    )
    stats = collect_world_stats(world)
    table.row(program.name, "on" if folding else "off", stats.primops,
              world.stats.gvn_hits, world.stats.folds)

"""T1 — benchmark suite & IR statistics (the evaluation's overview table).

For every suite program: source LoC, number of continuations and
primops after construction vs. after the optimization pipeline, the
higher-order metrics closure elimination must drive to zero, and
whether control-flow form was reached.  The timed quantity is the full
optimizing compilation (frontend + pipeline).
"""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.eval import collect_world_stats, source_loc
from repro.programs import ALL_PROGRAMS

_reporter_initialized = False


@pytest.mark.parametrize("program", ALL_PROGRAMS, ids=lambda p: p.name)
def test_t1_ir_stats(program, report, benchmark):
    table = report("T1_ir_stats")
    global _reporter_initialized
    if not _reporter_initialized:
        table.columns(
            "program", "loc",
            "conts_in", "primops_in", "ho_params_in", "closures_in",
            "conts_opt", "primops_opt", "ho_params_opt", "closures_opt",
            "cff",
        )
        table.note(
            "conts/primops = reachable continuations/primops; "
            "ho_params = fn-typed non-return parameters; closures = "
            "top-level scopes with free parameters; cff = control-flow "
            "form reached after the pipeline (paper: yes for the whole "
            "suite)."
        )
        _reporter_initialized = True

    unopt = compile_source(program.source, optimize=False)
    before = collect_world_stats(unopt)

    world = benchmark.pedantic(compile_source, args=(program.source,),
                               rounds=3, iterations=1)
    after = collect_world_stats(world)

    assert after.cff_violations == 0, (
        f"{program.name} did not reach CFF: {after.cff_violations} violations"
    )
    table.row(
        program.name, source_loc(program.source),
        before.continuations, before.primops,
        before.higher_order_params, before.closure_continuations,
        after.continuations, after.primops,
        after.higher_order_params, after.closure_continuations,
        "yes" if after.cff_violations == 0 else "NO",
    )

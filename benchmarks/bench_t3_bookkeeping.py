"""T3 — transformation bookkeeping: what the graph IR never does.

The same logical transformation — inline a recursive function's call
sites / thread jumps — is performed in three IRs:

* **Thorin (graph)**: lambda mangling.  Copies scope nodes through the
  hash-consing world.  Structural repair counters (phi repair, binder
  rearrangement, alpha renames) are *definitionally zero*.
* **Classical SSA**: the baseline pipeline's SimplifyCFG + inliner,
  which must repair phis and remap values.
* **Nested CPS**: substitution-based inlining with capture-avoiding
  alpha-renaming.

Reported: repair-operation counts per workload; the timed quantity is
each IR's transformation.
"""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.baselines.nested_cps import (
    cps_convert_expr,
    evaluate,
    inline_function,
)
from repro.baselines.ssa import compile_source_ssa
from repro.core import fold
from repro.core.scope import Scope
from repro.transform.mangle import MangleStats, inline_call
from repro.transform.cleanup import cleanup

# Shared workloads, expressible in all three settings.
IMPALA_SOURCES = {
    "fib": """
fn fib(n: i64) -> i64 { if n < 2 { n } else { fib(n-1) + fib(n-2) } }
fn helper(x: i64) -> i64 { x * 2 + 1 }
fn main(n: i64) -> i64 { helper(fib(n)) }
""",
    "pow": """
fn pow(x: i64, n: i64) -> i64 { if n == 0 { 1 } else { x * pow(x, n-1) } }
fn square(x: i64) -> i64 { pow(x, 2) }
fn main(x: i64) -> i64 { square(x) + pow(x, 3) }
""",
    "chain": """
fn f1(x: i64) -> i64 { x + 1 }
fn f2(x: i64) -> i64 { f1(x) * 2 }
fn f3(x: i64) -> i64 { f2(x) - 3 }
fn main(x: i64) -> i64 { f3(f3(x)) }
""",
}

MICRO_EXPRS = {
    "fib": ("letfun", "fib", ["n"],
            ("if", ("<", "n", 2), "n",
             ("+", ("call", "fib", ("-", "n", 1)),
                   ("call", "fib", ("-", "n", 2)))),
            ("call", "fib", 10)),
    "pow": ("letfun", "pow", ["x", "n"],
            ("if", ("==", "n", 0), 1,
             ("*", "x", ("call", "pow", "x", ("-", "n", 1)))),
            ("call", "pow", 3, 5)),
    "chain": ("letfun", "f1", ["x"], ("+", "x", 1),
              ("letfun", "f2", ["x"], ("*", ("call", "f1", "x"), 2),
               ("letfun", "f3", ["x"], ("-", ("call", "f2", "x"), 3),
                ("call", "f3", ("call", "f3", 5))))),
}

_initialized = False


def _init(table):
    global _initialized
    if not _initialized:
        table.columns("workload", "ir", "inlines/mangles",
                      "phi_repairs", "alpha_renames", "total_bookkeeping")
        table.note(
            "total_bookkeeping = structural repair ops (phi edits + "
            "placed phis + value remaps for SSA; alpha renames + spine "
            "rebuilds + substitutions for nested CPS; definitionally 0 "
            "for graph mangling)."
        )
        _initialized = True


@pytest.mark.parametrize("workload", sorted(IMPALA_SOURCES))
def test_t3_thorin_mangling(workload, report, benchmark):
    table = report("T3_bookkeeping")
    _init(table)

    def run():
        world = compile_source(IMPALA_SOURCES[workload], optimize=False)
        stats: list[MangleStats] = []
        inlines = 0
        for cont in world.continuations():
            if cont.has_body() and inline_call(cont, stats):
                inlines += 1
        cleanup(world)
        return inlines, stats

    inlines, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    phi_repairs = sum(s.phis_repaired for s in stats)
    renames = sum(s.alpha_renames for s in stats)
    rearranged = sum(s.binders_rearranged for s in stats)
    table.row(workload, "thorin", inlines, phi_repairs, renames,
              phi_repairs + renames + rearranged)
    assert phi_repairs == 0 and renames == 0 and rearranged == 0


@pytest.mark.parametrize("workload", sorted(IMPALA_SOURCES))
def test_t3_ssa_baseline(workload, report, benchmark):
    table = report("T3_bookkeeping")
    _init(table)

    def run():
        stats_out = []
        compile_source_ssa(IMPALA_SOURCES[workload], stats_out=stats_out)
        return stats_out[0]

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    table.row(workload, "ssa", stats.inlined_calls, stats.phi_repairs, 0,
              stats.total_bookkeeping())
    assert stats.total_bookkeeping() > 0, (
        "the classical pipeline should have had to repair something"
    )


@pytest.mark.parametrize("workload", sorted(MICRO_EXPRS))
def test_t3_nested_cps(workload, report, benchmark):
    table = report("T3_bookkeeping")
    _init(table)
    term = cps_convert_expr(MICRO_EXPRS[workload])
    before = fold.to_signed(evaluate(term), 64)

    def run():
        if workload == "chain":
            t, stats = inline_function(term, "f2")
            t, stats2 = inline_function(t, "f1", stats)
            return t, stats
        return inline_function(term, workload)

    result_term, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    after = fold.to_signed(evaluate(result_term), 64)
    assert before == after, "inlining changed the program's meaning"
    table.row(workload, "nested-cps", 1, 0, stats.alpha_renames,
              stats.total_bookkeeping())
    assert stats.alpha_renames > 0

"""T2 — closure elimination effectiveness.

For every higher-order program: how many closure-requiring constructs
exist after construction, and how many survive the pipeline (paper:
zero — all suite programs reach control-flow form).  The timed quantity
is the closure-elimination pass itself on the freshly constructed
world.
"""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.core.verify import cff_violations
from repro.eval import collect_world_stats
from repro.programs import by_tag
from repro.transform.cleanup import cleanup
from repro.transform.closure_elim import eliminate_closures
from repro.transform.partial_eval import partial_eval

HO_PROGRAMS = by_tag("higher-order")

_initialized = False


def _init(table):
    global _initialized
    if not _initialized:
        table.columns(
            "program",
            "ho_params_in", "first_class_in", "closures_in",
            "ho_params_out", "first_class_out", "closures_out",
            "residual_cff_violations",
        )
        table.note(
            "in = after IR construction; out = after the pipeline. "
            "The paper's claim: closure elimination by lambda mangling "
            "residualizes zero closures on the suite."
        )
        _initialized = True


@pytest.mark.parametrize("program", HO_PROGRAMS, ids=lambda p: p.name)
def test_t2_closure_elimination(program, report, benchmark):
    table = report("T2_closures")
    _init(table)

    unopt = compile_source(program.source, optimize=False)
    before = collect_world_stats(unopt)

    def eliminate():
        world = compile_source(program.source, optimize=False)
        partial_eval(world)
        cleanup(world)
        for _ in range(4):
            if not eliminate_closures(world).get("mangled"):
                break
            cleanup(world)
        return world

    benchmark.pedantic(eliminate, rounds=3, iterations=1)

    world = compile_source(program.source)  # the full pipeline
    after = collect_world_stats(world)
    residual = len(cff_violations(world))
    assert residual == 0, f"{program.name}: {residual} CFF violations remain"
    table.row(
        program.name,
        before.higher_order_params, before.first_class_continuations,
        before.closure_continuations,
        after.higher_order_params, after.first_class_continuations,
        after.closure_continuations,
        residual,
    )

"""M1 — memory optimization: mem_opt on/off over a memory-heavy suite.

The alias-driven load/store optimizer (``transform/mem_opt``) earns its
place here: every program below hammers a pair of buffers with
redundant intra-iteration traffic — loads that a Must-aliasing store
already answers, loads repeated after Not-aliasing interveners, stores
overwritten before any read.  Forwarding cannot cross loop headers (a
mem parameter is a wall), so all the redundancy is deliberately inside
straight-line loop bodies where the chain walk can see it.

Reported per program: retired VM instructions and the result with
mem_opt on and off.  Shape check (the acceptance bar): the results are
identical pairwise and the geometric-mean instruction ratio off/on is
at least 1.5x.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import pytest

from repro import compile_source
from repro.backend import bytecode as bc
from repro.backend.codegen import compile_world
from repro.transform.pipeline import OptimizeOptions


@dataclass(frozen=True)
class MemProgram:
    name: str
    source: str
    args: tuple


PROGRAMS = [
    MemProgram("stencil_reread", """
extern fn fz(n: i64, z: i64) -> i64 {
    let a = new_buf_i64(16);
    let b = new_buf_i64(16);
    let mut acc = z;
    let mut k = n;
    while k > 0 {
        k -= 1;
        a[(0) & 15] = acc * 2 + k;
        b[(0) & 15] = acc - k * 3;
        a[(0) & 15] = acc + 1;
        b[(0) & 15] = acc + 2;
        acc += a[(0) & 15] + b[(0) & 15];
        acc += a[(0) & 15] + b[(0) & 15];
        acc += a[(0) & 15] + b[(0) & 15];
        acc += a[(0) & 15] + b[(0) & 15];
    }
    acc
}
""", (300, 1)),
    MemProgram("overwrite_chain", """
extern fn fz(n: i64, z: i64) -> i64 {
    let a = new_buf_i64(16);
    let b = new_buf_i64(16);
    let mut acc = z;
    let mut k = n;
    while k > 0 {
        k -= 1;
        a[(1) & 15] = k * 5 + acc;
        b[(1) & 15] = k + acc;
        a[(1) & 15] = k * acc;
        a[(1) & 15] = k + 2;
        acc += a[(1) & 15] + b[(1) & 15];
        acc += a[(1) & 15] + b[(1) & 15];
        acc += a[(1) & 15] - b[(1) & 15];
    }
    acc
}
""", (300, 0)),
    MemProgram("spill_reload", """
extern fn fz(n: i64, z: i64) -> i64 {
    let a = new_buf_i64(16);
    let mut acc = z;
    let mut k = n;
    while k > 0 {
        k -= 1;
        a[(2) & 15] = acc * 3;
        a[(3) & 15] = acc - k;
        a[(4) & 15] = k * 2;
        acc += a[(2) & 15] + a[(3) & 15] + a[(4) & 15];
        acc += a[(2) & 15] - a[(4) & 15];
        acc += a[(3) & 15] + a[(4) & 15];
        acc += a[(2) & 15] + a[(3) & 15];
    }
    acc
}
""", (300, 7)),
    MemProgram("double_buffer", """
extern fn fz(n: i64, z: i64) -> i64 {
    let a = new_buf_i64(16);
    let b = new_buf_i64(16);
    let mut acc = z;
    let mut k = n;
    while k > 0 {
        k -= 1;
        a[(5) & 15] = acc;
        b[(5) & 15] = a[(5) & 15] + 1;
        a[(6) & 15] = b[(5) & 15] + 1;
        b[(6) & 15] = a[(6) & 15] + 1;
        acc += b[(6) & 15] + a[(5) & 15];
        acc += a[(6) & 15] + b[(5) & 15];
        acc += b[(6) & 15] - a[(6) & 15];
    }
    acc
}
""", (300, 2)),
    MemProgram("dead_scratch", """
extern fn fz(n: i64, z: i64) -> i64 {
    let a = new_buf_i64(16);
    let mut acc = z;
    let mut k = n;
    while k > 0 {
        k -= 1;
        a[(7) & 15] = acc * 7 + k;
        a[(8) & 15] = acc * 5 - k;
        a[(9) & 15] = acc * 3 + k * 2;
        a[(7) & 15] = acc;
        a[(8) & 15] = k;
        a[(9) & 15] = acc - k;
        acc += a[(7) & 15] + a[(8) & 15] + a[(9) & 15];
        acc += a[(7) & 15] - a[(9) & 15];
    }
    acc
}
""", (300, 3)),
]

_rows: dict[str, dict] = {}
_results: dict[str, dict] = {}
_initialized = False


def _vm_instructions(compiled, entry: str, args: tuple):
    """Deterministic retired-instruction count on a fresh VM."""
    from repro.core import fold
    from repro.core import types as ct

    param_types, _ = compiled.fn_types[entry]
    vm_args = [fold.canonicalize(t.kind, a)
               if isinstance(t, ct.PrimType) else a
               for a, t in zip(args, param_types)]
    vm = bc.VM(compiled.program)
    result = vm.call(compiled.program, entry, *vm_args)
    return vm.executed, result


@pytest.mark.parametrize("mem_opt", [True, False], ids=["on", "off"])
@pytest.mark.parametrize("program", PROGRAMS, ids=lambda p: p.name)
def test_m1_memory(program, mem_opt, report, benchmark):
    table = report("M1_memory")
    global _initialized
    if not _initialized:
        table.columns("program", "mem_opt", "vm_instructions", "result")
        table.note("memory-heavy loop bodies; redundancy is intra-iteration "
                   "so the chain walk (which stops at loop headers) can "
                   "legally remove it.  Shape check: identical results and "
                   "off/on instruction geomean >= 1.5x.")
        _initialized = True

    world = compile_source(program.source,
                           options=OptimizeOptions(mem_opt=mem_opt))
    compiled = compile_world(world)
    instructions, result = _vm_instructions(compiled, "fz", program.args)

    benchmark.pedantic(compiled.call, args=("fz", *program.args),
                       rounds=3, iterations=1)
    benchmark.extra_info["vm_instructions"] = instructions
    variant = "on" if mem_opt else "off"
    table.row(program.name, variant, instructions, result)
    _rows.setdefault(program.name, {})[variant] = instructions
    _results.setdefault(program.name, {})[variant] = result


def test_m1_shape(report, benchmark):
    """After both variants ran: behaviour identical, speedup >= 1.5x."""
    assert len(_rows) == len(PROGRAMS)
    ratios = []
    for name, counts in _rows.items():
        assert _results[name]["on"] == _results[name]["off"], (
            f"{name}: mem_opt changed the result"
        )
        assert counts["on"] < counts["off"], (
            f"{name}: mem_opt did not reduce VM instructions"
        )
        ratios.append(counts["off"] / counts["on"])
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    table = report("M1_memory")
    table.row("geomean", "off/on", f"{geomean:.2f}x", "")
    assert geomean >= 1.5, f"geomean speedup {geomean:.2f}x < 1.5x"

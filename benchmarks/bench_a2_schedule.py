"""A2 — ablation: schedule placement policy (design decision 5).

Because primops float freely (memory threaded through ``mem`` tokens),
*placement* is the scheduler's choice at code-generation time:
schedule-early, schedule-late, or the loop-aware "smart" policy.  The
same optimized world is lowered with each policy and run on the VM;
retired instructions show what loop-aware placement buys (implicit
loop-invariant code motion).
"""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.backend import bytecode as bc
from repro.backend.codegen import compile_world
from repro.core import fold
from repro.core import types as ct
from repro.core.schedule import Placement
from repro.programs import by_name

PROGRAMS = ["matmul", "spectral_norm", "mandelbrot", "sieve"]
POLICIES = [Placement.EARLY, Placement.LATE, Placement.SMART]

_counts: dict[str, dict[str, int]] = {}
_initialized = False


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
@pytest.mark.parametrize("name", PROGRAMS)
def test_a2_schedule_policy(name, policy, report, benchmark):
    table = report("A2_schedule")
    global _initialized
    if not _initialized:
        table.columns("program", "policy", "vm_instructions", "result")
        table.note("same optimized world, different primop placement; "
                   "late recomputes loop-invariant values inside loops, "
                   "smart hoists them (implicit LICM).")
        _initialized = True

    program = by_name(name)
    world = compile_source(program.source)
    compiled = compile_world(world, placement=policy)
    args = program.bench_args

    param_types, _ = compiled.fn_types[program.entry]
    vm_args = [fold.canonicalize(t.kind, a) if isinstance(t, ct.PrimType) else a
               for a, t in zip(args, param_types)]
    vm = bc.VM(compiled.program)
    result = vm.call(compiled.program, program.entry, *vm_args)
    instructions = vm.executed

    benchmark.pedantic(compiled.call, args=(program.entry, *args),
                       rounds=3, iterations=1)
    benchmark.extra_info["vm_instructions"] = instructions
    table.row(name, policy.value, instructions, compiled.call(
        program.entry, *args))
    _counts.setdefault(name, {})[policy.value] = instructions


def test_a2_shape(report, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = report("A2_schedule")
    better = 0
    total = 0
    for name, counts in _counts.items():
        if {"smart", "late"} <= counts.keys():
            total += 1
            if counts["smart"] <= counts["late"]:
                better += 1
            table.note(f"{name}: smart/late instruction ratio "
                       f"{counts['smart'] / counts['late']:.3f}")
    if total:
        assert better == total, "smart placement regressed against late"

"""S1 — compile-service latency: cold pipeline vs. warm artifact cache.

Boots a real ``python -m repro.serve`` daemon on a fresh cache
directory, then measures per-program request latency twice: the first
request pays the full pipeline in a forked worker (*cold*), repeats are
served from the content-addressed cache (*warm*).  Reported per
program: cold ms, warm ms (best of 3), speedup.  The summary row
asserts the acceptance criterion: warm-path geomean speedup >= 5x.

The point of the experiment is operational, not algorithmic — the same
artifacts (byte-identical, checked in tests/test_serve.py and the CI
smoke) at interactive latency once the cache is hot.
"""

from __future__ import annotations

import os
import signal
import socket
import statistics
import subprocess
import sys
import time

import pytest

from repro.programs.suite import ALL_PROGRAMS
from repro.serve.client import ServeClient

PROGRAMS = ALL_PROGRAMS
WARM_TRIES = 3

_rows: dict[str, dict] = {}
_initialized = False


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("bench-serve")
    port = _free_port()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", str(port),
         "--workers", "2", "--cache-dir", str(tmp / "cache"),
         "--crash-dir", str(tmp / "crashes")],
        env=dict(os.environ))
    client = ServeClient(port=port, timeout=180.0)
    deadline = time.monotonic() + 30.0
    while True:
        try:
            client.ping()
            break
        except Exception:
            if time.monotonic() > deadline:
                proc.kill()
                raise RuntimeError("serve daemon did not come up")
            client.close()
            time.sleep(0.2)
    yield client
    client.close()
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=15.0)


def _timed_request(client, source):
    started = time.perf_counter()
    reply = client.compile(source, opt="static")
    elapsed = time.perf_counter() - started
    assert reply["ok"], reply
    return elapsed, reply


@pytest.mark.parametrize("program", PROGRAMS, ids=lambda p: p.name)
def test_s1_server_latency(program, daemon, report):
    table = report("S1_server")
    global _initialized
    if not _initialized:
        table.columns("program", "cold_ms", "warm_ms", "speedup",
                      "warm_tier")
        table.note(
            "cold = first request (full pipeline in a forked worker); "
            "warm = best of 3 repeats (content-addressed cache). "
            "Acceptance: warm geomean speedup >= 5x cold.")
        _initialized = True

    cold_s, cold = _timed_request(daemon, program.source)
    assert cold["cached"] is False

    warm_s, tier = None, None
    for _ in range(WARM_TRIES):
        elapsed, warm = _timed_request(daemon, program.source)
        assert warm["cached"] in ("memory", "disk")
        assert warm["artifacts"] == cold["artifacts"]
        if warm_s is None or elapsed < warm_s:
            warm_s, tier = elapsed, warm["cached"]

    speedup = cold_s / warm_s
    _rows[program.name] = {"cold_s": cold_s, "warm_s": warm_s,
                           "speedup": speedup}
    table.row(program.name, cold_s * 1000, warm_s * 1000,
              f"{speedup:.1f}x", tier)


def test_s1_summary(daemon, report):
    assert len(_rows) == len(PROGRAMS)
    table = report("S1_server")
    geomean = statistics.geometric_mean(
        row["speedup"] for row in _rows.values())
    stats = daemon.stats()
    table.note(f"geomean warm speedup: {geomean:.1f}x over "
               f"{len(_rows)} programs; server cache stats: "
               f"{stats['cache']}")
    assert stats["cache"]["hit_rate"] > 0
    assert geomean >= 5.0, (
        f"warm cache should be >= 5x cold compile, got {geomean:.2f}x")

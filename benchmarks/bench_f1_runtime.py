"""F1 — run time: Thorin pipeline vs. unoptimized vs. classical SSA.

All three variants execute on the *same* register-bytecode VM, so the
comparison is between the code the compilers emit.  Reported per
program: wall-clock (via pytest-benchmark) and retired VM instructions
(the architecture-neutral "cycles").

Expected shape (paper): the CPS/graph pipeline matches the classical
SSA pipeline on imperative code (parity within noise), and both beat
unoptimized code clearly.
"""

from __future__ import annotations

import pytest

from repro import compile_source
from repro.backend import bytecode as bc
from repro.backend.codegen import compile_world
from repro.baselines.ssa import CompiledSSA, compile_source_ssa
from repro.programs import by_tag

PROGRAMS = by_tag("imperative")

_rows: dict[str, dict] = {}
_initialized = False


def _variants(program):
    return {
        "thorin-O1": lambda: compile_world(compile_source(program.source)),
        "thorin-O0": lambda: compile_world(
            compile_source(program.source, optimize=False)
        ),
        "ssa-O1": lambda: CompiledSSA(compile_source_ssa(program.source)),
    }


def _bench_args(program):
    return program.bench_args


@pytest.mark.parametrize("variant", ["thorin-O1", "thorin-O0", "ssa-O1"])
@pytest.mark.parametrize("program", PROGRAMS, ids=lambda p: p.name)
def test_f1_runtime(program, variant, report, benchmark):
    table = report("F1_runtime")
    global _initialized
    if not _initialized:
        table.columns("program", "variant", "vm_instructions", "result")
        table.note(
            "wall-clock per variant lives in the pytest-benchmark table; "
            "vm_instructions is deterministic.  Shape check: thorin-O1 "
            "~ ssa-O1 < thorin-O0."
        )
        _initialized = True

    compiled = _variants(program)[variant]()
    args = _bench_args(program)

    # Deterministic instruction count on a fresh VM.
    fresh_vm = bc.VM(compiled.program)
    result = fresh_vm.call(compiled.program, *_vm_call_args(compiled, program, args))
    instructions = fresh_vm.executed

    benchmark.pedantic(compiled.call, args=(program.entry, *args),
                       rounds=3, iterations=1)
    benchmark.extra_info["vm_instructions"] = instructions
    table.row(program.name, variant, instructions,
              compiled.call(program.entry, *args))

    # Record for the cross-variant shape assertion.
    _rows.setdefault(program.name, {})[variant] = instructions


def _vm_call_args(compiled, program, args):
    """(name, canonicalized args) for a raw VM call on either pipeline."""
    from repro.core import fold
    from repro.core import types as ct

    if hasattr(compiled, "fn_types"):  # CompiledWorld
        param_types, _ = compiled.fn_types[program.entry]
    else:  # CompiledSSA
        param_types = compiled._sigs[program.entry][0]
    vm_args = [fold.canonicalize(t.kind, a) if isinstance(t, ct.PrimType) else a
               for a, t in zip(args, param_types)]
    return [program.entry, *vm_args]


def test_f1_shape(report, benchmark):
    """After all variants ran: optimized beats unoptimized everywhere."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = report("F1_runtime")
    wins = 0
    total = 0
    for name, counts in _rows.items():
        if {"thorin-O1", "thorin-O0"} <= counts.keys():
            total += 1
            if counts["thorin-O1"] <= counts["thorin-O0"]:
                wins += 1
    if total:
        table.note(f"thorin-O1 <= thorin-O0 instructions on {wins}/{total} "
                   f"programs")
        assert wins >= total - 1  # allow one noisy outlier

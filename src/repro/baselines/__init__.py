"""Baseline IRs the paper compares against.

* :mod:`repro.baselines.ssa` — a classical CFG+SSA compiler ("LLVM
  lite"): basic blocks, explicit phi instructions, and the standard
  pass repertoire (constant propagation, DCE, SimplifyCFG with jump
  threading, inlining).  Phi repair and block surgery are *counted* —
  that bookkeeping is exactly what the graph IR makes vanish (T3).
* :mod:`repro.baselines.nested_cps` — a conventional nested CPS term
  language with explicit binders: inlining is substitution with
  alpha-renaming, and the renaming work is counted.
"""

"""The classical CFG+SSA baseline compiler ("LLVM lite")."""

from __future__ import annotations

from ...frontend import compile_to_ast
from .builder import BaselineError, lower_module
from .codegen import CompiledSSA, compile_module
from .ir import Module, print_function, print_module
from .passes import PassStats, optimize_module


def compile_source_ssa(source: str, *, optimize: bool = True,
                       stats_out: list | None = None) -> Module:
    """Compile Impala-lite source with the baseline pipeline."""
    module = lower_module(compile_to_ast(source))
    if optimize:
        stats = optimize_module(module)
        if stats_out is not None:
            stats_out.append(stats)
    return module


def run_ssa(module: Module, name: str, *args, max_steps: int | None = None):
    """Compile to the shared VM and call *name*.

    ``max_steps`` bounds executed VM instructions per call, for parity
    with the graph interpreter and the nested-CPS evaluator; exceeding
    it raises :class:`repro.backend.bytecode.VMLimitError`, a
    :class:`~repro.core.limits.ResourceLimitError`.
    """
    return CompiledSSA(module, max_steps=max_steps).call(name, *args)


__all__ = [
    "BaselineError",
    "CompiledSSA",
    "Module",
    "PassStats",
    "compile_module",
    "compile_source_ssa",
    "lower_module",
    "optimize_module",
    "print_function",
    "print_module",
    "run_ssa",
]

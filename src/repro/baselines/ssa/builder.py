"""AST → classical SSA lowering (Braun et al. construction, phi objects).

Shares the frontend (lexer/parser/sema) with the Thorin pipeline and
lowers the *same* typed AST, so F1 compares code generation and
optimization strategies, not parsers.  First-class functions are
rejected: the baseline models a conventional first-order imperative
compiler — which is exactly the paper's framing (higher-order programs
are where the graph IR pulls ahead).
"""

from __future__ import annotations

from ...core import types as ct
from ...frontend import ast
from ...frontend.errors import CompileError
from ...frontend.sema import BuiltinDecl, _MATH_BUILTINS
from ...core.primops import ArithKind, CmpRel, MathKind
from .ir import (
    Block,
    Br,
    Const,
    Function,
    Instr,
    Jmp,
    Module,
    Opcode,
    Phi,
    Ret,
    Value,
)

_ARITH_OPS = {
    "+": ArithKind.ADD, "-": ArithKind.SUB, "*": ArithKind.MUL,
    "/": ArithKind.DIV, "%": ArithKind.REM, "&": ArithKind.AND,
    "|": ArithKind.OR, "^": ArithKind.XOR, "<<": ArithKind.SHL,
    ">>": ArithKind.SHR,
}

_CMP_OPS = {
    "==": CmpRel.EQ, "!=": CmpRel.NE, "<": CmpRel.LT,
    "<=": CmpRel.LE, ">": CmpRel.GT, ">=": CmpRel.GE,
}


class BaselineError(CompileError):
    """The baseline compiler does not support this construct."""


def lower_module(module: ast.Module, name: str = "module") -> Module:
    """Lower a type-checked AST module to classical SSA."""
    out = Module(name)
    fns: dict[ast.FnDecl, Function] = {}
    for decl in module.functions:
        param_types = [(p.name, p.type) for p in decl.params]
        fn = Function(decl.name, param_types, decl.ret_type)
        fn.is_external = decl.is_extern
        out.add(fn)
        fns[decl] = fn
    for decl in module.functions:
        _FnLowerer(out, fns, decl, fns[decl]).run()
    # The eager statement-at-a-time placement above executes every
    # division where its *statement* stood; sink possibly-trapping
    # chains to their demand points so unoptimized and optimized SSA
    # both trap exactly where the graph interpreter does.
    from .passes import align_traps

    for fn in out.functions.values():
        align_traps(fn)
    return out


class _LoopCtx:
    def __init__(self, continue_target: Block, break_target: Block):
        self.continue_target = continue_target
        self.break_target = break_target


class _FnLowerer:
    def __init__(self, module: Module, fns: dict, decl: ast.FnDecl,
                 fn: Function):
        self.module = module
        self.fns = fns
        self.decl = decl
        self.fn = fn
        self.cur: Block | None = fn.new_block("entry")
        # Braun construction state
        self._defs: dict[Block, dict[object, Value]] = {self.cur: {}}
        self._sealed: set[Block] = {self.cur}
        self._incomplete: dict[Block, list[tuple[Phi, object]]] = {}
        self._preds: dict[Block, list[Block]] = {self.cur: []}
        self.slots: dict[ast.LetStmt, Instr] = {}
        self.loops: list[_LoopCtx] = []
        # Forwarding for phis dissolved by triviality cascades: values
        # held across reads must resolve through this table (the same
        # hazard exists in the Thorin builder; see frontend/builder.py).
        self._replacements: dict[Phi, Value] = {}
        # T3 bookkeeping
        self.phis_created = 0

    def _resolve(self, value: Value) -> Value:
        while isinstance(value, Phi):
            forwarded = self._replacements.get(value)
            if forwarded is None:
                break
            value = forwarded
        return value

    # ------------------------------------------------------------------
    # Braun-style variable handling (explicit phis)
    # ------------------------------------------------------------------

    def _new_block(self, name: str) -> Block:
        block = self.fn.new_block(name)
        self._defs[block] = {}
        self._preds[block] = []
        return block

    def _seal(self, block: Block) -> None:
        for phi, var in self._incomplete.pop(block, []):
            self._add_phi_operands(block, phi, var)
        self._sealed.add(block)

    def _link(self, pred: Block, succ: Block) -> None:
        assert succ not in self._sealed, f"late predecessor for {succ.name}"
        self._preds[succ].append(pred)

    def write(self, var: object, value: Value) -> None:
        assert self.cur is not None
        self._defs[self.cur][var] = value

    def read(self, var: object, type: ct.Type) -> Value:
        assert self.cur is not None
        return self._read(self.cur, var, type)

    def _read(self, block: Block, var: object, type: ct.Type) -> Value:
        local = self._defs[block].get(var)
        if local is not None:
            return self._resolve(local)
        if block not in self._sealed:
            phi = Phi(type, getattr(var, "name", "phi"))
            self.phis_created += 1
            block.add_phi(phi)
            self._incomplete.setdefault(block, []).append((phi, var))
            value: Value = phi
        else:
            preds = self._preds[block]
            if len(preds) == 1:
                value = self._read(preds[0], var, type)
            elif not preds:
                value = Const(type, None)  # undef
            else:
                phi = Phi(type, getattr(var, "name", "phi"))
                self.phis_created += 1
                block.add_phi(phi)
                self._defs[block][var] = phi
                value = self._add_phi_operands(block, phi, var)
        self._defs[block][var] = value
        return value

    def _add_phi_operands(self, block: Block, phi: Phi, var: object) -> Value:
        preds = list(self._preds[block])
        values = [self._read(pred, var, phi.type) for pred in preds]
        if phi.block is None or phi not in phi.block.phis:
            return self._resolve(self._defs[block][var])
        for pred, value in zip(preds, values):
            phi.set_value_for(pred, self._resolve(value))
        return self._try_remove_trivial(phi)

    def _try_remove_trivial(self, phi: Phi) -> Value:
        same: Value | None = None
        for _, value in phi.incoming:
            if value is phi or value is same:
                continue
            if same is not None:
                return phi
            same = value
        if same is None:
            same = Const(phi.type, None)
        users = self._phi_users(phi)
        self._replacements[phi] = same
        self._replace_value(phi, same)
        assert phi.block is not None
        phi.block.phis.remove(phi)
        for user in users:
            if isinstance(user, Phi) and user.block is not None \
                    and user in user.block.phis and user is not phi:
                self._try_remove_trivial(user)
        # The cascade may have dissolved `same` itself.
        return self._resolve(same)

    def _phi_users(self, phi: Phi) -> list[Value]:
        users: list[Value] = []
        for block in self.fn.blocks:
            for other in block.phis:
                if any(v is phi for _, v in other.incoming):
                    users.append(other)
        return users

    def _replace_value(self, old: Value, new: Value) -> None:
        for block in self.fn.blocks:
            for phi in block.phis:
                phi.incoming = [(b, new if v is old else v)
                                for b, v in phi.incoming]
            for instr in block.instrs:
                instr.operands = [new if o is old else o
                                  for o in instr.operands]
            t = block.terminator
            if isinstance(t, Br) and t.cond is old:
                t.cond = new
            elif isinstance(t, Ret) and t.value is old:
                t.value = new
        for defs in self._defs.values():
            for var, value in list(defs.items()):
                if value is old:
                    defs[var] = new

    # ------------------------------------------------------------------

    def run(self) -> None:
        for ast_param, ir_param in zip(self.decl.params, self.fn.params):
            self.write(ast_param, ir_param)
        value = self.emit_block(self.decl.body)
        if self.cur is not None:
            if self.decl.ret_type is None:
                self.cur.terminator = Ret(None)
            else:
                if value is None:
                    raise BaselineError("missing return value",
                                        self.decl.body.loc)
                self.cur.terminator = Ret(self._resolve(value))

    def emit(self, opcode: Opcode, type, operands, name="v", extra=None) -> Instr:
        assert self.cur is not None
        operands = [self._resolve(o) for o in operands]
        return self.cur.append(Instr(opcode, type, operands, name, extra))

    # -- statements -----------------------------------------------------

    def emit_block(self, block: ast.Block) -> Value | None:
        for stmt in block.stmts:
            if self.cur is None:
                return None
            self.emit_stmt(stmt)
        if block.result is not None and self.cur is not None:
            return self.emit_expr(block.result)
        return None

    def emit_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.LetStmt):
            value = self.emit_expr(stmt.init)
            if stmt.is_slot:
                slot = self.emit(Opcode.ALLOCA, ct.ptr_type(stmt.var_type),
                                 [], stmt.name, extra=stmt.var_type)
                self.slots[stmt] = slot
                self.emit(Opcode.STORE, ct.UNIT, [slot, value])
            else:
                self.write(stmt, value)
            return
        if isinstance(stmt, ast.AssignStmt):
            self._emit_assign(stmt)
            return
        if isinstance(stmt, ast.ExprStmt):
            self.emit_expr(stmt.expr)
            return
        if isinstance(stmt, ast.WhileStmt):
            self._emit_while(stmt)
            return
        if isinstance(stmt, ast.ForStmt):
            self._emit_for(stmt)
            return
        if isinstance(stmt, ast.BreakStmt):
            self._goto(self.loops[-1].break_target)
            return
        if isinstance(stmt, ast.ContinueStmt):
            self._goto(self.loops[-1].continue_target)
            return
        if isinstance(stmt, ast.ReturnStmt):
            value = (self.emit_expr(stmt.value)
                     if stmt.value is not None else None)
            assert self.cur is not None
            self.cur.terminator = Ret(
                self._resolve(value) if value is not None else None)
            self.cur = None
            return
        raise AssertionError(f"unhandled stmt {stmt!r}")

    def _goto(self, target: Block) -> None:
        assert self.cur is not None
        self.cur.terminator = Jmp(target)
        self._link(self.cur, target)
        self.cur = None

    def _branch(self, cond: Value, then_target: Block, else_target: Block) -> None:
        assert self.cur is not None
        self.cur.terminator = Br(self._resolve(cond), then_target, else_target)
        self._link(self.cur, then_target)
        self._link(self.cur, else_target)
        self.cur = None

    def _enter(self, block: Block) -> None:
        self.cur = block

    def _emit_assign(self, stmt: ast.AssignStmt) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            decl = target.decl
            assert isinstance(decl, ast.LetStmt)
            if decl.is_slot:
                ptr = self.slots[decl]
                new = self._assigned_value(
                    stmt, lambda: self.emit(Opcode.LOAD, decl.var_type, [ptr]),
                    decl.var_type)
                self.emit(Opcode.STORE, ct.UNIT, [ptr, new])
            else:
                new = self._assigned_value(
                    stmt, lambda: self.read(decl, decl.var_type),
                    decl.var_type)
                self.write(decl, new)
            return
        assert isinstance(target, ast.Index)
        ptr = self._emit_index_ptr(target)
        if ptr is None:
            raise BaselineError("cannot assign through immutable aggregate",
                                target.loc)
        new = self._assigned_value(
            stmt, lambda: self.emit(Opcode.LOAD, target.type, [ptr]),
            target.type)
        self.emit(Opcode.STORE, ct.UNIT, [ptr, new])

    def _assigned_value(self, stmt: ast.AssignStmt, read_old, type) -> Value:
        if stmt.op is None:
            return self.emit_expr(stmt.value)
        old = read_old()
        rhs = self.emit_expr(stmt.value)
        return self.emit(Opcode.ARITH, type, [old, rhs],
                         extra=_ARITH_OPS[stmt.op])

    def _emit_while(self, stmt: ast.WhileStmt) -> None:
        head = self._new_block("while_head")
        self._goto(head)
        self._enter(head)
        cond = self.emit_expr(stmt.cond)
        body = self._new_block("while_body")
        exit_ = self._new_block("while_exit")
        self._branch(cond, body, exit_)
        self._seal(body)
        self.loops.append(_LoopCtx(head, exit_))
        self._enter(body)
        self.emit_block(stmt.body)
        if self.cur is not None:
            self._goto(head)
        self._seal(head)
        self.loops.pop()
        self._seal(exit_)
        self._enter(exit_)

    def _emit_for(self, stmt: ast.ForStmt) -> None:
        start = self.emit_expr(stmt.start)
        end = self.emit_expr(stmt.end)
        self.write(stmt, start)
        head = self._new_block("for_head")
        self._goto(head)
        self._enter(head)
        i = self.read(stmt, stmt.var_type)
        cond = self.emit(Opcode.CMP, ct.BOOL, [i, end], extra=CmpRel.LT)
        body = self._new_block("for_body")
        exit_ = self._new_block("for_exit")
        incr = self._new_block("for_incr")
        self._branch(cond, body, exit_)
        self._seal(body)
        self.loops.append(_LoopCtx(incr, exit_))
        self._enter(body)
        self.emit_block(stmt.body)
        if self.cur is not None:
            self._goto(incr)
        self._seal(incr)
        self.loops.pop()
        self._enter(incr)
        next_i = self.emit(Opcode.ARITH, stmt.var_type,
                           [self.read(stmt, stmt.var_type),
                            Const(stmt.var_type, 1)],
                           extra=ArithKind.ADD)
        self.write(stmt, next_i)
        self._goto(head)
        self._seal(head)
        self._seal(exit_)
        self._enter(exit_)

    # -- expressions ------------------------------------------------------

    def emit_expr(self, expr: ast.Expr) -> Value | None:
        if isinstance(expr, ast.IntLit):
            from ...core import fold

            return Const(expr.type, fold.canonicalize(expr.type.kind, expr.value))
        if isinstance(expr, ast.FloatLit):
            from ...core import fold

            return Const(expr.type, fold.canonicalize(expr.type.kind, expr.value))
        if isinstance(expr, ast.BoolLit):
            return Const(ct.BOOL, expr.value)
        if isinstance(expr, ast.UnitLit):
            return None
        if isinstance(expr, ast.Name):
            return self._emit_name(expr)
        if isinstance(expr, ast.Block):
            return self.emit_block(expr)
        if isinstance(expr, ast.TupleLit):
            elems = [self.emit_expr(e) for e in expr.elems]
            return self.emit(Opcode.TUPLE, expr.type, elems)
        if isinstance(expr, ast.ArrayLit):
            if expr.repeat is not None:
                value = self.emit_expr(expr.repeat)
                return self.emit(Opcode.TUPLE, expr.type,
                                 [value] * expr.count)
            return self.emit(Opcode.TUPLE, expr.type,
                             [self.emit_expr(e) for e in expr.elems])
        if isinstance(expr, ast.Unary):
            return self._emit_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._emit_binary(expr)
        if isinstance(expr, ast.CastExpr):
            value = self.emit_expr(expr.value)
            return self.emit(Opcode.CAST, expr.type, [value])
        if isinstance(expr, ast.IfExpr):
            return self._emit_if(expr)
        if isinstance(expr, ast.Call):
            return self._emit_call(expr)
        if isinstance(expr, ast.Index):
            ptr = self._emit_index_ptr(expr)
            if ptr is not None:
                return self.emit(Opcode.LOAD, expr.type, [ptr])
            base = self.emit_expr(expr.base)
            index = self._as_i64(self.emit_expr(expr.index))
            return self.emit(Opcode.EXTRACT, expr.type, [base, index])
        if isinstance(expr, ast.TupleField):
            base = self.emit_expr(expr.base)
            return self.emit(Opcode.EXTRACT, expr.type,
                             [base, Const(ct.I64, expr.field)])
        if isinstance(expr, ast.Lambda):
            raise BaselineError(
                "the SSA baseline has no closures (first-order only)",
                expr.loc,
            )
        raise AssertionError(f"unhandled expr {expr!r}")

    def _as_i64(self, value: Value) -> Value:
        if value.type is ct.I64:
            return value
        return self.emit(Opcode.CAST, ct.I64, [value])

    def _emit_name(self, expr: ast.Name) -> Value:
        decl = expr.decl
        if isinstance(decl, ast.FnDecl):
            raise BaselineError(
                "the SSA baseline has no function values", expr.loc
            )
        if isinstance(decl, ast.LetStmt):
            if decl.is_slot:
                return self.emit(Opcode.LOAD, decl.var_type,
                                 [self.slots[decl]])
            return self.read(decl, decl.var_type)
        if isinstance(decl, ast.ParamDecl):
            return self.read(decl, decl.type)
        if isinstance(decl, ast.ForStmt):
            return self.read(decl, decl.var_type)
        raise AssertionError(f"unhandled decl {decl!r}")

    def _emit_unary(self, expr: ast.Unary) -> Value:
        operand = self.emit_expr(expr.operand)
        t = expr.type
        if expr.op == "!":
            if t is ct.BOOL:
                return self.emit(Opcode.ARITH, t, [operand, Const(t, True)],
                                 extra=ArithKind.XOR)
            ones = Const(t, (1 << t.bitwidth) - 1)
            return self.emit(Opcode.ARITH, t, [operand, ones],
                             extra=ArithKind.XOR)
        zero = Const(t, -0.0 if t.is_float else 0)
        return self.emit(Opcode.ARITH, t, [zero, operand],
                         extra=ArithKind.SUB)

    def _emit_binary(self, expr: ast.Binary) -> Value:
        if expr.op in ("&&", "||"):
            return self._emit_shortcut(expr)
        lhs = self.emit_expr(expr.lhs)
        rhs = self.emit_expr(expr.rhs)
        if expr.op in _CMP_OPS:
            return self.emit(Opcode.CMP, ct.BOOL, [lhs, rhs],
                             extra=_CMP_OPS[expr.op])
        return self.emit(Opcode.ARITH, expr.type, [lhs, rhs],
                         extra=_ARITH_OPS[expr.op])

    def _emit_shortcut(self, expr: ast.Binary) -> Value:
        cond = self.emit_expr(expr.lhs)
        rhs_b = self._new_block("sc_rhs")
        skip_b = self._new_block("sc_skip")
        join = self._new_block("sc_join")
        if expr.op == "&&":
            self._branch(cond, rhs_b, skip_b)
            skip_value: Value = Const(ct.BOOL, False)
        else:
            self._branch(cond, skip_b, rhs_b)
            skip_value = Const(ct.BOOL, True)
        self._seal(rhs_b)
        self._seal(skip_b)
        self._enter(rhs_b)
        rhs = self.emit_expr(expr.rhs)
        if self.cur is not None:
            self.write(expr, rhs)
            self._goto(join)
        self._enter(skip_b)
        self.write(expr, skip_value)
        self._goto(join)
        self._seal(join)
        self._enter(join)
        return self.read(expr, ct.BOOL)

    def _emit_if(self, expr: ast.IfExpr) -> Value | None:
        cond = self.emit_expr(expr.cond)
        then_b = self._new_block("if_then")
        else_b = self._new_block("if_else")
        join = self._new_block("if_join")
        self._branch(cond, then_b, else_b)
        self._seal(then_b)
        self._seal(else_b)
        has_value = expr.type is not None

        self._enter(then_b)
        value = self.emit_block(expr.then_block)
        if self.cur is not None:
            if has_value:
                self.write(expr, value)
            self._goto(join)

        self._enter(else_b)
        if expr.else_block is not None:
            if isinstance(expr.else_block, ast.IfExpr):
                value = self._emit_if(expr.else_block)
            else:
                value = self.emit_block(expr.else_block)
        else:
            value = None
        if self.cur is not None:
            if has_value:
                self.write(expr, value)
            self._goto(join)

        self._seal(join)
        self._enter(join)
        if not self._preds[join]:
            self.cur = None
            return None
        if has_value:
            return self.read(expr, expr.type)
        return None

    def _emit_call(self, expr: ast.Call) -> Value | None:
        callee = expr.callee
        if isinstance(callee, ast.Name) and isinstance(callee.decl, BuiltinDecl):
            return self._emit_builtin(expr, callee.decl)
        if not (isinstance(callee, ast.Name)
                and isinstance(callee.decl, ast.FnDecl)):
            raise BaselineError("the SSA baseline only has direct calls",
                                expr.loc)
        target = self.fns[callee.decl]
        args = [self.emit_expr(a) for a in expr.args]
        return self.emit(Opcode.CALL,
                         expr.type if expr.type is not None else ct.UNIT,
                         args, callee.decl.name, extra=target)

    def _emit_builtin(self, expr: ast.Call, decl: BuiltinDecl) -> Value | None:
        if decl.name in _MATH_BUILTINS:
            value = self.emit_expr(expr.args[0])
            return self.emit(Opcode.MATH, value.type, [value],
                             extra=MathKind(decl.name))
        if decl.name.startswith("new_buf_"):
            count = self.emit_expr(expr.args[0])
            ret = decl.ret_type
            assert isinstance(ret, ct.PtrType)
            return self.emit(Opcode.ALLOC, ret, [count], extra=ret.pointee)
        if decl.name.startswith("print_"):
            value = self.emit_expr(expr.args[0])
            kind = decl.name.split("_", 1)[1]
            self.emit(Opcode.PRINT, ct.UNIT, [value], extra=kind)
            return None
        raise AssertionError(decl.name)

    def _emit_index_ptr(self, expr: ast.Index) -> Value | None:
        base = expr.base
        base_t = base.type
        if isinstance(base_t, ct.PtrType):
            ptr = self.emit_expr(base)
            index = self._as_i64(self.emit_expr(expr.index))
            return self.emit(Opcode.GEP, ct.ptr_type(expr.type), [ptr, index])
        if (isinstance(base, ast.Name) and isinstance(base.decl, ast.LetStmt)
                and base.decl.is_slot):
            ptr = self.slots[base.decl]
            index = self._as_i64(self.emit_expr(expr.index))
            return self.emit(Opcode.GEP, ct.ptr_type(expr.type), [ptr, index])
        return None

"""Classical optimization passes over the SSA baseline IR.

The same repertoire the Thorin pipeline gets structurally:

* :func:`constant_fold` — fold instructions with constant operands and
  branches with constant conditions (re-using ``core.fold`` so both
  compilers agree bit for bit);
* :func:`dce` — drop unused pure instructions;
* :func:`simplify_cfg` — remove unreachable blocks, thread jumps
  through empty forwarders and merge straight-line chains; every phi
  touched along the way is **counted** (``phi_repairs``) — this is the
  bookkeeping lambda mangling never performs (experiment T3);
* :func:`inline_functions` — clone callee blocks into the caller, with
  value remapping and return-merge phis (again counted).

``optimize_module`` runs them to a fixed point.
"""

from __future__ import annotations

from ...core import fold
from ...core import types as ct
from .ir import (
    Block,
    Br,
    Const,
    Function,
    Instr,
    Jmp,
    Module,
    Opcode,
    Phi,
    Ret,
    Unreachable,
    Value,
)


class PassStats:
    """Counters for one pass run (aggregated by ``optimize_module``)."""

    def __init__(self) -> None:
        self.folded = 0
        self.dce_removed = 0
        self.blocks_removed = 0
        self.jumps_threaded = 0
        self.blocks_merged = 0
        self.phi_repairs = 0          # phi entries edited/moved/rewritten
        self.phis_placed = 0          # new phis created by transformations
        self.inlined_calls = 0
        self.blocks_cloned = 0
        self.values_remapped = 0
        self.trap_moves = 0           # trapping chains sunk to demand points

    def merge(self, other: "PassStats") -> None:
        for key, value in vars(other).items():
            setattr(self, key, getattr(self, key) + value)

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))

    def total_bookkeeping(self) -> int:
        """The T3 headline number: structural repair operations."""
        return self.phi_repairs + self.phis_placed + self.values_remapped


_PURE_OPCODES = {
    Opcode.ARITH, Opcode.CMP, Opcode.CAST, Opcode.BITCAST, Opcode.MATH,
    Opcode.SELECT, Opcode.TUPLE, Opcode.EXTRACT, Opcode.INSERT, Opcode.GEP,
}


def _replace_everywhere(fn: Function, old: Value, new: Value,
                        stats: PassStats) -> None:
    for block in fn.blocks:
        for phi in block.phis:
            for i, (b, v) in enumerate(phi.incoming):
                if v is old:
                    phi.incoming[i] = (b, new)
                    stats.phi_repairs += 1
        for instr in block.instrs:
            instr.operands = [new if o is old else o for o in instr.operands]
        t = block.terminator
        if isinstance(t, Br) and t.cond is old:
            t.cond = new
        elif isinstance(t, Ret) and t.value is old:
            t.value = new


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------


def _fold_instr(instr: Instr) -> Const | None:
    ops = instr.operands
    if not all(isinstance(o, Const) for o in ops):
        return None
    if any(o.value is None for o in ops):
        return None  # undef operand: leave it
    values = [o.value for o in ops]
    try:
        if instr.opcode is Opcode.ARITH:
            prim = instr.type
            assert isinstance(prim, ct.PrimType)
            return Const(prim, fold.arith(instr.extra, prim, *values))
        if instr.opcode is Opcode.CMP:
            prim = ops[0].type
            assert isinstance(prim, ct.PrimType)
            return Const(ct.BOOL, fold.compare(instr.extra, prim, *values))
        if instr.opcode is Opcode.CAST:
            to, frm = instr.type, ops[0].type
            if isinstance(to, ct.PrimType) and isinstance(frm, ct.PrimType):
                return Const(to, fold.cast(to, frm, values[0]))
        if instr.opcode is Opcode.MATH:
            prim = instr.type
            assert isinstance(prim, ct.PrimType)
            return Const(prim, fold.math_op(instr.extra, prim, values[0]))
        if instr.opcode is Opcode.SELECT:
            return ops[1] if values[0] else ops[2]
    except fold.EvalError:
        return None  # keep the trap
    return None


def constant_fold(fn: Function) -> PassStats:
    stats = PassStats()
    changed = True
    while changed:
        changed = False
        for block in fn.reachable_blocks():
            for instr in list(block.instrs):
                folded = _fold_instr(instr)
                if folded is not None:
                    _replace_everywhere(fn, instr, folded, stats)
                    block.instrs.remove(instr)
                    stats.folded += 1
                    changed = True
            t = block.terminator
            if isinstance(t, Br) and isinstance(t.cond, Const) \
                    and t.cond.value is not None:
                target = t.then_target if t.cond.value else t.else_target
                dropped = t.else_target if t.cond.value else t.then_target
                block.terminator = Jmp(target)
                _remove_phi_entries(dropped, block, stats)
                stats.folded += 1
                changed = True
    return stats


def _remove_phi_entries(block: Block, pred: Block, stats: PassStats) -> None:
    for phi in block.phis:
        before = len(phi.incoming)
        phi.incoming = [(b, v) for b, v in phi.incoming if b is not pred]
        stats.phi_repairs += before - len(phi.incoming)


# ---------------------------------------------------------------------------
# dead code elimination
# ---------------------------------------------------------------------------


def dce(fn: Function) -> PassStats:
    stats = PassStats()
    changed = True
    while changed:
        changed = False
        used: set[Value] = set()
        for block in fn.blocks:
            for phi in block.phis:
                used.update(v for _, v in phi.incoming)
            for instr in block.instrs:
                used.update(instr.operands)
            t = block.terminator
            if isinstance(t, Br):
                used.add(t.cond)
            elif isinstance(t, Ret) and t.value is not None:
                used.add(t.value)
        for block in fn.blocks:
            for instr in list(block.instrs):
                if instr.opcode in _PURE_OPCODES and instr not in used:
                    block.instrs.remove(instr)
                    stats.dce_removed += 1
                    changed = True
            for phi in list(block.phis):
                if phi not in used:
                    block.phis.remove(phi)
                    stats.dce_removed += 1
                    changed = True
    return stats


# ---------------------------------------------------------------------------
# CFG simplification (jump threading, block merging) — with phi repair
# ---------------------------------------------------------------------------


def simplify_cfg(fn: Function) -> PassStats:
    stats = PassStats()
    changed = True
    while changed:
        changed = False
        reachable = fn.reachable_blocks()
        if len(reachable) != len(fn.blocks):
            removed = [b for b in fn.blocks if b not in set(reachable)]
            for dead in removed:
                for succ in set(dead.successors()):
                    if succ in set(reachable):
                        _remove_phi_entries(succ, dead, stats)
            fn.blocks = reachable
            stats.blocks_removed += len(removed)
            changed = True

        preds = fn.predecessors()

        # Thread jumps through empty forwarder blocks.
        for block in list(fn.blocks):
            if block is fn.entry or block.phis or block.instrs:
                continue
            t = block.terminator
            if not isinstance(t, Jmp) or t.target is block:
                continue
            target = t.target
            # A predecessor that already branches to `target` would make
            # phi entries ambiguous; skip those (classic restriction).
            if any(target in p.successors() for p in preds[block]):
                continue
            for pred in preds[block]:
                pt = pred.terminator
                if isinstance(pt, Jmp):
                    pt.target = target
                elif isinstance(pt, Br):
                    if pt.then_target is block:
                        pt.then_target = target
                    if pt.else_target is block:
                        pt.else_target = target
                # phi repair: the value that flowed through `block` now
                # flows in directly from `pred`.
                for phi in target.phis:
                    value = phi.value_for(block)
                    phi.set_value_for(pred, value)
                    stats.phi_repairs += 1
            for phi in target.phis:
                phi.incoming = [(b, v) for b, v in phi.incoming
                                if b is not block]
                stats.phi_repairs += 1
            fn.blocks.remove(block)
            stats.jumps_threaded += 1
            changed = True
            break  # recompute preds

        if changed:
            continue

        # Merge straight-line pairs: single successor with single pred.
        for block in list(fn.blocks):
            t = block.terminator
            if not isinstance(t, Jmp):
                continue
            succ = t.target
            if succ is block or succ is fn.entry:
                continue
            if len(preds[succ]) != 1:
                continue
            # fold succ's phis (single incoming) into direct values
            for phi in list(succ.phis):
                value = phi.value_for(block)
                _replace_everywhere(fn, phi, value, stats)
                succ.phis.remove(phi)
                stats.phi_repairs += 1
            for instr in succ.instrs:
                instr.block = block
                block.instrs.append(instr)
            block.terminator = succ.terminator
            for after in set(succ.successors()):
                for phi in after.phis:
                    for i, (b, v) in enumerate(phi.incoming):
                        if b is succ:
                            phi.incoming[i] = (block, v)
                            stats.phi_repairs += 1
            fn.blocks.remove(succ)
            stats.blocks_merged += 1
            changed = True
            break
    return stats


# ---------------------------------------------------------------------------
# trap alignment
# ---------------------------------------------------------------------------


def _maybe_traps(instr: Instr) -> bool:
    """Can executing *instr* trap?  Integer ``div``/``rem`` whose divisor
    is not a provably nonzero constant (undef counts as possibly zero)."""
    if instr.opcode is not Opcode.ARITH or not instr.extra.is_division:
        return False
    prim = instr.type
    if not (isinstance(prim, ct.PrimType) and prim.is_int):
        return False
    rhs = instr.operands[1]
    return not (isinstance(rhs, Const) and rhs.value not in (None, 0))


def align_traps(fn: Function) -> PassStats:
    """Match the graph IR's lazy trap semantics on the eager SSA lowering.

    The AST lowerer places every instruction in the block where its
    statement appeared, so ``let d = a / b;`` executes the division even
    when no path that *uses* ``d`` runs — the classical baseline traps
    where the graph interpreter (which only evaluates primops referenced
    by an executed body) does not.  This pass sinks every pure
    instruction whose transitive pure-operand chain can trap to its
    actual demand points: a fresh clone of the chain is materialized
    immediately before each effectful user, before the terminator for
    branch/return uses, and at the tail of the predecessor block for phi
    edges; the hoisted originals are then deleted.  An unused trapping
    chain disappears entirely — exactly like a dead primop in the graph.
    """
    stats = PassStats()
    tainted: set[Instr] = set()
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for instr in block.instrs:
                if instr in tainted or instr.opcode not in _PURE_OPCODES:
                    continue
                if _maybe_traps(instr) or any(
                        o in tainted for o in instr.operands):
                    tainted.add(instr)
                    changed = True
    if not tainted:
        return stats

    def clone_chain(value: Value, out: list[Instr],
                    memo: dict[Instr, Instr]) -> Value:
        if not isinstance(value, Instr) or value not in tainted:
            return value
        hit = memo.get(value)
        if hit is not None:
            return hit
        ops = [clone_chain(o, out, memo) for o in value.operands]
        clone = Instr(value.opcode, value.type, ops, value.name, value.extra)
        out.append(clone)
        memo[value] = clone
        stats.trap_moves += 1
        return clone

    for block in fn.blocks:
        rebuilt: list[Instr] = []
        for instr in block.instrs:
            if instr in tainted:
                continue  # materialized on demand at its anchors
            if any(o in tainted for o in instr.operands):
                memo: dict[Instr, Instr] = {}
                instr.operands = [clone_chain(o, rebuilt, memo)
                                  for o in instr.operands]
            rebuilt.append(instr)
        t = block.terminator
        if isinstance(t, Br) and isinstance(t.cond, Instr) \
                and t.cond in tainted:
            t.cond = clone_chain(t.cond, rebuilt, {})
        elif isinstance(t, Ret) and isinstance(t.value, Instr) \
                and t.value in tainted:
            t.value = clone_chain(t.value, rebuilt, {})
        block.instrs = rebuilt
        for instr in rebuilt:
            instr.block = block

    # Phi edges: the incoming value is demanded when the predecessor
    # commits to the edge, so the chain belongs at the predecessor tail.
    for block in fn.blocks:
        for phi in block.phis:
            for i, (pred, value) in enumerate(phi.incoming):
                if isinstance(value, Instr) and value in tainted:
                    tail: list[Instr] = []
                    replacement = clone_chain(value, tail, {})
                    for extra_instr in tail:
                        pred.append(extra_instr)
                    phi.incoming[i] = (pred, replacement)
                    stats.phi_repairs += 1
    return stats


# ---------------------------------------------------------------------------
# inlining
# ---------------------------------------------------------------------------


def _clone_function_body(callee: Function, args: list[Value],
                         caller: Function, stats: PassStats):
    """Clone callee's blocks into caller; returns (entry, [(block, retval)])."""
    block_map: dict[Block, Block] = {}
    value_map: dict[Value, Value] = {}
    for param, arg in zip(callee.params, args):
        value_map[param] = arg

    for block in callee.blocks:
        clone = caller.new_block(f"{callee.name}.{block.name}")
        block_map[block] = clone
        stats.blocks_cloned += 1

    def remap(value: Value) -> Value:
        if isinstance(value, Const):
            return value
        mapped = value_map.get(value)
        assert mapped is not None, f"unmapped value {value!r}"
        stats.values_remapped += 1
        return mapped

    returns: list[tuple[Block, Value | None]] = []
    # First create phi/instr shells so forward references resolve.
    for block in callee.blocks:
        clone = block_map[block]
        for phi in block.phis:
            new_phi = Phi(phi.type, phi.name)
            clone.add_phi(new_phi)
            value_map[phi] = new_phi
            stats.phis_placed += 1
        for instr in block.instrs:
            new_instr = Instr(instr.opcode, instr.type, [], instr.name,
                              instr.extra)
            clone.append(new_instr)
            value_map[instr] = new_instr
    # Now fill operands and terminators.
    for block in callee.blocks:
        clone = block_map[block]
        for phi, new_phi in zip(block.phis, clone.phis):
            for b, v in phi.incoming:
                new_phi.incoming.append((block_map[b], remap(v)))
                stats.phi_repairs += 1
        for instr, new_instr in zip(block.instrs, clone.instrs):
            new_instr.operands = [remap(o) for o in instr.operands]
        t = block.terminator
        if isinstance(t, Jmp):
            clone.terminator = Jmp(block_map[t.target])
        elif isinstance(t, Br):
            clone.terminator = Br(remap(t.cond), block_map[t.then_target],
                                  block_map[t.else_target])
        elif isinstance(t, Ret):
            value = remap(t.value) if t.value is not None else None
            returns.append((clone, value))
        elif isinstance(t, Unreachable):
            clone.terminator = Unreachable()
        else:
            raise AssertionError("callee block without terminator")
    return block_map[callee.entry], returns


def _function_size(fn: Function) -> int:
    return sum(len(b.instrs) + len(b.phis) + 1 for b in fn.blocks)


def _is_recursive(fn: Function) -> bool:
    for block in fn.blocks:
        for instr in block.instrs:
            if instr.opcode is Opcode.CALL and instr.extra is fn:
                return True
    return False


def inline_functions(module: Module, *, size_threshold: int = 40,
                     budget: int = 64) -> PassStats:
    stats = PassStats()
    call_counts: dict[Function, int] = {}
    for fn in module.functions.values():
        for block in fn.blocks:
            for instr in block.instrs:
                if instr.opcode is Opcode.CALL:
                    call_counts[instr.extra] = call_counts.get(instr.extra, 0) + 1

    for fn in list(module.functions.values()):
        for block in list(fn.blocks):
            if budget <= 0:
                break
            for instr in list(block.instrs):
                if instr.opcode is not Opcode.CALL:
                    continue
                callee: Function = instr.extra
                if callee is fn or _is_recursive(callee):
                    continue
                once = call_counts.get(callee, 0) == 1 and not callee.is_external
                small = _function_size(callee) <= size_threshold
                if not (once or small):
                    continue
                _inline_site(fn, block, instr, stats)
                stats.inlined_calls += 1
                budget -= 1
                break  # block structure changed; move on
    return stats


def _inline_site(fn: Function, block: Block, call: Instr,
                 stats: PassStats) -> None:
    callee: Function = call.extra
    index = block.instrs.index(call)
    # Split the block after the call.
    cont = fn.new_block(f"{block.name}.cont")
    cont.instrs = block.instrs[index + 1:]
    for moved in cont.instrs:
        moved.block = cont
    cont.terminator = block.terminator
    # Successor phis must now name the continuation block as pred.
    for succ in set(cont.successors()):
        for phi in succ.phis:
            for i, (b, v) in enumerate(phi.incoming):
                if b is block:
                    phi.incoming[i] = (cont, v)
                    stats.phi_repairs += 1
    block.instrs = block.instrs[:index]
    entry, returns = _clone_function_body(callee, call.operands, fn, stats)
    block.terminator = Jmp(entry)
    # Merge return values via a phi in the continuation block.
    if callee.ret_type is not None:
        if len(returns) == 1:
            ret_block, value = returns[0]
            ret_block.terminator = Jmp(cont)
            _replace_everywhere(fn, call, value, stats)
        else:
            phi = Phi(callee.ret_type, f"{callee.name}.ret")
            cont.add_phi(phi)
            stats.phis_placed += 1
            for ret_block, value in returns:
                ret_block.terminator = Jmp(cont)
                phi.incoming.append((ret_block, value))
                stats.phi_repairs += 1
            _replace_everywhere(fn, call, phi, stats)
    else:
        for ret_block, _ in returns:
            ret_block.terminator = Jmp(cont)


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def optimize_module(module: Module, *, max_rounds: int = 6) -> PassStats:
    total = PassStats()
    for _ in range(max_rounds):
        round_work = 0
        inline_stats = inline_functions(module)
        total.merge(inline_stats)
        round_work += inline_stats.inlined_calls
        for fn in module.functions.values():
            for pass_fn in (constant_fold, simplify_cfg, dce):
                stats = pass_fn(fn)
                total.merge(stats)
                round_work += (stats.folded + stats.jumps_threaded
                               + stats.blocks_merged + stats.dce_removed
                               + stats.blocks_removed)
        # Drop dead internal functions.
        live = {f for f in module.functions.values() if f.is_external}
        for fn in module.functions.values():
            for b in fn.blocks:
                for i in b.instrs:
                    if i.opcode is Opcode.CALL:
                        live.add(i.extra)
        before = len(module.functions)
        module.functions = {name: f for name, f in module.functions.items()
                            if f in live}
        round_work += before - len(module.functions)
        if not round_work:
            break
    return total

"""A classical CFG+SSA intermediate representation ("LLVM lite").

The contrast object of the evaluation: basic blocks in an explicit
list, phi *instructions* at block heads, values referenced by object
identity, a textual printer.  Transformations must maintain the
phi/predecessor correspondence by hand — the bookkeeping counted in
experiment T3.

Types are reused from :mod:`repro.core.types`; scalar semantics from
:mod:`repro.core.fold` — both compilers compute with identical numbers.
"""

from __future__ import annotations

import enum
from typing import Iterable

from ...core.primops import ArithKind, CmpRel, MathKind
from ...core.types import Type


class Value:
    """Anything an instruction can reference."""

    __slots__ = ("type", "name")

    def __init__(self, type: Type, name: str):
        self.type = type
        self.name = name

    def ref(self) -> str:
        return f"%{self.name}"


class Const(Value):
    """An immediate constant (canonical scalar value or None = undef)."""

    __slots__ = ("value",)

    def __init__(self, type: Type, value):
        super().__init__(type, "const")
        self.value = value

    def ref(self) -> str:
        return f"{self.type}:{self.value}"


class Param(Value):
    __slots__ = ("index",)

    def __init__(self, type: Type, name: str, index: int):
        super().__init__(type, name)
        self.index = index


class Opcode(enum.Enum):
    ARITH = "arith"        # extra: ArithKind
    CMP = "cmp"            # extra: CmpRel
    CAST = "cast"
    BITCAST = "bitcast"
    MATH = "math"          # extra: MathKind
    SELECT = "select"
    TUPLE = "tuple"
    EXTRACT = "extract"    # extra: literal index or None (dynamic)
    INSERT = "insert"
    ALLOCA = "alloca"      # extra: pointee type; stack cell
    ALLOC = "alloc"        # extra: pointee type; heap cell (ops: count)
    LOAD = "load"
    STORE = "store"
    GEP = "gep"            # address of element (ops: ptr, index)
    CALL = "call"          # extra: Function
    PRINT = "print"        # extra: "i64" | "f64" | "char"


class Instr(Value):
    """A (possibly void) instruction inside a block."""

    __slots__ = ("opcode", "operands", "extra", "block")

    def __init__(self, opcode: Opcode, type: Type, operands: list[Value],
                 name: str = "v", extra=None):
        super().__init__(type, name)
        self.opcode = opcode
        self.operands = list(operands)
        self.extra = extra
        self.block: "Block | None" = None

    def __repr__(self) -> str:  # pragma: no cover
        ops = ", ".join(o.ref() for o in self.operands)
        return f"<{self.opcode.value} {self.name} {ops}>"


class Phi(Value):
    """A phi node: one incoming value per predecessor, kept aligned by hand."""

    __slots__ = ("incoming", "block")

    def __init__(self, type: Type, name: str = "phi"):
        super().__init__(type, name)
        self.incoming: list[tuple[Block, Value]] = []
        self.block: "Block | None" = None

    def value_for(self, pred: "Block") -> Value:
        for block, value in self.incoming:
            if block is pred:
                return value
        raise KeyError(f"phi {self.name} has no incoming for {pred.name}")

    def set_value_for(self, pred: "Block", value: Value) -> None:
        for i, (block, _) in enumerate(self.incoming):
            if block is pred:
                self.incoming[i] = (block, value)
                return
        self.incoming.append((pred, value))


class Terminator:
    __slots__ = ()


class Jmp(Terminator):
    __slots__ = ("target",)

    def __init__(self, target: "Block"):
        self.target = target


class Br(Terminator):
    __slots__ = ("cond", "then_target", "else_target")

    def __init__(self, cond: Value, then_target: "Block", else_target: "Block"):
        self.cond = cond
        self.then_target = then_target
        self.else_target = else_target


class Ret(Terminator):
    __slots__ = ("value",)

    def __init__(self, value: Value | None):
        self.value = value


class Unreachable(Terminator):
    __slots__ = ()


class Block:
    __slots__ = ("name", "phis", "instrs", "terminator", "function")

    def __init__(self, name: str):
        self.name = name
        self.phis: list[Phi] = []
        self.instrs: list[Instr] = []
        self.terminator: Terminator | None = None
        self.function: "Function | None" = None

    def successors(self) -> list["Block"]:
        t = self.terminator
        if isinstance(t, Jmp):
            return [t.target]
        if isinstance(t, Br):
            if t.then_target is t.else_target:
                return [t.then_target]
            return [t.then_target, t.else_target]
        return []

    def append(self, instr: Instr) -> Instr:
        instr.block = self
        self.instrs.append(instr)
        return instr

    def add_phi(self, phi: Phi) -> Phi:
        phi.block = self
        self.phis.append(phi)
        return phi


class Function:
    __slots__ = ("name", "params", "ret_type", "blocks", "module", "is_external")

    def __init__(self, name: str, param_types: Iterable[tuple[str, Type]],
                 ret_type: Type | None):
        self.name = name
        self.params = [Param(t, n, i)
                       for i, (n, t) in enumerate(param_types)]
        self.ret_type = ret_type
        self.blocks: list[Block] = []
        self.module: "Module | None" = None
        self.is_external = False

    @property
    def entry(self) -> Block:
        return self.blocks[0]

    def new_block(self, name: str) -> Block:
        block = Block(f"{name}{len(self.blocks)}")
        block.function = self
        self.blocks.append(block)
        return block

    def predecessors(self) -> dict[Block, list[Block]]:
        preds: dict[Block, list[Block]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in set(block.successors()):
                preds[succ].append(block)
        return preds

    def reachable_blocks(self) -> list[Block]:
        seen: set[Block] = set()
        order: list[Block] = []
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block in seen:
                continue
            seen.add(block)
            order.append(block)
            stack.extend(block.successors())
        return order


class Module:
    __slots__ = ("name", "functions")

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: dict[str, Function] = {}

    def add(self, fn: Function) -> Function:
        fn.module = self
        self.functions[fn.name] = fn
        return fn


# ---------------------------------------------------------------------------
# printing (for tests & debugging)
# ---------------------------------------------------------------------------


def print_function(fn: Function) -> str:
    lines = [f"fn {fn.name}({', '.join(p.ref() for p in fn.params)}) "
             f"-> {fn.ret_type}:"]
    names: dict[Value, str] = {}

    def ref(v: Value) -> str:
        if isinstance(v, Const):
            return v.ref()
        if v not in names:
            names[v] = f"%{v.name}.{len(names)}"
        return names[v]

    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for phi in block.phis:
            inc = ", ".join(f"[{b.name}: {ref(v)}]" for b, v in phi.incoming)
            lines.append(f"  {ref(phi)} = phi {inc}")
        for instr in block.instrs:
            ops = ", ".join(ref(o) for o in instr.operands)
            extra = f" {instr.extra}" if instr.extra is not None else ""
            lines.append(f"  {ref(instr)} = {instr.opcode.value}{extra} {ops}")
        t = block.terminator
        if isinstance(t, Jmp):
            lines.append(f"  jmp {t.target.name}")
        elif isinstance(t, Br):
            lines.append(
                f"  br {ref(t.cond)} {t.then_target.name} {t.else_target.name}"
            )
        elif isinstance(t, Ret):
            lines.append(f"  ret {ref(t.value) if t.value else ''}")
        elif isinstance(t, Unreachable):
            lines.append("  unreachable")
        else:
            lines.append("  <no terminator>")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    return "\n\n".join(print_function(f) for f in module.functions.values())

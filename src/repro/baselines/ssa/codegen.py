"""SSA baseline → the shared register bytecode.

Both compilers target the same :mod:`repro.backend.bytecode` machine, so
F1's run-time numbers compare generated code, not interpreters.  Phi
elimination happens here the classical way: parallel copies on each
incoming edge (split conceptually; we emit the moves in the predecessor
since our edges are never critical for correctness of this IR's use —
when they are, an edge block is materialized).
"""

from __future__ import annotations

from ...backend import bytecode as bc
from ...core import fold
from ...core import types as ct
from .ir import (
    Block,
    Br,
    Const,
    Function,
    Instr,
    Jmp,
    Module,
    Opcode,
    Phi,
    Ret,
    Unreachable,
    Value,
)


class SSACodegenError(Exception):
    pass


def compile_module(module: Module) -> bc.VMProgram:
    program = bc.VMProgram()
    indices: dict[Function, int] = {}
    for fn in module.functions.values():
        vm_fn = bc.VMFunction(fn.name, len(fn.params),
                              0 if fn.ret_type is None else 1)
        indices[fn] = program.add(vm_fn)
    for fn in module.functions.values():
        _FunctionCodegen(program, indices, fn).run()
    return program


class _FunctionCodegen:
    def __init__(self, program: bc.VMProgram, indices: dict[Function, int],
                 fn: Function):
        self.program = program
        self.indices = indices
        self.fn = fn
        self.vm_fn = program.functions[indices[fn]]
        self._regs: dict[Value, int] = {}
        self._block_pcs: dict[Block, int] = {}
        self._fixups: list[tuple[int, tuple]] = []
        self._edge_moves: dict[tuple[Block, Block], int] = {}
        self._scratch: int | None = None

    def run(self) -> None:
        fn, vm = self.fn, self.vm_fn
        for param in fn.params:
            self._regs[param] = param.index
        blocks = fn.reachable_blocks()
        for block in blocks:
            for phi in block.phis:
                self._regs[phi] = vm.new_reg()
            for instr in block.instrs:
                if instr.type is not ct.UNIT or instr.opcode is Opcode.CALL:
                    self._regs[instr] = vm.new_reg()
        for block in blocks:
            self._block_pcs[block] = len(vm.code)
            for instr in block.instrs:
                self._emit_instr(instr)
            self._emit_terminator(block)
        self._apply_fixups()

    # ------------------------------------------------------------------

    def _reg(self, value: Value) -> int:
        if isinstance(value, Const):
            reg = self.vm_fn.new_reg()
            self.vm_fn.emit(bc.OP_CONST, reg, self._const_image(value))
            return reg
        reg = self._regs.get(value)
        if reg is None:
            raise SSACodegenError(f"value {value!r} has no register")
        return reg

    @staticmethod
    def _const_image(value: Const):
        if isinstance(value.type, (ct.TupleType, ct.DefiniteArrayType)):
            return list(value.value) if value.value is not None else None
        return value.value

    def _scratch_reg(self) -> int:
        if self._scratch is None:
            self._scratch = self.vm_fn.new_reg()
        return self._scratch

    def _emit_instr(self, instr: Instr) -> None:
        vm = self.vm_fn
        op = instr.opcode
        ops = instr.operands
        if op is Opcode.ARITH:
            prim = instr.type
            assert isinstance(prim, ct.PrimType)
            vm.emit(bc.OP_ARITH, self._regs[instr],
                    bc.arith_fn(instr.extra, prim),
                    self._reg(ops[0]), self._reg(ops[1]))
            return
        if op is Opcode.CMP:
            prim = ops[0].type
            assert isinstance(prim, ct.PrimType)
            vm.emit(bc.OP_ARITH, self._regs[instr],
                    bc.cmp_fn(instr.extra, prim),
                    self._reg(ops[0]), self._reg(ops[1]))
            return
        if op is Opcode.CAST:
            to, frm = instr.type, ops[0].type
            assert isinstance(to, ct.PrimType) and isinstance(frm, ct.PrimType)
            vm.emit(bc.OP_UNOP, self._regs[instr], bc.cast_fn(to, frm),
                    self._reg(ops[0]))
            return
        if op is Opcode.BITCAST:
            to, frm = instr.type, ops[0].type
            vm.emit(bc.OP_UNOP, self._regs[instr], bc.bitcast_fn(to, frm),
                    self._reg(ops[0]))
            return
        if op is Opcode.MATH:
            prim = instr.type
            assert isinstance(prim, ct.PrimType)
            vm.emit(bc.OP_UNOP, self._regs[instr],
                    bc.math_fn(instr.extra, prim), self._reg(ops[0]))
            return
        if op is Opcode.SELECT:
            vm.emit(bc.OP_SELECT, self._regs[instr], self._reg(ops[0]),
                    self._reg(ops[1]), self._reg(ops[2]))
            return
        if op is Opcode.TUPLE:
            parts = tuple((self._reg(o), bc.word_size(o.type)) for o in ops)
            vm.emit(bc.OP_TUPLE, self._regs[instr], parts)
            return
        if op is Opcode.EXTRACT:
            agg_t = ops[0].type
            size = bc.word_size(instr.type)
            if isinstance(ops[1], Const):
                offset = bc.field_offset(agg_t, ops[1].value)
                vm.emit(bc.OP_EXTRACT, self._regs[instr], self._reg(ops[0]),
                        offset, size)
            else:
                assert isinstance(agg_t, (ct.DefiniteArrayType,
                                          ct.IndefiniteArrayType))
                scale = bc.word_size(agg_t.elem_type)
                vm.emit(bc.OP_EXTRACT_DYN, self._regs[instr],
                        self._reg(ops[0]), self._reg(ops[1]), scale, size)
            return
        if op is Opcode.INSERT:
            agg_t = ops[0].type
            size = bc.word_size(ops[2].type)
            if isinstance(ops[1], Const):
                offset = bc.field_offset(agg_t, ops[1].value)
                vm.emit(bc.OP_INSERT, self._regs[instr], self._reg(ops[0]),
                        offset, size, self._reg(ops[2]))
            else:
                scale = bc.word_size(agg_t.elem_type)
                vm.emit(bc.OP_INSERT_DYN, self._regs[instr],
                        self._reg(ops[0]), self._reg(ops[1]), scale, size,
                        self._reg(ops[2]))
            return
        if op is Opcode.ALLOCA:
            vm.emit(bc.OP_ALLOC, self._regs[instr], None, 0,
                    bc.word_size(instr.extra))
            return
        if op is Opcode.ALLOC:
            elem = instr.extra
            assert isinstance(elem, ct.IndefiniteArrayType)
            vm.emit(bc.OP_ALLOC, self._regs[instr], self._reg(ops[0]),
                    bc.word_size(elem.elem_type), 0)
            return
        if op is Opcode.LOAD:
            ptr_t = ops[0].type
            assert isinstance(ptr_t, ct.PtrType)
            size = bc.word_size(instr.type)
            if size == 1 and isinstance(instr.type, ct.PrimType):
                vm.emit(bc.OP_LOAD, self._regs[instr], self._reg(ops[0]))
            else:
                vm.emit(bc.OP_LOAD_AGG, self._regs[instr],
                        self._reg(ops[0]), size)
            return
        if op is Opcode.STORE:
            ptr_t = ops[0].type
            assert isinstance(ptr_t, ct.PtrType)
            size = bc.word_size(ptr_t.pointee)
            if size == 1 and isinstance(ptr_t.pointee, ct.PrimType):
                vm.emit(bc.OP_STORE, self._reg(ops[0]), self._reg(ops[1]))
            else:
                vm.emit(bc.OP_STORE_AGG, self._reg(ops[0]),
                        self._reg(ops[1]), size)
            return
        if op is Opcode.GEP:
            base_t = ops[0].type
            assert isinstance(base_t, ct.PtrType)
            pointee = base_t.pointee
            if isinstance(pointee, (ct.DefiniteArrayType,
                                    ct.IndefiniteArrayType)):
                scale = bc.word_size(pointee.elem_type)
            else:
                scale = bc.word_size(instr.type.pointee)  # tuple field
            if isinstance(ops[1], Const):
                vm.emit(bc.OP_LEA_CONST, self._regs[instr],
                        self._reg(ops[0]), ops[1].value * scale)
            else:
                vm.emit(bc.OP_LEA, self._regs[instr], self._reg(ops[0]),
                        self._reg(ops[1]), scale)
            return
        if op is Opcode.CALL:
            args = tuple(self._reg(o) for o in ops)
            target = self.indices[instr.extra]
            dsts = (self._regs[instr],) if instr.extra.ret_type is not None \
                else ()
            vm.emit(bc.OP_CALL, target, args, dsts)
            return
        if op is Opcode.PRINT:
            opcode = {"i64": bc.OP_PRINT_I64, "f64": bc.OP_PRINT_F64,
                      "char": bc.OP_PRINT_CHAR}[instr.extra]
            vm.emit(opcode, self._reg(ops[0]))
            return
        raise SSACodegenError(f"cannot lower {instr!r}")

    # ------------------------------------------------------------------

    def _emit_terminator(self, block: Block) -> None:
        vm = self.vm_fn
        t = block.terminator
        if isinstance(t, Jmp):
            self._emit_edge_moves(block, t.target)
            index = vm.emit(bc.OP_JMP, 0)
            self._fixups.append((index, ("jmp", t.target)))
            return
        if isinstance(t, Br):
            cond = self._reg(t.cond)
            then_pc = self._edge_block(block, t.then_target)
            else_pc = self._edge_block(block, t.else_target)
            index = vm.emit(bc.OP_BR, cond, 0, 0)
            self._fixups.append((index, ("br", then_pc, else_pc)))
            return
        if isinstance(t, Ret):
            if t.value is None:
                vm.emit(bc.OP_RET, ())
            else:
                vm.emit(bc.OP_RET, (self._reg(t.value),))
            return
        if isinstance(t, Unreachable) or t is None:
            vm.emit(bc.OP_TRAP, f"unreachable in {block.name}")
            return
        raise SSACodegenError(f"unknown terminator {t!r}")

    def _edge_block(self, pred: Block, succ: Block):
        """Key for a (possibly synthesized) edge with phi moves."""
        if not succ.phis:
            return ("direct", succ)
        return ("edge", pred, succ)

    def _emit_edge_moves(self, pred: Block, succ: Block) -> None:
        moves: list[tuple[int, int]] = []
        const_writes: list[tuple[int, object]] = []
        for phi in succ.phis:
            dst = self._regs[phi]
            value = phi.value_for(pred)
            if isinstance(value, Const):
                const_writes.append((dst, self._const_image(value)))
            else:
                src = self._regs[value]
                if src != dst:
                    moves.append((dst, src))
        pending: dict[int, int] = dict(moves)
        while pending:
            safe = [d for d in pending if d not in pending.values()]
            if safe:
                for dst in safe:
                    self.vm_fn.emit(bc.OP_MOV, dst, pending.pop(dst))
                continue
            dst, src = next(iter(pending.items()))
            scratch = self._scratch_reg()
            self.vm_fn.emit(bc.OP_MOV, scratch, src)
            for d in pending:
                if pending[d] == src:
                    pending[d] = scratch
        for dst, value in const_writes:
            self.vm_fn.emit(bc.OP_CONST, dst, value)

    def _apply_fixups(self) -> None:
        vm = self.vm_fn
        # Synthesize edge blocks (phi moves for conditional edges).
        edge_pcs: dict[tuple, int] = {}
        pending = []
        for index, fixup in self._fixups:
            if fixup[0] == "br":
                pending.append((index, fixup))
        for _, fixup in pending:
            for key in fixup[1:]:
                if key[0] == "edge" and key not in edge_pcs:
                    pred, succ = key[1], key[2]
                    edge_pcs[key] = len(vm.code)
                    self._emit_edge_moves(pred, succ)
                    jmp_index = vm.emit(bc.OP_JMP, 0)
                    self._fixups.append((jmp_index, ("jmp", succ)))
        for index, fixup in self._fixups:
            if fixup[0] == "jmp":
                vm.patch(index, bc.OP_JMP, self._block_pcs[fixup[1]])
            elif fixup[0] == "br":
                cond = vm.code[index][1]

                def resolve(key):
                    if key[0] == "direct":
                        return self._block_pcs[key[1]]
                    return edge_pcs[key]

                vm.patch(index, bc.OP_BR, cond, resolve(fixup[1]),
                         resolve(fixup[2]))


class CompiledSSA:
    """Callable image of a compiled SSA module (mirrors CompiledWorld)."""

    def __init__(self, module: Module, *, max_steps: int | None = None):
        self.module = module
        self.program = compile_module(module)
        self.vm = bc.VM(self.program, max_steps=max_steps)
        self._sigs = {
            fn.name: ([p.type for p in fn.params], fn.ret_type)
            for fn in module.functions.values()
        }

    def call(self, name: str, *args):
        param_types, ret_type = self._sigs[name]
        vm_args = []
        for a, t in zip(args, param_types):
            if isinstance(t, ct.PrimType):
                vm_args.append(fold.canonicalize(t.kind, a))
            else:
                vm_args.append(a)
        result = self.vm.call(self.program, name, *vm_args)
        if ret_type is None:
            return None
        if isinstance(ret_type, ct.PrimType):
            return fold.public_value(ret_type.kind, result)
        return result

    def output_text(self) -> str:
        return self.vm.output_text()

"""Transformations on nested CPS — the bookkeeping the paper removes.

:func:`inline_function` inlines one application of a ``letfun``:
substitution of the body at the call site with capture-avoiding
alpha-renaming of every binder in the copied body, plus re-traversal of
the nesting spine.  :class:`InlineStats` records the work; T3 holds it
against the Thorin mangler's structurally-zero repair counters.
"""

from __future__ import annotations

import itertools

from .terms import App, Halt, If, LetCont, LetFun, LetPrim, Term, Var


class InlineStats:
    def __init__(self) -> None:
        self.alpha_renames = 0       # binders freshened in the copied body
        self.nodes_copied = 0        # term nodes rebuilt
        self.spine_rebuilds = 0      # nesting levels re-wrapped on the way up
        self.substitutions = 0       # variable occurrences substituted

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))

    def total_bookkeeping(self) -> int:
        return self.alpha_renames + self.spine_rebuilds + self.substitutions


_fresh_counter = itertools.count()


def _fresh(name: str) -> str:
    return f"{name}.{next(_fresh_counter)}"


def _subst_value(value, mapping: dict[str, object], stats: InlineStats):
    if isinstance(value, Var) and value.name in mapping:
        stats.substitutions += 1
        replacement = mapping[value.name]
        return replacement if not isinstance(replacement, Var) \
            else Var(replacement.name)
    return value


def _copy_renamed(t: Term, mapping: dict[str, object],
                  stats: InlineStats) -> Term:
    """Copy *t*, substituting via *mapping* and freshening every binder."""
    stats.nodes_copied += 1
    if isinstance(t, LetPrim):
        fresh = _fresh(t.name)
        stats.alpha_renames += 1
        inner = dict(mapping)
        inner[t.name] = Var(fresh)
        return LetPrim(fresh, t.op,
                       [_subst_value(a, mapping, stats) for a in t.args],
                       _copy_renamed(t.body, inner, stats))
    if isinstance(t, LetCont):
        fresh = _fresh(t.name)
        fresh_params = [_fresh(p) for p in t.params]
        stats.alpha_renames += 1 + len(t.params)
        cont_mapping = dict(mapping)
        for old, new in zip(t.params, fresh_params):
            cont_mapping[old] = Var(new)
        body_mapping = dict(mapping)
        body_mapping[t.name] = Var(fresh)
        cont_mapping[t.name] = Var(fresh)  # conts may self-reference
        return LetCont(fresh, fresh_params,
                       _copy_renamed(t.cont_body, cont_mapping, stats),
                       _copy_renamed(t.body, body_mapping, stats))
    if isinstance(t, LetFun):
        fresh = _fresh(t.name)
        fresh_params = [_fresh(p) for p in t.params]
        fresh_ret = _fresh(t.ret)
        stats.alpha_renames += 2 + len(t.params)
        fun_mapping = dict(mapping)
        for old, new in zip(t.params, fresh_params):
            fun_mapping[old] = Var(new)
        fun_mapping[t.ret] = Var(fresh_ret)
        fun_mapping[t.name] = Var(fresh)
        body_mapping = dict(mapping)
        body_mapping[t.name] = Var(fresh)
        return LetFun(fresh, fresh_params, fresh_ret,
                      _copy_renamed(t.fun_body, fun_mapping, stats),
                      _copy_renamed(t.body, body_mapping, stats))
    if isinstance(t, If):
        return If(_subst_value(t.cond, mapping, stats),
                  _subst_value(t.then_cont, mapping, stats),
                  _subst_value(t.else_cont, mapping, stats))
    if isinstance(t, App):
        return App(_subst_value(t.callee, mapping, stats),
                   [_subst_value(a, mapping, stats) for a in t.args])
    if isinstance(t, Halt):
        return Halt(_subst_value(t.value, mapping, stats))
    raise AssertionError(t)


def inline_function(t: Term, fname: str,
                    stats: InlineStats | None = None) -> tuple[Term, InlineStats]:
    """Inline every direct application of ``letfun fname`` inside its scope.

    Returns the rewritten term; the original binding is kept (it may
    still be referenced — a cleanup would drop it when dead, which also
    requires a traversal here, unlike graph GC).
    """
    stats = stats if stats is not None else InlineStats()

    def walk(node: Term, fun: "LetFun | None") -> Term:
        stats.spine_rebuilds += 1
        if isinstance(node, LetPrim):
            return LetPrim(node.name, node.op, node.args,
                           walk(node.body, fun))
        if isinstance(node, LetCont):
            return LetCont(node.name, node.params,
                           walk(node.cont_body, fun), walk(node.body, fun))
        if isinstance(node, LetFun):
            if node.name == fname:
                # Shadowing: inner scope sees the inner binding.
                return LetFun(node.name, node.params, node.ret,
                              walk(node.fun_body, node),
                              walk(node.body, node))
            return LetFun(node.name, node.params, node.ret,
                          walk(node.fun_body, fun), walk(node.body, fun))
        if isinstance(node, App) and node.callee.name == fname \
                and fun is not None:
            mapping: dict[str, object] = {}
            for param, arg in zip(fun.params, node.args[:-1]):
                mapping[param] = arg
            mapping[fun.ret] = node.args[-1]
            return _copy_renamed(fun.fun_body, mapping, stats)
        return node

    return walk(t, None), stats

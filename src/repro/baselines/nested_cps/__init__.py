"""A conventional *nested* CPS term language with explicit binders.

The second comparison point of experiment T3: in a tree-structured CPS
IR (the classic functional-compiler IR the paper positions Thorin
against), every transformation must respect lexical nesting —
inlining is substitution with capture-avoiding *alpha-renaming*, and
moving code between scopes means rebuilding binder spines.  We count
that work and hold it against the graph IR's zero.
"""

from .terms import (
    App,
    Halt,
    If,
    LetCont,
    LetFun,
    LetPrim,
    Term,
    Var,
    count_nodes,
    free_vars,
    pretty,
)
from .convert import cps_convert_expr
from .transform import InlineStats, inline_function
from .interp import evaluate

__all__ = [
    "App",
    "Halt",
    "If",
    "InlineStats",
    "LetCont",
    "LetFun",
    "LetPrim",
    "Term",
    "Var",
    "count_nodes",
    "cps_convert_expr",
    "evaluate",
    "free_vars",
    "inline_function",
    "pretty",
]

"""Term language: classic nested CPS with named binders.

Grammar (compare Kennedy, "Compiling with Continuations, Continued")::

    t ::= letval x = prim(op, args) in t     (LetPrim)
        | letcont k(params...) = t in t      (LetCont)
        | letfun  f(params..., k) = t in t   (LetFun; k = return cont)
        | if x then k1() else k2()           (If; conts are variables)
        | apply f(args..., k)                (App; f, k variables or names)
        | halt x                             (Halt)

Variables are *names* (strings): shadowing, capture and alpha-renaming
are real concerns — that is the point of this baseline.
"""

from __future__ import annotations

from ...core.primops import ArithKind, CmpRel


class Term:
    __slots__ = ()


class Var:
    """An occurrence of a variable (by name)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover
        return self.name


class LetPrim(Term):
    __slots__ = ("name", "op", "args", "body")

    def __init__(self, name: str, op, args: list, body: Term):
        self.name = name
        self.op = op  # ArithKind | CmpRel | ("const", value)
        self.args = args  # list[Var | const]
        self.body = body


class LetCont(Term):
    __slots__ = ("name", "params", "cont_body", "body")

    def __init__(self, name: str, params: list[str], cont_body: Term,
                 body: Term):
        self.name = name
        self.params = params
        self.cont_body = cont_body
        self.body = body


class LetFun(Term):
    __slots__ = ("name", "params", "ret", "fun_body", "body")

    def __init__(self, name: str, params: list[str], ret: str,
                 fun_body: Term, body: Term):
        self.name = name
        self.params = params
        self.ret = ret
        self.fun_body = fun_body
        self.body = body


class If(Term):
    __slots__ = ("cond", "then_cont", "else_cont")

    def __init__(self, cond: Var, then_cont: Var, else_cont: Var):
        self.cond = cond
        self.then_cont = then_cont
        self.else_cont = else_cont


class App(Term):
    __slots__ = ("callee", "args")

    def __init__(self, callee: Var, args: list):
        self.callee = callee
        self.args = args


class Halt(Term):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


def _subterms(t: Term) -> list[Term]:
    if isinstance(t, LetPrim):
        return [t.body]
    if isinstance(t, LetCont):
        return [t.cont_body, t.body]
    if isinstance(t, LetFun):
        return [t.fun_body, t.body]
    return []


def count_nodes(t: Term) -> int:
    total = 0
    stack = [t]
    while stack:
        node = stack.pop()
        total += 1
        stack.extend(_subterms(node))
    return total


def free_vars(t: Term) -> set[str]:
    def value_names(values) -> set[str]:
        return {v.name for v in values if isinstance(v, Var)}

    if isinstance(t, LetPrim):
        return value_names(t.args) | (free_vars(t.body) - {t.name})
    if isinstance(t, LetCont):
        inner = free_vars(t.cont_body) - set(t.params)
        return inner | (free_vars(t.body) - {t.name})
    if isinstance(t, LetFun):
        inner = free_vars(t.fun_body) - set(t.params) - {t.ret}
        # letfun is recursive: f is bound in both bodies
        return (inner | free_vars(t.body)) - {t.name}
    if isinstance(t, If):
        return {t.cond.name, t.then_cont.name, t.else_cont.name}
    if isinstance(t, App):
        return {t.callee.name} | value_names(t.args)
    if isinstance(t, Halt):
        return value_names([t.value])
    raise AssertionError(t)


def pretty(t: Term, indent: int = 0) -> str:
    pad = "  " * indent

    def val(v) -> str:
        return v.name if isinstance(v, Var) else repr(v)

    if isinstance(t, LetPrim):
        op = t.op[1] if isinstance(t.op, tuple) else t.op.value
        args = ", ".join(val(a) for a in t.args)
        return (f"{pad}letval {t.name} = {op}({args}) in\n"
                + pretty(t.body, indent))
    if isinstance(t, LetCont):
        params = ", ".join(t.params)
        return (f"{pad}letcont {t.name}({params}) =\n"
                + pretty(t.cont_body, indent + 1) + "\n"
                + pretty(t.body, indent))
    if isinstance(t, LetFun):
        params = ", ".join(t.params + [t.ret])
        return (f"{pad}letfun {t.name}({params}) =\n"
                + pretty(t.fun_body, indent + 1) + "\n"
                + pretty(t.body, indent))
    if isinstance(t, If):
        return (f"{pad}if {t.cond.name} then {t.then_cont.name}() "
                f"else {t.else_cont.name}()")
    if isinstance(t, App):
        args = ", ".join(val(a) for a in t.args)
        return f"{pad}apply {t.callee.name}({args})"
    if isinstance(t, Halt):
        return f"{pad}halt {val(t.value)}"
    raise AssertionError(t)

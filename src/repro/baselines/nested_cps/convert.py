"""A tiny direct-style → nested-CPS converter for the T3 workloads.

Input is a micro expression language (S-expression-ish Python tuples)::

    e ::= int | str (variable)
        | ("+", e, e) | ("-", e, e) | ("*", e, e) | ("/", e, e)
        | ("<", e, e) | ("==", e, e)
        | ("if", e, e, e)
        | ("call", fname, e...)
        | ("letfun", fname, [params], body_e, in_e)

Just enough to express fib/pow/ackermann-style programs for the
bookkeeping comparison; the converter is the standard higher-order
one-pass CPS transform with named continuations.
"""

from __future__ import annotations

import itertools

from ...core.primops import ArithKind, CmpRel
from .terms import App, Halt, If, LetCont, LetFun, LetPrim, Term, Var

_OPS = {
    "+": ArithKind.ADD, "-": ArithKind.SUB, "*": ArithKind.MUL,
    "/": ArithKind.DIV, "%": ArithKind.REM,
}
_CMPS = {
    "<": CmpRel.LT, "<=": CmpRel.LE, "==": CmpRel.EQ, "!=": CmpRel.NE,
    ">": CmpRel.GT, ">=": CmpRel.GE,
}

_counter = itertools.count()


def _gen(base: str) -> str:
    return f"{base}{next(_counter)}"


def cps_convert_expr(expr) -> Term:
    """Convert a whole program expression; the result halts with its value."""
    return _convert(expr, lambda v: Halt(v))


def _convert(expr, k) -> Term:
    if isinstance(expr, int):
        name = _gen("c")
        return LetPrim(name, ("const", expr), [], k(Var(name)))
    if isinstance(expr, str):
        return k(Var(expr))
    head = expr[0]
    if head in _OPS or head in _CMPS:
        op = _OPS.get(head) or _CMPS.get(head)

        def with_lhs(lv):
            def with_rhs(rv):
                name = _gen("t")
                return LetPrim(name, op, [lv, rv], k(Var(name)))

            return _convert(expr[2], with_rhs)

        return _convert(expr[1], with_lhs)
    if head == "if":
        join = _gen("j")
        joined_param = _gen("x")
        then_k = _gen("kt")
        else_k = _gen("ke")

        def branch(target: str):
            return lambda v: App(Var(target), [v])

        def with_cond(cv):
            then_term = _convert(expr[2], lambda v: App(Var(join), [v]))
            else_term = _convert(expr[3], lambda v: App(Var(join), [v]))
            return LetCont(
                join, [joined_param], k(Var(joined_param)),
                LetCont(then_k, [], then_term,
                        LetCont(else_k, [], else_term,
                                If(cv, Var(then_k), Var(else_k)))),
            )

        return _convert(expr[1], with_cond)
    if head == "call":
        fname = expr[1]
        args = list(expr[2:])

        def gather(acc, remaining):
            if not remaining:
                ret = _gen("r")
                param = _gen("v")
                return LetCont(ret, [param], k(Var(param)),
                               App(Var(fname), acc + [Var(ret)]))
            return _convert(remaining[0],
                            lambda v: gather(acc + [v], remaining[1:]))

        return gather([], args)
    if head == "letfun":
        _, fname, params, body, rest = expr
        ret = _gen("k")
        fun_body = _convert(body, lambda v: App(Var(ret), [v]))
        return LetFun(fname, list(params), ret, fun_body, _convert(rest, k))
    raise AssertionError(f"bad expression {expr!r}")

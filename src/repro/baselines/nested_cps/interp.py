"""Evaluator for nested CPS terms (correctness oracle for the baseline)."""

from __future__ import annotations

from ...core import fold
from ...core import types as ct
from ...core.limits import ResourceLimitError
from ...core.primops import ArithKind, CmpRel
from .terms import App, Halt, If, LetCont, LetFun, LetPrim, Term, Var


class CPSRuntimeError(Exception):
    pass


class CPSStepLimitExceeded(CPSRuntimeError, ResourceLimitError):
    """The evaluator's ``max_steps`` budget ran out.

    Still a :class:`CPSRuntimeError` (existing handlers keep working)
    and a :class:`~repro.core.limits.ResourceLimitError` (oracles
    normalize the whole family to a trap).
    """

    def __init__(self, limit: int):
        ResourceLimitError.__init__(self, "steps", limit, "nested-cps")


class _Closure:
    __slots__ = ("params", "body", "env", "recursive_name")

    def __init__(self, params, body, env, recursive_name=None):
        self.params = params
        self.body = body
        self.env = env
        self.recursive_name = recursive_name


def evaluate(term: Term, env: dict | None = None, *,
             max_steps: int = 10_000_000) -> int:
    """Run a term to ``halt``; values are i64 (canonical unsigned)."""
    env = dict(env or {})
    steps = 0
    while True:
        steps += 1
        if steps > max_steps:
            raise CPSStepLimitExceeded(max_steps)
        if isinstance(term, Halt):
            return _value(term.value, env)
        if isinstance(term, LetPrim):
            env = dict(env)
            env[term.name] = _apply_prim(term.op,
                                         [_value(a, env) for a in term.args])
            term = term.body
            continue
        if isinstance(term, LetCont):
            env = dict(env)
            closure = _Closure(term.params, term.cont_body, env, term.name)
            env[term.name] = closure
            closure.env = env
            term = term.body
            continue
        if isinstance(term, LetFun):
            env = dict(env)
            closure = _Closure(term.params + [term.ret], term.fun_body, env,
                               term.name)
            env[term.name] = closure
            closure.env = env
            term = term.body
            continue
        if isinstance(term, If):
            chosen = (env[term.then_cont.name] if env[term.cond.name]
                      else env[term.else_cont.name])
            if not isinstance(chosen, _Closure):
                raise CPSRuntimeError("if target is not a continuation")
            env = dict(chosen.env)
            term = chosen.body
            continue
        if isinstance(term, App):
            closure = env.get(term.callee.name)
            if not isinstance(closure, _Closure):
                raise CPSRuntimeError(f"calling non-closure {term.callee.name}")
            args = [_value(a, env) for a in term.args]
            if len(args) != len(closure.params):
                raise CPSRuntimeError(
                    f"arity mismatch calling {term.callee.name}"
                )
            env = dict(closure.env)
            for param, arg in zip(closure.params, args):
                env[param] = arg
            term = closure.body
            continue
        raise AssertionError(term)


def _value(v, env):
    if isinstance(v, Var):
        try:
            return env[v.name]
        except KeyError:
            raise CPSRuntimeError(f"unbound variable {v.name}") from None
    return v


def _apply_prim(op, args):
    if isinstance(op, tuple) and op[0] == "const":
        return fold.canonical_int(op[1], 64)
    if isinstance(op, ArithKind):
        try:
            return fold.arith(op, ct.I64, args[0], args[1])
        except fold.EvalError as exc:
            raise CPSRuntimeError(str(exc)) from None
    if isinstance(op, CmpRel):
        return fold.compare(op, ct.I64, args[0], args[1])
    raise AssertionError(op)

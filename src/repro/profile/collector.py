"""Raw execution counters filled in by the instrumented VM loop.

The collector is the write side of the profiling story: three
``defaultdict(int)`` maps keyed by VM-level locations (function indices
and pcs), incremented by :meth:`repro.backend.bytecode.VM._run_profiled`.
It deliberately knows nothing about the IR — resolving VM locations back
to stable Thorin continuation names is :class:`repro.profile.model.
Profile`'s job, via the ``sites`` metadata codegen attaches to every
:class:`~repro.backend.bytecode.VMFunction`.
"""

from __future__ import annotations

from collections import defaultdict


class ProfileCollector:
    """Counts function entries, call-site executions and taken edges.

    * ``entries[findex]`` — activations of function *findex* (both via
      the VM's public entry point and via call/tail-call);
    * ``calls[(findex, pc)]`` — executions of the call or tail-call
      instruction at ``pc`` in function ``findex``;
    * ``edges[(findex, src_pc, dst_pc)]`` — taken control-flow transfers
      (br/jmp/match).  Back-edges (``dst_pc <= src_pc``) measure loop
      iterations.
    """

    def __init__(self) -> None:
        self.entries: defaultdict[int, int] = defaultdict(int)
        self.calls: defaultdict[tuple[int, int], int] = defaultdict(int)
        self.edges: defaultdict[tuple[int, int, int], int] = defaultdict(int)

    def clear(self) -> None:
        self.entries.clear()
        self.calls.clear()
        self.edges.clear()

    def is_empty(self) -> bool:
        return not (self.entries or self.calls or self.edges)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ProfileCollector entries={sum(self.entries.values())} "
                f"calls={sum(self.calls.values())} "
                f"edges={sum(self.edges.values())}>")

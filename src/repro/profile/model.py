"""The :class:`Profile` data model: stable, serializable run-time counts.

A profile is the hand-off between the two phases of PGO: phase one runs
an instrumented image and fills a :class:`~repro.profile.collector.
ProfileCollector` with VM-level counters; :meth:`Profile.from_collector`
resolves those counters against the ``sites`` metadata codegen attached
to each :class:`~repro.backend.bytecode.VMFunction` and produces records
keyed by **stable site IDs** — the ``unique_name()`` of the source
continuation (``name_gid``, deterministic for a given compile).  Phase
two (:mod:`repro.transform.pgo`) resolves those names back to live
continuations in the world and steers mangling with the counts.

Everything is plain data: profiles serialize to/from JSON, merge by
summing counts, and order their records deterministically so that two
identical runs produce byte-identical serializations (property-tested).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..backend import bytecode as bc

PROFILE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class CallSiteProfile:
    """One executed call/tail-call site, resolved to IR names."""

    function: str   # unique name of the caller's entry continuation
    block: str      # unique name of the basic block containing the call
    callee: str     # unique name of the called function's entry
    count: int
    tail: bool

    @property
    def key(self) -> tuple:
        return (self.function, self.block, self.callee, self.tail)


@dataclass(frozen=True)
class LoopProfile:
    """One loop header, with its aggregate back-edge count."""

    function: str   # unique name of the enclosing function's entry
    header: str     # unique name of the loop-header basic block
    count: int      # total back-edge executions (≈ loop iterations)

    @property
    def key(self) -> tuple:
        return (self.function, self.header)


@dataclass(frozen=True)
class EdgeProfile:
    """One taken block-to-block control-flow edge."""

    function: str
    src_block: str
    dst_block: str
    count: int
    back: bool      # dst_pc <= src_pc at the VM level

    @property
    def key(self) -> tuple:
        return (self.function, self.src_block, self.dst_block, self.back)


@dataclass
class Profile:
    """Aggregated run-time behaviour of one (or more merged) workloads."""

    entries: dict[str, int] = field(default_factory=dict)
    call_sites: list[CallSiteProfile] = field(default_factory=list)
    loops: list[LoopProfile] = field(default_factory=list)
    edges: list[EdgeProfile] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_collector(cls, collector, program: bc.VMProgram,
                       meta: dict | None = None) -> "Profile":
        """Resolve VM-level counters against the program's site metadata."""
        functions = program.functions

        def block_of(findex: int, pc: int) -> str | None:
            """Label of the block whose range contains *pc*."""
            blocks = functions[findex].sites["blocks"]
            best_pc, best = -1, None
            for start, label in blocks.items():
                if best_pc < start <= pc:
                    best_pc, best = start, label
            return best

        entries: dict[str, int] = {}
        for findex, count in collector.entries.items():
            label = functions[findex].sites["entry"]
            if label is not None:
                entries[label] = entries.get(label, 0) + count

        call_sites: dict[tuple, int] = {}
        for (findex, pc), count in collector.calls.items():
            fn = functions[findex]
            instr = fn.code[pc]
            tail = instr[0] == bc.OP_TAILCALL
            callee = functions[instr[1]].sites["entry"]
            function = fn.sites["entry"]
            block = block_of(findex, pc)
            if function is None or block is None or callee is None:
                continue
            key = (function, block, callee, tail)
            call_sites[key] = call_sites.get(key, 0) + count

        edge_counts: dict[tuple, int] = {}
        loop_counts: dict[tuple, int] = {}
        for (findex, src_pc, dst_pc), count in collector.edges.items():
            fn = functions[findex]
            function = fn.sites["entry"]
            src_block = block_of(findex, src_pc)
            dst_block = fn.sites["blocks"].get(dst_pc)
            if function is None or src_block is None or dst_block is None:
                continue
            back = dst_pc <= src_pc
            key = (function, src_block, dst_block, back)
            edge_counts[key] = edge_counts.get(key, 0) + count
            if back:
                hkey = (function, dst_block)
                loop_counts[hkey] = loop_counts.get(hkey, 0) + count

        profile = cls(
            entries=dict(sorted(entries.items())),
            call_sites=[
                CallSiteProfile(function=k[0], block=k[1], callee=k[2],
                                count=c, tail=k[3])
                for k, c in call_sites.items()
            ],
            loops=[LoopProfile(function=k[0], header=k[1], count=c)
                   for k, c in loop_counts.items()],
            edges=[EdgeProfile(function=k[0], src_block=k[1], dst_block=k[2],
                               count=c, back=k[3])
                   for k, c in edge_counts.items()],
            meta=dict(meta or {}),
        )
        profile._sort()
        return profile

    def _sort(self) -> None:
        self.entries = dict(sorted(self.entries.items()))
        self.call_sites.sort(key=lambda s: s.key)
        self.loops.sort(key=lambda s: s.key)
        self.edges.sort(key=lambda s: s.key)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def total_call_count(self) -> int:
        return sum(s.count for s in self.call_sites)

    def total_loop_count(self) -> int:
        return sum(s.count for s in self.loops)

    def hot_call_sites(self, *, min_count: int = 1,
                       min_fraction: float = 0.0) -> list[CallSiteProfile]:
        """Call sites at or above both thresholds, hottest first."""
        total = self.total_call_count()
        floor = max(min_count, min_fraction * total)
        hot = [s for s in self.call_sites if s.count >= floor]
        hot.sort(key=lambda s: (-s.count, s.key))
        return hot

    def hot_loops(self, *, min_count: int = 1) -> list[LoopProfile]:
        """Loop headers at or above the threshold, hottest first."""
        hot = [s for s in self.loops if s.count >= min_count]
        hot.sort(key=lambda s: (-s.count, s.key))
        return hot

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------

    def merge(self, other: "Profile") -> "Profile":
        """A new profile with this one's and *other*'s counts summed."""
        entries = dict(self.entries)
        for label, count in other.entries.items():
            entries[label] = entries.get(label, 0) + count

        def merged(a, b, make):
            acc: dict[tuple, int] = {}
            proto: dict[tuple, object] = {}
            for rec in list(a) + list(b):
                acc[rec.key] = acc.get(rec.key, 0) + rec.count
                proto[rec.key] = rec
            return [make(proto[k], c) for k, c in acc.items()]

        result = Profile(
            entries=entries,
            call_sites=merged(
                self.call_sites, other.call_sites,
                lambda r, c: CallSiteProfile(r.function, r.block, r.callee,
                                             c, r.tail)),
            loops=merged(self.loops, other.loops,
                         lambda r, c: LoopProfile(r.function, r.header, c)),
            edges=merged(self.edges, other.edges,
                         lambda r, c: EdgeProfile(r.function, r.src_block,
                                                  r.dst_block, c, r.back)),
            meta={**self.meta, **other.meta},
        )
        result._sort()
        return result

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": PROFILE_FORMAT_VERSION,
            "meta": self.meta,
            "entries": self.entries,
            "call_sites": [
                {"function": s.function, "block": s.block,
                 "callee": s.callee, "count": s.count, "tail": s.tail}
                for s in self.call_sites
            ],
            "loops": [
                {"function": s.function, "header": s.header, "count": s.count}
                for s in self.loops
            ],
            "edges": [
                {"function": s.function, "src_block": s.src_block,
                 "dst_block": s.dst_block, "count": s.count, "back": s.back}
                for s in self.edges
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Profile":
        version = data.get("version", PROFILE_FORMAT_VERSION)
        if version != PROFILE_FORMAT_VERSION:
            raise ValueError(f"unsupported profile version {version}")
        profile = cls(
            entries=dict(data.get("entries", {})),
            call_sites=[CallSiteProfile(**rec)
                        for rec in data.get("call_sites", [])],
            loops=[LoopProfile(**rec) for rec in data.get("loops", [])],
            edges=[EdgeProfile(**rec) for rec in data.get("edges", [])],
            meta=dict(data.get("meta", {})),
        )
        profile._sort()
        return profile

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "Profile":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "Profile":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Profile fns={len(self.entries)} "
                f"call_sites={len(self.call_sites)} loops={len(self.loops)} "
                f"edges={len(self.edges)}>")

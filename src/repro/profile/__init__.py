"""Profile-guided optimization: collection, storage, and the PGO driver.

See DESIGN.md §"Profile-guided optimization" and experiment F4.  The
subsystem splits into:

* :mod:`.collector` — raw VM-level counters (write side, filled by the
  instrumented dispatch loop in :mod:`repro.backend.bytecode`);
* :mod:`.model` — the stable, JSON-serializable :class:`Profile`;
* :mod:`.driver` — the two-phase ``compile_profiled`` feedback loop.

The transforms that *consume* a profile live with the other passes in
:mod:`repro.transform.pgo`.
"""

from .collector import ProfileCollector
from .driver import collect_profile, compile_profiled, instrument
from .model import CallSiteProfile, EdgeProfile, LoopProfile, Profile

__all__ = [
    "CallSiteProfile",
    "EdgeProfile",
    "LoopProfile",
    "Profile",
    "ProfileCollector",
    "collect_profile",
    "compile_profiled",
    "instrument",
]

"""The two-phase PGO driver: instrument → run workload → recompile.

``compile_profiled(world, workload)`` is the whole feedback loop in one
call:

1. run the *static* pipeline (so the profile measures the program the
   static optimizer actually produces — site labels refer to residual
   continuations, not source-level ones);
2. compile with an instrumented VM, run the training ``workload``
   against it, and distil the counters into a :class:`Profile`;
3. re-run ``optimize(world, profile=...)`` — the PGO passes peel hot
   loops and inline hot call sites — and compile the final image.

The world is optimized *in place* (the IR graph persists across both
phases, which is what makes the profile's site labels resolvable in
phase two).  Train/test discipline is the caller's job: pass a training
workload here, measure on different inputs afterwards.
"""

from __future__ import annotations

from typing import Callable

from ..backend.codegen import CompiledWorld, compile_world
from ..core.world import World
from .collector import ProfileCollector
from .model import Profile


def instrument(world: World) -> tuple[CompiledWorld, ProfileCollector]:
    """Compile *world* with profiling on; returns (image, collector).

    The world is compiled as-is (run the pipeline first if you want to
    profile optimized code).  Every call through the returned image
    accumulates counts into the collector.
    """
    collector = ProfileCollector()
    compiled = compile_world(world, profile=collector)
    return compiled, collector


def collect_profile(world: World, workload: Callable[[CompiledWorld], None],
                    meta: dict | None = None, *,
                    swallow_errors: bool = False) -> Profile:
    """Run *workload* against an instrumented image of *world*.

    With ``swallow_errors`` a crashing workload still yields a profile
    from whatever counters accumulated before the crash — a partial
    profile only makes PGO less aggressive, whereas propagating would
    kill a fault-tolerant build over its *training* run.
    """
    compiled, collector = instrument(world)
    try:
        workload(compiled)
    except Exception:
        if not swallow_errors:
            raise
        meta = dict(meta or ())
        meta["workload_crashed"] = True
    return Profile.from_collector(collector, compiled.program, meta=meta)


def compile_profiled(world: World,
                     workload: Callable[[CompiledWorld], None], *,
                     options=None):
    """Instrument → run *workload* → recompile with the observed profile.

    Returns ``(compiled, profile, stats)`` where *compiled* is the final
    (uninstrumented) image, *profile* the collected :class:`Profile`,
    and *stats* a dict with the phase-1/phase-2
    :class:`~repro.transform.pipeline.PipelineStats`.
    """
    from ..transform.pipeline import OptimizeOptions, optimize

    options = options if options is not None else OptimizeOptions()
    static_stats = optimize(world, options=options)
    profile = collect_profile(world, workload,
                              meta={"phase": "train",
                                    "pipeline_rounds": static_stats.rounds},
                              swallow_errors=not options.strict)
    pgo_stats = optimize(world, options=options, profile=profile)
    compiled = compile_world(world)
    return compiled, profile, {"static": static_stats, "pgo": pgo_stats}

"""IR statistics collectors for the T1/T2 experiments.

All counts are over the *reachable* part of a world (what garbage
collection keeps).  "Higher-order" metrics track what closure
elimination must remove before code generation:

* ``first_class_continuations`` — continuations used somewhere other
  than callee position (their address is taken);
* ``higher_order_params`` — fn-typed parameters that are not the
  conventional return parameter;
* ``over_second_order`` — continuations with type order > 2;
* ``closure_continuations`` — continuations whose scope has free
  parameters (they would need an environment record at run time);
* ``cff_violations`` — what the CFF checker still complains about.
"""

from __future__ import annotations

from ..core.defs import Continuation, Def
from ..core.primops import PrimOp
from ..core.scope import scope_of, top_level_of
from ..core.types import FnType
from ..core.verify import cff_violations
from ..core.world import World
from ..transform.cleanup import reachable_defs


class WorldStatsReport:
    """A bag of IR counts; renders as a fixed-order dict for tables."""

    FIELDS = (
        "continuations",
        "primops",
        "top_level_functions",
        "basic_blocks",
        "first_class_continuations",
        "higher_order_params",
        "over_second_order",
        "closure_continuations",
        "cff_violations",
    )

    def __init__(self) -> None:
        for field in self.FIELDS:
            setattr(self, field, 0)

    def as_dict(self) -> dict[str, int]:
        return {field: getattr(self, field) for field in self.FIELDS}

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<WorldStats {inner}>"


def _ret_param_index(cont: Continuation) -> int | None:
    for param in reversed(cont.params):
        if isinstance(param.type, FnType):
            return param.index
    return None


def collect_world_stats(world: World) -> WorldStatsReport:
    report = WorldStatsReport()
    live = reachable_defs(world)
    conts = [c for c in world.continuations()
             if c in live and not c.is_intrinsic()]
    report.continuations = len(conts)
    report.primops = sum(1 for d in live if isinstance(d, PrimOp))
    tops = [c for c in top_level_of(world)
            if c in live and c.has_body()]
    report.top_level_functions = sum(1 for c in tops if c.is_returning())
    report.basic_blocks = sum(
        1 for c in conts if c.has_body() and c.is_basic_block_like()
    )
    from ..core.defs import Intrinsic
    from ..core.primops import EvalOp

    def _is_control_use(user) -> bool:
        """Branch/match targets are plain control flow, not value travel."""
        if not isinstance(user, Continuation) or not user.has_body():
            return False
        callee = user.callee
        while isinstance(callee, EvalOp):
            callee = callee.value
        return (isinstance(callee, Continuation)
                and callee.intrinsic in (Intrinsic.BRANCH, Intrinsic.MATCH))

    for cont in conts:
        ret_index = _ret_param_index(cont)
        for param in cont.params:
            if isinstance(param.type, FnType) and param.index != ret_index:
                report.higher_order_params += 1
        if cont.fn_type.order() > 2:
            report.over_second_order += 1
        if any((index != 0 or not isinstance(user, Continuation))
               and not _is_control_use(user)
               for user, index in cont.uses if user in live):
            report.first_class_continuations += 1
    for cont in tops:
        if scope_of(cont).has_free_params():
            report.closure_continuations += 1
    report.cff_violations = len(cff_violations(world))
    return report


def summarize_profile(profile) -> dict:
    """Headline numbers of a :class:`repro.profile.model.Profile`.

    Used by the F4 experiment tables: how much the training workload
    exercised, and where the heat concentrated.
    """
    call_total = profile.total_call_count()
    loop_total = profile.total_loop_count()
    hottest_site = max(profile.call_sites, key=lambda s: s.count,
                       default=None)
    hottest_loop = max(profile.loops, key=lambda s: s.count, default=None)
    return {
        "functions_entered": len(profile.entries),
        "activations": sum(profile.entries.values()),
        "call_sites": len(profile.call_sites),
        "call_executions": call_total,
        "loops": len(profile.loops),
        "loop_iterations": loop_total,
        "hottest_call_site": None if hottest_site is None else
            f"{hottest_site.block}->{hottest_site.callee}"
            f" x{hottest_site.count}",
        "hottest_loop": None if hottest_loop is None else
            f"{hottest_loop.header} x{hottest_loop.count}",
    }


def source_loc(source: str) -> int:
    """Non-blank, non-comment source lines (the LoC column of T1)."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            count += 1
    return count

"""Measurement helpers for the experiment harness (benchmarks/)."""

from .stats import (
    WorldStatsReport,
    collect_world_stats,
    source_loc,
    summarize_profile,
)

__all__ = ["WorldStatsReport", "collect_world_stats", "source_loc",
           "summarize_profile"]

"""Differential fuzzing for the Thorin reproduction.

Three cooperating pieces (ISSUE 2's generative testing layer):

* :mod:`repro.fuzz.gen` — a seeded, deterministic generator of
  well-typed Impala-lite programs (scalars, tuples, buffers,
  higher-order helpers, loops, recursion, branching), with size and
  feature knobs on :class:`~repro.fuzz.gen.GenConfig`.
* :mod:`repro.fuzz.oracle` — the differential oracle: every generated
  program runs through the graph interpreter, the bytecode VM, the
  C-emitter path and the classical baselines, at every optimization
  level (none, static ``optimize()``, PGO via ``compile_profiled``),
  under pass-level IR verification; any output or ``VerifyError``
  divergence is a failure.
* :mod:`repro.fuzz.shrink` — an AST-level minimizing shrinker: a
  failing program is reduced while the failure signature is preserved,
  and the repro is written to ``tests/corpus/``.
* :mod:`repro.fuzz.inject` / :mod:`repro.fuzz.faults` — the
  fault-injection harness (ISSUE 3): :class:`FaultInjector` sabotages a
  chosen pipeline pass (raise / corrupt IR / stall / blow up the
  world), and the fault campaign proves non-strict ``optimize()``
  recovers with output identical to the unoptimized interpreter.

``python -m repro.fuzz --seed 0 --n 500`` runs a differential
campaign, ``python -m repro.fuzz --fault-campaign`` the
fault-injection one (see :mod:`repro.fuzz.cli`).
"""

from .gen import FuzzProgram, GenConfig, generate_program
from .inject import FaultInjector, FaultPlan, InjectedFault
from .oracle import FuzzFailure, OracleConfig, run_oracle
from .shrink import shrink, shrink_failure, write_repro

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FuzzFailure",
    "FuzzProgram",
    "GenConfig",
    "InjectedFault",
    "OracleConfig",
    "generate_program",
    "run_oracle",
    "shrink",
    "shrink_failure",
    "write_repro",
]

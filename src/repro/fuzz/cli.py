"""Campaign driver: ``python -m repro.fuzz --seed 0 --n 500``.

Generates ``n`` programs from consecutive seeds, runs each through the
differential oracle (every execution path at every opt level), and
reports throughput plus any divergence.  A failing program is shrunk to
a minimal repro and persisted under ``tests/corpus/`` before the
campaign continues; the exit code is the number of divergent seeds
(0 = clean campaign).

Every ``--expr-only-every``-th seed uses the restricted expression-only
generator so the nested-CPS baseline is exercised too.

``--jobs N`` fans the campaign out over N worker processes (fork-based,
one seed per task).  Seeds are independent, so the set of divergences is
identical to a sequential run; results are consumed in seed order, so
the report is deterministic too.  Shrinking and repro-writing happen in
the worker that found the divergence.

``--cache-check`` adds the ``cache(static)`` oracle stage: every program
is compiled a second time with analysis caching flipped and the printed
IR must be byte-identical (see ``OracleConfig.check_cache``).

``--mem-heavy`` switches generation to the memory-heavy profile
(buffers always present, stores and loads weighted up, aliasing index
pairs, stores on branch arms, loads in loops).  The ``memopt(static)``
stage — recompile with ``mem_opt`` off, require byte-identical
observations — runs by default; ``--no-memopt`` is the escape hatch.

The ``incremental(static)`` stage — recompile with in-place analysis
patching flipped to drop-on-touch invalidation, require byte-identical
IR and observations — also runs by default; ``--no-incremental`` skips
it.

``--case-timeout S`` bounds the wall-clock a single seed may take
(generation + all oracle paths); a timed-out seed is recorded and
reported in the summary but does not count as a divergence.

``--fault-campaign`` switches to the fault-injection campaign
(:mod:`repro.fuzz.faults`): the systematic fault-mode x pass matrix
over the evaluation suite, plus ``--fault-seeds`` randomly sabotaged
fuzz programs.  ``--jobs`` applies here as well — the random sabotage
plan is drawn sequentially in the parent, so the cases are the same
however they are distributed.  Exit code is the number of cases where
the pipeline failed to recover or the recovered program diverged.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..core.limits import DeadlineExceeded, deadline
from ..core.pool import map_cases as _map_cases
from .gen import GenConfig, generate_program
from .oracle import OracleConfig, run_oracle
from .shrink import shrink_failure, write_repro


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing campaign over every backend "
                    "and optimization level")
    parser.add_argument("--seed", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--n", type=int, default=100,
                        help="number of programs (default 100)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1: in-process)")
    parser.add_argument("--expr-only-every", type=int, default=5,
                        metavar="K",
                        help="every K-th seed uses the expression-only "
                             "generator (0 disables; default 5)")
    parser.add_argument("--no-c", action="store_true",
                        help="skip the C-emitter path")
    parser.add_argument("--no-native", action="store_true",
                        help="skip the native execution tier "
                             "(emit C, build a .so, run via ctypes)")
    parser.add_argument("--no-pgo", action="store_true",
                        help="skip the profile-guided path")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip pass-level IR verification")
    parser.add_argument("--cache-check", action="store_true",
                        help="differentially check the analysis cache: "
                             "recompile each program with caching "
                             "flipped and require identical IR")
    parser.add_argument("--no-memopt", action="store_true",
                        help="skip the memopt(static) differential "
                             "stage (recompile with mem_opt off and "
                             "require identical observations)")
    parser.add_argument("--no-incremental", action="store_true",
                        help="skip the incremental(static) differential "
                             "stage (recompile with drop-on-touch "
                             "analysis invalidation and require "
                             "identical IR and observations)")
    parser.add_argument("--mem-heavy", action="store_true",
                        help="use the memory-heavy generator profile "
                             "(more buffers, stores, aliasing index "
                             "pairs, loads in loops)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimizing them")
    parser.add_argument("--corpus", default="tests/corpus",
                        help="where to write shrunk repros")
    parser.add_argument("--stop-after", type=int, default=5,
                        metavar="N",
                        help="abort the campaign after N divergent "
                             "seeds (default 5)")
    parser.add_argument("--case-timeout", type=float, default=None,
                        metavar="S",
                        help="wall-clock budget per seed in seconds "
                             "(default: none); timed-out seeds are "
                             "reported, not counted as divergences")
    parser.add_argument("--fault-campaign", action="store_true",
                        help="run the fault-injection campaign instead "
                             "of the differential one")
    parser.add_argument("--fault-seeds", type=int, default=50,
                        metavar="N",
                        help="random sabotaged fuzz programs in the "
                             "fault campaign (default 50)")
    parser.add_argument("--fault-programs", type=int, default=None,
                        metavar="N",
                        help="limit the fault matrix to the first N "
                             "suite programs (default: all)")
    return parser.parse_args(argv)


# --- fault campaign ---------------------------------------------------------

def _matrix_case(case):
    from ..programs.suite import by_name
    from .faults import run_fault_case

    name, target, mode = case
    return run_fault_case(by_name(name), target, mode)


def _random_case(case):
    from .faults import run_random_fault_case

    return run_random_fault_case(*case)


def _fault_campaign(args) -> int:
    from ..programs.suite import ALL_PROGRAMS
    from .faults import ALL_PASSES, random_fault_plan, summarize
    from .inject import FAULT_MODES

    programs = ALL_PROGRAMS
    if args.fault_programs is not None:
        programs = programs[:args.fault_programs]

    matrix_cases = [(program.name, target, mode)
                    for program in programs
                    for target in ALL_PASSES
                    for mode in FAULT_MODES]

    started = time.perf_counter()
    results = []
    for result in _map_cases(_matrix_case, matrix_cases, args.jobs):
        results.append(result)
        if not result.ok:
            print(result.describe(), file=sys.stderr)
    matrix_elapsed = time.perf_counter() - started
    print(f"matrix: {summarize(results)} over {len(programs)} programs "
          f"in {matrix_elapsed:.1f}s")

    if args.fault_seeds:
        started = time.perf_counter()
        plan = random_fault_plan(args.fault_seeds, args.seed)
        random_results = []
        for result in _map_cases(_random_case, plan, args.jobs):
            random_results.append(result)
            if not result.ok:
                print(result.describe(), file=sys.stderr)
        print(f"random: {summarize(random_results)} "
              f"in {time.perf_counter() - started:.1f}s")
        results += random_results

    failures = [r for r in results if not r.ok]
    return len(failures)


# --- differential campaign --------------------------------------------------

def _campaign_case(item):
    """One seed of the differential campaign; runs in a worker process.

    Returns a small picklable summary dict — the parent merges records
    and does all the printing so output is ordered even under ``--jobs``.
    """
    seed, expr_only, args = item
    config = OracleConfig(run_c=not args.no_c,
                          run_native=not args.no_native,
                          run_pgo=not args.no_pgo,
                          verify_each_pass=not args.no_verify,
                          check_cache=args.cache_check,
                          check_memopt=not args.no_memopt,
                          check_incremental=not args.no_incremental,
                          record={})
    result = {"seed": seed, "status": "ok", "record": config.record}
    mem_heavy = getattr(args, "mem_heavy", False)
    try:
        with deadline(args.case_timeout, what=f"seed {seed}"):
            prog = generate_program(
                seed,
                GenConfig(expr_only=True) if expr_only
                else GenConfig(mem_heavy=True) if mem_heavy
                else None)
            failure = run_oracle(prog, config)
    except DeadlineExceeded:
        result["status"] = "timeout"
        return result
    if failure is not None:
        result["status"] = "divergence"
        result["description"] = failure.describe()
        if not args.no_shrink:
            try:
                with deadline(args.case_timeout and
                              args.case_timeout * 10,
                              what=f"shrinking seed {seed}"):
                    small = shrink_failure(prog, failure, config)
            except DeadlineExceeded:
                small = prog
            path = write_repro(small, failure, args.corpus)
            result["shrunk_lines"] = len(small.render().splitlines())
            result["repro"] = str(path)
    return result


def main(argv=None) -> int:
    args = _parse_args(argv)
    if args.fault_campaign:
        return _fault_campaign(args)

    record: dict = {"paths": set(), "skipped": {}}
    failures = 0
    timed_out: list[int] = []
    checked = 0
    started = time.perf_counter()

    def cases():
        for index in range(args.n):
            expr_only = bool(args.expr_only_every
                             and index % args.expr_only_every
                             == args.expr_only_every - 1)
            yield (args.seed + index, expr_only, args)

    results = _map_cases(_campaign_case, cases(), args.jobs)
    for result in results:
        checked += 1
        case_record = result.get("record") or {}
        record["paths"] |= case_record.get("paths", set())
        record["skipped"].update(case_record.get("skipped", {}))
        if result["status"] == "timeout":
            timed_out.append(result["seed"])
            print(f"seed {result['seed']}: timed out after "
                  f"{args.case_timeout}s", file=sys.stderr)
        elif result["status"] == "divergence":
            failures += 1
            print(f"seed {result['seed']}: DIVERGENCE", file=sys.stderr)
            print(result["description"], file=sys.stderr)
            if "repro" in result:
                print(f"  shrunk to {result['shrunk_lines']} "
                      f"lines -> {result['repro']}", file=sys.stderr)
            if failures >= args.stop_after:
                print(f"stopping after {failures} divergent seeds",
                      file=sys.stderr)
                break
        if checked % 50 == 0:
            elapsed = time.perf_counter() - started
            print(f"  ... {checked}/{args.n} programs, "
                  f"{checked / elapsed:.1f} programs/sec")
    if hasattr(results, "close"):
        results.close()

    elapsed = time.perf_counter() - started
    paths = ", ".join(sorted(record["paths"]))
    print(f"{checked} programs in {elapsed:.1f}s "
          f"({checked / elapsed:.1f} programs/sec), "
          f"{failures} divergence(s), {len(timed_out)} timeout(s)")
    print(f"paths exercised: {paths}")
    if timed_out:
        print(f"timed-out seeds: {', '.join(map(str, timed_out))}")
    for path, why in sorted(record["skipped"].items()):
        print(f"  skipped {path}: {why}")
    return failures


if __name__ == "__main__":
    raise SystemExit(main())

"""Campaign driver: ``python -m repro.fuzz --seed 0 --n 500``.

Generates ``n`` programs from consecutive seeds, runs each through the
differential oracle (every execution path at every opt level), and
reports throughput plus any divergence.  A failing program is shrunk to
a minimal repro and persisted under ``tests/corpus/`` before the
campaign continues; the exit code is the number of divergent seeds
(0 = clean campaign).

Every ``--expr-only-every``-th seed uses the restricted expression-only
generator so the nested-CPS baseline is exercised too.
"""

from __future__ import annotations

import argparse
import sys
import time

from .gen import GenConfig, generate_program
from .oracle import OracleConfig, run_oracle
from .shrink import shrink_failure, write_repro


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing campaign over every backend "
                    "and optimization level")
    parser.add_argument("--seed", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--n", type=int, default=100,
                        help="number of programs (default 100)")
    parser.add_argument("--expr-only-every", type=int, default=5,
                        metavar="K",
                        help="every K-th seed uses the expression-only "
                             "generator (0 disables; default 5)")
    parser.add_argument("--no-c", action="store_true",
                        help="skip the C-emitter path")
    parser.add_argument("--no-pgo", action="store_true",
                        help="skip the profile-guided path")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip pass-level IR verification")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimizing them")
    parser.add_argument("--corpus", default="tests/corpus",
                        help="where to write shrunk repros")
    parser.add_argument("--stop-after", type=int, default=5,
                        metavar="N",
                        help="abort the campaign after N divergent "
                             "seeds (default 5)")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = _parse_args(argv)
    record: dict = {}
    expr_cfg = GenConfig(expr_only=True)
    failures = []
    started = time.perf_counter()

    for index in range(args.n):
        seed = args.seed + index
        expr_only = (args.expr_only_every
                     and index % args.expr_only_every
                     == args.expr_only_every - 1)
        prog = generate_program(seed, expr_cfg if expr_only else None)
        config = OracleConfig(run_c=not args.no_c,
                              run_pgo=not args.no_pgo,
                              verify_each_pass=not args.no_verify,
                              record=record)
        failure = run_oracle(prog, config)
        if failure is not None:
            failures.append(failure)
            print(f"seed {seed}: DIVERGENCE", file=sys.stderr)
            print(failure.describe(), file=sys.stderr)
            if not args.no_shrink:
                small = shrink_failure(prog, failure, config)
                path = write_repro(small, failure, args.corpus)
                print(f"  shrunk to {len(small.render().splitlines())} "
                      f"lines -> {path}", file=sys.stderr)
            if len(failures) >= args.stop_after:
                print(f"stopping after {len(failures)} divergent seeds",
                      file=sys.stderr)
                break
        if (index + 1) % 50 == 0:
            elapsed = time.perf_counter() - started
            print(f"  ... {index + 1}/{args.n} programs, "
                  f"{(index + 1) / elapsed:.1f} programs/sec")

    elapsed = time.perf_counter() - started
    checked = index + 1
    paths = ", ".join(sorted(record.get("paths", ())))
    print(f"{checked} programs in {elapsed:.1f}s "
          f"({checked / elapsed:.1f} programs/sec), "
          f"{len(failures)} divergence(s)")
    print(f"paths exercised: {paths}")
    for path, why in sorted(record.get("skipped", {}).items()):
        print(f"  skipped {path}: {why}")
    return len(failures)


if __name__ == "__main__":
    raise SystemExit(main())

"""Campaign driver: ``python -m repro.fuzz --seed 0 --n 500``.

Generates ``n`` programs from consecutive seeds, runs each through the
differential oracle (every execution path at every opt level), and
reports throughput plus any divergence.  A failing program is shrunk to
a minimal repro and persisted under ``tests/corpus/`` before the
campaign continues; the exit code is the number of divergent seeds
(0 = clean campaign).

Every ``--expr-only-every``-th seed uses the restricted expression-only
generator so the nested-CPS baseline is exercised too.

``--case-timeout S`` bounds the wall-clock a single seed may take
(generation + all oracle paths); a timed-out seed is recorded and
reported in the summary but does not count as a divergence.

``--fault-campaign`` switches to the fault-injection campaign
(:mod:`repro.fuzz.faults`): the systematic fault-mode x pass matrix
over the evaluation suite, plus ``--fault-seeds`` randomly sabotaged
fuzz programs.  Exit code is the number of cases where the pipeline
failed to recover or the recovered program diverged.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..core.limits import DeadlineExceeded, deadline
from .gen import GenConfig, generate_program
from .oracle import OracleConfig, run_oracle
from .shrink import shrink_failure, write_repro


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing campaign over every backend "
                    "and optimization level")
    parser.add_argument("--seed", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--n", type=int, default=100,
                        help="number of programs (default 100)")
    parser.add_argument("--expr-only-every", type=int, default=5,
                        metavar="K",
                        help="every K-th seed uses the expression-only "
                             "generator (0 disables; default 5)")
    parser.add_argument("--no-c", action="store_true",
                        help="skip the C-emitter path")
    parser.add_argument("--no-pgo", action="store_true",
                        help="skip the profile-guided path")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip pass-level IR verification")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimizing them")
    parser.add_argument("--corpus", default="tests/corpus",
                        help="where to write shrunk repros")
    parser.add_argument("--stop-after", type=int, default=5,
                        metavar="N",
                        help="abort the campaign after N divergent "
                             "seeds (default 5)")
    parser.add_argument("--case-timeout", type=float, default=None,
                        metavar="S",
                        help="wall-clock budget per seed in seconds "
                             "(default: none); timed-out seeds are "
                             "reported, not counted as divergences")
    parser.add_argument("--fault-campaign", action="store_true",
                        help="run the fault-injection campaign instead "
                             "of the differential one")
    parser.add_argument("--fault-seeds", type=int, default=50,
                        metavar="N",
                        help="random sabotaged fuzz programs in the "
                             "fault campaign (default 50)")
    parser.add_argument("--fault-programs", type=int, default=None,
                        metavar="N",
                        help="limit the fault matrix to the first N "
                             "suite programs (default: all)")
    return parser.parse_args(argv)


def _fault_campaign(args) -> int:
    from ..programs.suite import ALL_PROGRAMS
    from .faults import run_fault_matrix, run_random_faults, summarize

    programs = ALL_PROGRAMS
    if args.fault_programs is not None:
        programs = programs[:args.fault_programs]

    def progress(result):
        if not result.ok:
            print(result.describe(), file=sys.stderr)

    started = time.perf_counter()
    results = run_fault_matrix(programs, progress=progress)
    matrix_elapsed = time.perf_counter() - started
    print(f"matrix: {summarize(results)} over {len(programs)} programs "
          f"in {matrix_elapsed:.1f}s")

    if args.fault_seeds:
        started = time.perf_counter()
        random_results = run_random_faults(args.fault_seeds, args.seed,
                                           progress=progress)
        print(f"random: {summarize(random_results)} "
              f"in {time.perf_counter() - started:.1f}s")
        results += random_results

    failures = [r for r in results if not r.ok]
    return len(failures)


def main(argv=None) -> int:
    args = _parse_args(argv)
    if args.fault_campaign:
        return _fault_campaign(args)

    record: dict = {}
    expr_cfg = GenConfig(expr_only=True)
    failures = []
    timed_out: list[int] = []
    started = time.perf_counter()

    for index in range(args.n):
        seed = args.seed + index
        expr_only = (args.expr_only_every
                     and index % args.expr_only_every
                     == args.expr_only_every - 1)
        config = OracleConfig(run_c=not args.no_c,
                              run_pgo=not args.no_pgo,
                              verify_each_pass=not args.no_verify,
                              record=record)
        try:
            with deadline(args.case_timeout, what=f"seed {seed}"):
                prog = generate_program(seed,
                                        expr_cfg if expr_only else None)
                failure = run_oracle(prog, config)
        except DeadlineExceeded:
            timed_out.append(seed)
            print(f"seed {seed}: timed out after {args.case_timeout}s",
                  file=sys.stderr)
            continue
        if failure is not None:
            failures.append(failure)
            print(f"seed {seed}: DIVERGENCE", file=sys.stderr)
            print(failure.describe(), file=sys.stderr)
            if not args.no_shrink:
                try:
                    with deadline(args.case_timeout and
                                  args.case_timeout * 10,
                                  what=f"shrinking seed {seed}"):
                        small = shrink_failure(prog, failure, config)
                except DeadlineExceeded:
                    small = prog
                path = write_repro(small, failure, args.corpus)
                print(f"  shrunk to {len(small.render().splitlines())} "
                      f"lines -> {path}", file=sys.stderr)
            if len(failures) >= args.stop_after:
                print(f"stopping after {len(failures)} divergent seeds",
                      file=sys.stderr)
                break

        if (index + 1) % 50 == 0:
            elapsed = time.perf_counter() - started
            print(f"  ... {index + 1}/{args.n} programs, "
                  f"{(index + 1) / elapsed:.1f} programs/sec")

    elapsed = time.perf_counter() - started
    checked = index + 1
    paths = ", ".join(sorted(record.get("paths", ())))
    print(f"{checked} programs in {elapsed:.1f}s "
          f"({checked / elapsed:.1f} programs/sec), "
          f"{len(failures)} divergence(s), {len(timed_out)} timeout(s)")
    print(f"paths exercised: {paths}")
    if timed_out:
        print(f"timed-out seeds: {', '.join(map(str, timed_out))}")
    for path, why in sorted(record.get("skipped", {}).items()):
        print(f"  skipped {path}: {why}")
    return len(failures)


if __name__ == "__main__":
    raise SystemExit(main())

"""The differential oracle.

A generated program (:class:`~repro.fuzz.gen.FuzzProgram`) is executed
through every available path and the observations are compared:

==============  ========================================================
path            what runs
==============  ========================================================
``none``        graph interpreter on the unoptimized world (this is the
                *reference* — construction-time folding only)
``static``      interpreter **and** bytecode VM on a world optimized by
                the standard pipeline (``optimize()``)
``pgo``         interpreter and VM on a world optimized by the two-phase
                profile-guided driver (``compile_profiled``), trained on
                the program's own argument sets
``c``           the C emitter's output for the statically optimized
                world, compiled with the system C compiler and executed
``native``      the hardened native tier (:mod:`repro.native`): the same
                optimized world compiled to a ``.so`` and executed
                in-process via ctypes — result, trap *kind* and print
                stream all compared
``ssa``         the classical CFG+SSA baseline (first-order programs)
``cps``         the nested-CPS baseline (expression-only programs)
``cache``       (opt-in) the static pipeline rerun with analysis
                caching flipped — printed IR must be byte-identical
==============  ========================================================

Each observation is *(result, print output, trap kind)*; traps are
normalized to a sentinel so "both paths trap" still agrees, and when
both paths trap the *kind* (``div-by-zero`` vs ``step-limit``) must
also agree for the engines that report one.  Optimized
compiles run under ``OptimizeOptions(verify_each_pass=True)``, so an IR
invariant broken by a single pass surfaces as a
:class:`~repro.transform.pipeline.PassVerifyError` attributed to that
pass — reported as a divergence like any output mismatch.

``run_oracle`` returns ``None`` on agreement or a :class:`FuzzFailure`
describing the first divergence.
"""

from __future__ import annotations

import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..backend.codegen import CompiledWorld, compile_world
from ..backend.c_emitter import emit_c
from ..backend.interp import Interpreter, InterpError
from ..backend import bytecode as bc
from ..core import fold
from ..core.limits import ResourceLimitError
from ..core.verify import VerifyError, cff_violations, verify
from ..frontend import compile_source
from ..transform.pipeline import OptimizeOptions, PassVerifyError
from .gen import FuzzProgram

TRAP = "<trap>"


@dataclass(frozen=True)
class Observation:
    """What one execution of the entry point looked like.

    ``trap`` is the trap *kind* (``"div-by-zero"``, ``"step-limit"``,
    ...) when ``result`` is :data:`TRAP` and the engine can classify
    it; engines that cannot (SSA/CPS baselines) leave it ``None`` and
    are excluded from kind comparison.
    """

    result: object
    output: str = ""
    trap: str | None = None


@dataclass
class FuzzFailure:
    """One divergence found by the oracle.

    ``stage`` names the path/phase that disagreed (e.g. ``"vm(static)"``,
    ``"verify(pgo)"``, ``"c-run"``); the pair ``(stage, kind)`` is the
    *signature* the shrinker preserves while minimizing.
    """

    seed: object
    stage: str
    message: str
    args: tuple | None = None
    expected: object = None
    got: object = None
    source: str = ""

    @property
    def signature(self) -> tuple:
        return (self.stage,)

    def describe(self) -> str:
        lines = [f"[{self.stage}] {self.message}"]
        if self.args is not None:
            lines.append(f"  args     = {self.args}")
        if self.expected is not None or self.got is not None:
            lines.append(f"  expected = {self.expected}")
            lines.append(f"  got      = {self.got}")
        if self.seed is not None:
            lines.append(f"  seed     = {self.seed}")
        return "\n".join(lines)


@dataclass
class OracleConfig:
    """Which paths run and how (all on by default)."""

    run_vm: bool = True
    run_c: bool = True
    run_pgo: bool = True
    run_ssa: bool = True
    run_cps: bool = True
    verify_each_pass: bool = True
    # Analysis caching for the optimized compiles (the production
    # default).  ``check_cache`` adds a ``cache(static)`` stage: compile
    # the program a second time with caching flipped and require the
    # printed IR to be byte-identical and the interpreter observations
    # to agree — any divergence is a stale-cache bug.
    cache_analyses: bool = True
    check_cache: bool = False
    # ``check_incremental`` (on by default) adds an
    # ``incremental(static)`` stage: compile a second time with in-place
    # scope/CFG patching flipped to drop-on-touch invalidation and
    # require byte-identical printed IR plus matching interpreter
    # observations — any divergence is an unsound patch (a grown scope
    # missing a member, a stale CFG edge surviving revalidation).
    check_incremental: bool = True
    # ``check_memopt`` (on by default) adds a ``memopt(static)`` stage:
    # compile a second time with ``mem_opt`` flipped off and require the
    # interpreter observations — results, traps, print streams — to be
    # byte-identical.  Any divergence is an unsound alias verdict or a
    # trap/effect dropped by forwarding/DSE.
    check_memopt: bool = True
    # The native tier: emit hardened C, build a .so with the system cc
    # (repro.native discovery: REPRO_CC, cc, gcc, clang), run it
    # in-process via ctypes and compare result + trap kind + prints.
    run_native: bool = True
    # Fuel (block/function entries) for native runs: the in-process
    # analogue of vm_max_steps — a miscompile-manufactured infinite
    # loop traps as "step-limit" instead of hanging the fuzz worker.
    native_fuel: int = 100_000_000
    cc: str = "gcc"
    # -fwrapv: match the IR's two's-complement wrapping; -fno-builtin:
    # keep the compiler from pattern-matching our arithmetic into
    # library calls with different edge-case behaviour.
    cc_flags: tuple = ("-O1", "-fwrapv", "-fno-builtin")
    cc_timeout: float = 60.0
    run_timeout: float = 60.0
    # Step bound for the graph interpreter: generated programs are
    # cost-bounded far below this, so hitting it means a transformation
    # manufactured divergence-by-nontermination — observed as a trap
    # rather than a hang.
    interp_max_steps: int = 2_000_000
    # Step bound for the shared bytecode VM (static/PGO/SSA paths):
    # generous enough that any honest program finishes, tight enough
    # that a miscompile-manufactured infinite loop surfaces as a trap
    # (and thus a divergence) instead of a hang.
    vm_max_steps: int = 20_000_000
    # ``record`` collects which paths actually ran (and which were
    # skipped and why) — campaign-level coverage reporting.
    record: dict = field(default_factory=dict)


def _options(config: OracleConfig,
             cache: bool | None = None,
             mem_opt: bool | None = None,
             incremental: bool | None = None) -> OptimizeOptions:
    # strict: the oracle *wants* fail-fast.  The production default
    # quarantines a crashing/corrupting pass and compiles around it,
    # which would hide exactly the bugs differential fuzzing hunts.
    options = OptimizeOptions(verify_each_pass=config.verify_each_pass,
                              strict=True,
                              cache_analyses=(config.cache_analyses
                                              if cache is None else cache))
    if mem_opt is not None:
        options.mem_opt = mem_opt
    if incremental is not None:
        options.incremental = incremental
    return options


def _trap_kind(exc: BaseException) -> str:
    """Classify a trap exception into the cross-engine kind names."""
    if isinstance(exc, ResourceLimitError):
        resource = getattr(exc, "resource", "")
        return "step-limit" if resource == "steps" else "resource-limit"
    if "division" in str(exc):
        return "div-by-zero"
    return "other"


def _run_interp(world, entry: str, arg_sets,
                max_steps: int = 2_000_000) -> list[Observation]:
    obs = []
    for args in arg_sets:
        interp = Interpreter(world, max_steps=max_steps)
        try:
            result = interp.call(entry, *args)
            obs.append(Observation(result, "".join(interp.output)))
        except (InterpError, fold.EvalError, ResourceLimitError) as exc:
            obs.append(Observation(TRAP, "".join(interp.output),
                                   trap=_trap_kind(exc)))
    return obs


def _run_vm(compiled: CompiledWorld, entry: str, arg_sets) -> list[Observation]:
    obs = []
    for args in arg_sets:
        mark = len(compiled.vm.output)
        try:
            result = compiled.call(entry, *args)
            obs.append(Observation(result,
                                   "".join(compiled.vm.output[mark:])))
        except (bc.VMError, ResourceLimitError) as exc:
            obs.append(Observation(TRAP, "".join(compiled.vm.output[mark:]),
                                   trap=_trap_kind(exc)))
    return obs


def _compare(stage: str, prog: FuzzProgram, reference: list[Observation],
             candidate: list[Observation], *,
             outputs: bool = True) -> FuzzFailure | None:
    for args, ref, got in zip(prog.arg_sets, reference, candidate):
        if ref.result != got.result:
            return FuzzFailure(prog.seed, stage, "result divergence",
                               args=args, expected=ref.result,
                               got=got.result, source=prog.render())
        if outputs and ref.output != got.output:
            return FuzzFailure(prog.seed, stage, "print-output divergence",
                               args=args, expected=ref.output,
                               got=got.output, source=prog.render())
        if (ref.result == TRAP and ref.trap is not None
                and got.trap is not None and ref.trap != got.trap):
            return FuzzFailure(prog.seed, stage, "trap-kind divergence",
                               args=args, expected=ref.trap, got=got.trap,
                               source=prog.render())
    return None


def _c_driver(prog: FuzzProgram) -> str:
    """A ``main`` that runs every argument set with ``\\x1f`` markers.

    stdout becomes ``out0 \\x1f res0 \\x1f out1 \\x1f res1 \\x1f ...`` —
    print output never contains the marker (digits and ``-`` only), so a
    split recovers each observation exactly.
    """
    lines = ["int main(void) {"]
    for index, args in enumerate(prog.arg_sets):
        call_args = ", ".join(f"{a}ll" for a in args)
        lines.append(f"    int64_t r{index} = {prog.entry}({call_args});")
        lines.append(f'    printf("\\x1f%lld\\x1f", (long long)r{index});')
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines)


def _run_c(world, prog: FuzzProgram,
           config: OracleConfig) -> list[Observation] | str | None:
    """Compile+run the C emission; ``None`` = skipped, ``str`` = error."""
    if shutil.which(config.cc) is None:
        return None
    try:
        csrc = emit_c(world)
    except Exception as exc:  # an emitter crash is itself a finding
        return f"emit_c failed: {exc}"
    csrc = csrc + "\n\n" + _c_driver(prog) + "\n"
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
        cfile = Path(tmp) / "prog.c"
        exe = Path(tmp) / "prog"
        cfile.write_text(csrc)
        try:
            built = subprocess.run(
                [config.cc, *config.cc_flags, str(cfile), "-o", str(exe),
                 "-lm"],
                capture_output=True, text=True, timeout=config.cc_timeout)
        except subprocess.TimeoutExpired:
            return f"{config.cc} timed out"
        if built.returncode != 0:
            return f"{config.cc} rejected the emission: {built.stderr[:500]}"
        try:
            ran = subprocess.run([str(exe)], capture_output=True, text=True,
                                 timeout=config.run_timeout)
        except subprocess.TimeoutExpired:
            return "compiled binary timed out"
        if ran.returncode != 0:
            return f"compiled binary exited with {ran.returncode}"
    parts = ran.stdout.split("\x1f")
    # out0, res0, out1, res1, ..., trailing ""
    if len(parts) != 2 * len(prog.arg_sets) + 1:
        return f"malformed C output ({len(parts)} marker fields)"
    obs = []
    for index in range(len(prog.arg_sets)):
        output = parts[2 * index]
        result = int(parts[2 * index + 1])
        obs.append(Observation(result, output))
    return obs


def _run_native(world, prog: FuzzProgram,
                config: OracleConfig) -> list[Observation] | str | None:
    """Build+run the native tier; ``None`` = skipped, ``str`` = error."""
    from ..native import (NativeBuildError, NativeRunError,
                          compile_native_world, native_available)

    if not native_available():
        return None
    try:
        module = compile_native_world(world, timeout=config.cc_timeout)
    except NativeBuildError as exc:
        return f"native build failed [{exc.stage}]: {exc}"
    obs = []
    for args in prog.arg_sets:
        try:
            run = module.run(prog.entry, args, fuel=config.native_fuel)
        except NativeRunError as exc:
            return f"native run failed: {exc}"
        if run.trap is not None:
            obs.append(Observation(TRAP, run.output, trap=run.trap))
        else:
            obs.append(Observation(run.result, run.output))
    return obs


def run_oracle(prog: FuzzProgram,
               config: OracleConfig | None = None) -> FuzzFailure | None:
    """Differentially test *prog*; ``None`` means every path agreed."""
    config = config if config is not None else OracleConfig()
    record = config.record
    record.setdefault("paths", set())
    record.setdefault("skipped", {})
    source = prog.render()

    def ran(path):
        record["paths"].add(path)

    def skipped(path, why):
        record["skipped"][path] = why

    # --- reference: unoptimized world, graph interpreter ---------------
    try:
        world_ref = compile_source(source, optimize=False)
    except Exception as exc:
        return FuzzFailure(prog.seed, "compile(none)",
                           f"generated program failed to compile: {exc}",
                           source=source)
    try:
        verify(world_ref, full=True)
    except VerifyError as exc:
        return FuzzFailure(prog.seed, "verify(none)", str(exc), source=source)
    reference = _run_interp(world_ref, prog.entry, prog.arg_sets,
                           config.interp_max_steps)
    ran("interp(none)")

    # --- static optimization -------------------------------------------
    try:
        world_opt = compile_source(source, options=_options(config))
    except PassVerifyError as exc:
        return FuzzFailure(prog.seed, "verify(static)", str(exc),
                           source=source)
    except Exception as exc:
        return FuzzFailure(prog.seed, "compile(static)", str(exc),
                           source=source)
    failure = _compare("interp(static)", prog, reference,
                       _run_interp(world_opt, prog.entry, prog.arg_sets,
                                   config.interp_max_steps))
    if failure is not None:
        return failure
    ran("interp(static)")

    # --- cached vs uncached analysis differential ----------------------
    if config.check_cache:
        from ..core.printer import print_world

        try:
            world_alt = compile_source(
                source, options=_options(config,
                                         cache=not config.cache_analyses))
        except Exception as exc:
            return FuzzFailure(prog.seed, "cache(static)",
                               f"flipped-cache compile failed: {exc}",
                               source=source)
        printed = print_world(world_opt)
        printed_alt = print_world(world_alt)
        if printed != printed_alt:
            return FuzzFailure(prog.seed, "cache(static)",
                               "printed IR differs between cached and "
                               "uncached pipelines",
                               expected=printed, got=printed_alt,
                               source=source)
        failure = _compare("cache(static)", prog, reference,
                           _run_interp(world_alt, prog.entry, prog.arg_sets,
                                       config.interp_max_steps))
        if failure is not None:
            return failure
        ran("cache(static)")

    # --- incremental-patching differential -----------------------------
    # ``world_opt`` compiled with in-place patching (the production
    # default).  Compile once more with drop-on-touch invalidation and
    # demand byte-identical IR and observations: patched artifacts must
    # be indistinguishable from freshly recomputed ones.
    if config.check_incremental and config.cache_analyses:
        from ..core.printer import print_world

        try:
            world_drop = compile_source(
                source, options=_options(config, incremental=False))
        except Exception as exc:
            return FuzzFailure(prog.seed, "incremental(static)",
                               f"drop-on-touch compile failed: {exc}",
                               source=source)
        printed = print_world(world_opt)
        printed_drop = print_world(world_drop)
        if printed != printed_drop:
            return FuzzFailure(prog.seed, "incremental(static)",
                               "printed IR differs between patched and "
                               "drop-on-touch analysis invalidation",
                               expected=printed_drop, got=printed,
                               source=source)
        failure = _compare("incremental(static)", prog, reference,
                           _run_interp(world_drop, prog.entry,
                                       prog.arg_sets,
                                       config.interp_max_steps))
        if failure is not None:
            return failure
        ran("incremental(static)")

    # --- memory optimization differential ------------------------------
    # ``world_opt`` above ran with mem_opt on (the default) and already
    # matched the unoptimized reference; compiling again with mem_opt
    # off and matching the same reference pins on-vs-off byte equality
    # of results, traps and print streams.
    if config.check_memopt:
        try:
            world_nomem = compile_source(
                source, options=_options(config, mem_opt=False))
        except Exception as exc:
            return FuzzFailure(prog.seed, "memopt(static)",
                               f"mem_opt-off compile failed: {exc}",
                               source=source)
        failure = _compare("memopt(static)", prog, reference,
                           _run_interp(world_nomem, prog.entry,
                                       prog.arg_sets,
                                       config.interp_max_steps))
        if failure is not None:
            return failure
        ran("memopt(static)")

    compiled_static = None
    if config.run_vm:
        residual = cff_violations(world_opt)
        if residual:
            return FuzzFailure(prog.seed, "cff(static)",
                               f"not in control-flow form: {residual[:3]}",
                               source=source)
        try:
            compiled_static = compile_world(world_opt,
                                            max_steps=config.vm_max_steps)
        except Exception as exc:
            return FuzzFailure(prog.seed, "codegen(static)", str(exc),
                               source=source)
        failure = _compare("vm(static)", prog, reference,
                           _run_vm(compiled_static, prog.entry,
                                   prog.arg_sets))
        if failure is not None:
            return failure
        ran("vm(static)")

    # --- C emission of the statically optimized world ------------------
    if config.run_c:
        if any(obs.result == TRAP for obs in reference):
            skipped("c", "reference traps; C would be undefined")
        else:
            c_obs = _run_c(world_opt, prog, config)
            if c_obs is None:
                skipped("c", f"{config.cc} not available")
            elif isinstance(c_obs, str):
                return FuzzFailure(prog.seed, "c-run", c_obs, source=source)
            else:
                failure = _compare("c(static)", prog, reference, c_obs)
                if failure is not None:
                    return failure
                ran("c(static)")

    # --- native tier on the statically optimized world -----------------
    if config.run_native:
        # Only division traps are exactly reproducible in machine code:
        # the fuel budget counts block entries, not VM steps, so
        # step-limit (and other resource) traps are engine-local.
        odd = next((o.trap for o in reference
                    if o.result == TRAP and o.trap != "div-by-zero"), None)
        if odd is not None:
            skipped("native", f"reference trap kind {odd!r} is not "
                              f"reproducible natively")
        else:
            native_obs = _run_native(world_opt, prog, config)
            if native_obs is None:
                skipped("native", "no C compiler on PATH")
            elif isinstance(native_obs, str):
                return FuzzFailure(prog.seed, "native-build", native_obs,
                                   source=source)
            else:
                failure = _compare("native(static)", prog, reference,
                                   native_obs)
                if failure is not None:
                    return failure
                ran("native(static)")

    # --- profile-guided optimization -----------------------------------
    if config.run_pgo:
        from ..profile.driver import compile_profiled

        try:
            world_pgo = compile_source(source, optimize=False)

            def workload(compiled):
                for args in prog.arg_sets:
                    try:
                        compiled.call(prog.entry, *args)
                    except bc.VMError:
                        pass

            compiled_pgo, _profile, _stats = compile_profiled(
                world_pgo, workload, options=_options(config))
        except PassVerifyError as exc:
            return FuzzFailure(prog.seed, "verify(pgo)", str(exc),
                               source=source)
        except Exception as exc:
            return FuzzFailure(prog.seed, "compile(pgo)", str(exc),
                               source=source)
        failure = _compare("interp(pgo)", prog, reference,
                           _run_interp(world_pgo, prog.entry, prog.arg_sets,
                                       config.interp_max_steps))
        if failure is not None:
            return failure
        ran("interp(pgo)")
        failure = _compare("vm(pgo)", prog, reference,
                           _run_vm(compiled_pgo, prog.entry, prog.arg_sets))
        if failure is not None:
            return failure
        ran("vm(pgo)")

    # --- classical baselines -------------------------------------------
    if config.run_ssa and prog.first_order:
        from ..baselines.ssa import BaselineError, CompiledSSA, \
            compile_source_ssa

        try:
            module = compile_source_ssa(source)
            compiled_ssa = CompiledSSA(module, max_steps=config.vm_max_steps)
        except BaselineError as exc:
            skipped("ssa", f"baseline limitation: {exc}")
        except Exception as exc:
            return FuzzFailure(prog.seed, "compile(ssa)", str(exc),
                               source=source)
        else:
            obs = []
            for args in prog.arg_sets:
                try:
                    obs.append(Observation(compiled_ssa.call(prog.entry,
                                                             *args)))
                except (bc.VMError, ResourceLimitError):
                    obs.append(Observation(TRAP))
            # the SSA image shares the VM but not the print plumbing
            # used above, so compare results only
            failure = _compare("ssa", prog, reference, obs, outputs=False)
            if failure is not None:
                return failure
            ran("ssa")

    if config.run_cps and prog.expr_only:
        from ..baselines.nested_cps.convert import cps_convert_expr
        from ..baselines.nested_cps.interp import CPSRuntimeError, evaluate

        obs = []
        for args in prog.arg_sets:
            try:
                raw = evaluate(cps_convert_expr(prog.to_sexpr(args)))
                obs.append(Observation(fold.to_signed(raw, 64)))
            except (CPSRuntimeError, ResourceLimitError):
                obs.append(Observation(TRAP))
        failure = _compare("cps", prog, reference, obs, outputs=False)
        if failure is not None:
            return failure
        ran("cps")

    return None

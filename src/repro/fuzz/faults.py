"""Fault-injection campaign: prove the pipeline compiles *around* faults.

Two complementary drivers, both built on
:class:`~repro.fuzz.inject.FaultInjector`:

* :func:`run_fault_matrix` — the systematic sweep: every fault mode
  (raise / corrupt / stall / growth) x every pipeline pass (the four
  static passes, cleanup, and the two PGO passes) over the evaluation
  suite.  Each case must (a) complete without an exception, (b) name
  the sabotaged pass in ``PipelineStats.quarantined``, and (c) produce
  a world whose graph-interpreter behaviour is identical to the
  *unoptimized* reference.
* :func:`run_random_faults` — the soak: generated fuzz programs with a
  randomly chosen pass/mode sabotaged, compared against the
  unoptimized interpreter over all argument sets (traps normalized,
  like the differential oracle).

Both return :class:`FaultCaseResult` lists; ``python -m repro.fuzz
--fault-campaign`` drives them and exits non-zero on any failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..backend.interp import Interpreter
from ..frontend import compile_source
from ..profile.driver import collect_profile
from ..programs.suite import ALL_PROGRAMS
from ..transform.pipeline import OptimizeOptions, optimize
from .gen import GenConfig, generate_program
from .inject import FAULT_MODES, FaultInjector, FaultPlan
from .oracle import TRAP, _compare, _run_interp

STATIC_PASSES = ("partial_eval", "closure_elim", "inline", "lambda_drop",
                 "cleanup")
PGO_PASSES = ("pgo_loops", "pgo_inline")
ALL_PASSES = STATIC_PASSES + PGO_PASSES

INTERP_MAX_STEPS = 20_000_000

# Stall injection: the injected sleep must overshoot the deadline by a
# margin no legitimate pass on the suite approaches.
STALL_DEADLINE = 0.25
STALL_SECONDS = 0.6


@dataclass
class FaultCaseResult:
    """One sabotaged compilation: what was hit and whether we recovered."""

    program: str
    target: str
    mode: str
    ok: bool
    fired: bool
    detail: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        note = f" ({self.detail})" if self.detail else ""
        return (f"[{status}] {self.program}: {self.mode} in "
                f"{self.target}{note}")


def _fault_options(injector: FaultInjector, mode: str) -> OptimizeOptions:
    # Tight growth budget so the blowup injector trips it quickly; the
    # verifier is on so corruption is *attributed*, not just detected.
    return OptimizeOptions(
        verify_each_pass=True,
        pass_deadline=STALL_DEADLINE if mode == "stall" else None,
        growth_cap_factor=4.0,
        growth_cap_floor=64,
        crash_dir=None,
        pass_hook=injector,
    )


def run_fault_case(program, target: str, mode: str) -> FaultCaseResult:
    """Sabotage *target* with *mode* while compiling a suite *program*."""
    reference = Interpreter(compile_source(program.source, optimize=False),
                            max_steps=INTERP_MAX_STEPS)
    expected = reference.call(program.entry, *program.test_args)
    expected_out = "".join(reference.output)

    world = compile_source(program.source, optimize=False)
    injector = FaultInjector(FaultPlan(mode, target=target,
                                       stall_seconds=STALL_SECONDS))
    options = _fault_options(injector, mode)

    profile = None
    if target in PGO_PASSES:
        # The PGO phases only run when a profile is supplied: train on
        # the statically optimized world first, like compile_profiled.
        optimize(world)
        profile = collect_profile(
            world,
            lambda compiled: compiled.call(program.entry,
                                           *program.test_args),
            swallow_errors=True)

    def fail(detail: str) -> FaultCaseResult:
        return FaultCaseResult(program.name, target, mode, False,
                               injector.fired, detail)

    try:
        stats = optimize(world, options=options, profile=profile)
    except Exception as exc:
        return fail(f"pipeline did not recover: {exc!r}")

    if not injector.fired:
        return FaultCaseResult(program.name, target, mode, True, False,
                               "pass never ran; fault vacuous")
    if target not in stats.quarantined:
        return fail(f"fault fired in {injector.struck!r} but "
                    f"{target!r} not quarantined "
                    f"(quarantined={stats.quarantined})")

    survivor = Interpreter(world, max_steps=INTERP_MAX_STEPS)
    try:
        got = survivor.call(program.entry, *program.test_args)
    except Exception as exc:
        return fail(f"recovered world traps: {exc!r}")
    if got != expected:
        return fail(f"recovered world diverges: expected {expected!r}, "
                    f"got {got!r}")
    if "".join(survivor.output) != expected_out:
        return fail("recovered world prints differently")
    return FaultCaseResult(program.name, target, mode, True, True)


def run_fault_matrix(programs=None, passes=ALL_PASSES, modes=FAULT_MODES,
                     *, progress=None) -> list[FaultCaseResult]:
    """Every pass x mode combination over *programs* (default: suite)."""
    if programs is None:
        programs = ALL_PROGRAMS
    results = []
    for program in programs:
        for target in passes:
            for mode in modes:
                result = run_fault_case(program, target, mode)
                results.append(result)
                if progress is not None:
                    progress(result)
    return results


def _interp_observations(world, prog) -> list:
    return _run_interp(world, prog.entry, prog.arg_sets,
                       max_steps=INTERP_MAX_STEPS)


def random_fault_plan(n: int, seed: int = 0,
                      expr_only_every: int = 4) -> list[tuple]:
    """The ``n`` sabotage cases ``run_random_faults`` would execute.

    Drawn from one sequential RNG so the plan (and therefore every
    case's target/mode/nth) is identical however the cases are later
    distributed — the parallel driver precomputes this in the parent
    and ships one tuple per worker.
    """
    rng = random.Random(seed)
    plan = []
    for index in range(n):
        prog_seed = seed + index
        expr_only = bool(expr_only_every
                         and index % expr_only_every == expr_only_every - 1)
        target = rng.choice(STATIC_PASSES)
        mode = rng.choice(FAULT_MODES)
        nth = rng.randint(1, 3)
        plan.append((prog_seed, expr_only, target, mode, nth))
    return plan


def run_random_fault_case(prog_seed: int, expr_only: bool, target: str,
                          mode: str, nth: int) -> FaultCaseResult:
    """One sabotaged fuzz program (a single entry of the random plan)."""
    prog = generate_program(prog_seed,
                            GenConfig(expr_only=True) if expr_only else None)

    world = compile_source(prog.render(), optimize=False)
    reference = _interp_observations(world, prog)

    injector = FaultInjector(FaultPlan(mode, target=target, nth=nth,
                                       stall_seconds=STALL_SECONDS))
    label = f"fuzz-{prog_seed}"

    def fail(detail: str) -> FaultCaseResult:
        return FaultCaseResult(label, target, mode, False,
                               injector.fired, detail)

    try:
        stats = optimize(world, options=_fault_options(injector, mode))
    except Exception as exc:
        return fail(f"pipeline did not recover: {exc!r}")
    if injector.fired and target not in stats.quarantined:
        return fail(f"fired but {target!r} not quarantined")
    failure = _compare(f"fault({mode})", prog, reference,
                       _interp_observations(world, prog))
    if failure is not None:
        return fail(failure.describe())
    detail = "" if injector.fired else "fault vacuous"
    return FaultCaseResult(label, target, mode, True, injector.fired, detail)


def run_random_faults(n: int, seed: int = 0, *, expr_only_every: int = 4,
                      progress=None) -> list[FaultCaseResult]:
    """Soak test: *n* fuzz programs, each with one random sabotage."""
    results = []
    for case in random_fault_plan(n, seed, expr_only_every):
        result = run_random_fault_case(*case)
        results.append(result)
        if progress is not None:
            progress(result)
    return results


def summarize(results: list[FaultCaseResult]) -> str:
    total = len(results)
    failed = [r for r in results if not r.ok]
    fired = sum(1 for r in results if r.fired)
    return (f"{total} fault cases, {fired} faults fired, "
            f"{len(failed)} failure(s)")

"""Seeded random generator of well-typed Impala-lite programs.

The generator builds programs in a small structural AST (the same
representation the shrinker reduces), then renders them to Impala-lite
source.  Programs are *total by construction*:

* loop bounds and recursion depths are masked to small ranges;
* division/modulo right-hand sides are wrapped into a guaranteed
  non-zero, non-``-1`` guard expression (unless ``allow_traps``);
* shift amounts are masked to ``& 63`` (the IR's own semantics);
* buffer indices are masked to the buffer size.

so every backend — including the C-emitter path, where a trap would be
undefined behaviour — observes the same defined execution.

Determinism: one :class:`random.Random` seeded by the caller drives all
choices; the same ``(seed, config)`` pair always yields the same
program, which is what makes campaign failures replayable.

A restricted ``expr_only`` mode generates pure integer expression
programs that additionally render to the S-expression language of the
nested-CPS baseline (:mod:`repro.baselines.nested_cps`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

I64 = "i64"
F64 = "f64"
BOOL = "bool"

BUF_SIZE = 16  # every buffer is new_buf_i64(16); indices are masked

INT_CMPS = ("==", "!=", "<", "<=", ">", ">=")
INT_BINOPS = ("+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%")
FLOAT_BINOPS = ("+", "-", "*", "/")
BOOL_BINOPS = ("&&", "||", "&", "|", "^")


def fn_t(param_types: tuple, ret: str) -> tuple:
    """A function type as a structural key, e.g. ``("fn", ("i64",), "i64")``."""
    return ("fn", tuple(param_types), ret)


# ---------------------------------------------------------------------------
# expression nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Lit:
    t: str
    value: object


@dataclass(frozen=True)
class Var:
    t: object  # str or fn type tuple
    name: str


@dataclass(frozen=True)
class Bin:
    t: str
    op: str
    lhs: object
    rhs: object


@dataclass(frozen=True)
class Un:
    t: str
    op: str  # "-" or "!"
    operand: object


@dataclass(frozen=True)
class IfE:
    t: str
    cond: object
    then: object
    els: object


@dataclass(frozen=True)
class Call:
    t: str
    name: str
    args: tuple
    pe: bool = False


@dataclass(frozen=True)
class Lam:
    t: tuple  # fn type
    params: tuple  # ((name, type), ...)
    body: object


@dataclass(frozen=True)
class Cast:
    t: str
    operand: object


@dataclass(frozen=True)
class Tup:
    t: tuple  # ("tuple", (elem_t, ...))
    elems: tuple


@dataclass(frozen=True)
class Field:
    t: str
    base: str  # a tuple-typed variable name
    index: int


@dataclass(frozen=True)
class Index:
    t: str
    buf: str
    index: object  # expression; rendered masked


# ---------------------------------------------------------------------------
# statement nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LetS:
    name: str
    t: object
    mut: bool
    init: object


@dataclass(frozen=True)
class NewBufS:
    name: str


@dataclass(frozen=True)
class AssignS:
    name: str
    op: object  # None for plain "=", else "+", "-", ...
    value: object


@dataclass(frozen=True)
class StoreS:
    buf: str
    index: object
    value: object


@dataclass(frozen=True)
class ForS:
    var: str
    bound: object
    body: tuple


@dataclass(frozen=True)
class WhileS:
    ctr: str
    bound: object
    body: tuple


@dataclass(frozen=True)
class IfS:
    cond: object
    then: tuple
    els: tuple


@dataclass(frozen=True)
class PrintS:
    value: object


@dataclass(frozen=True)
class FuzzFn:
    name: str
    params: tuple  # ((name, type), ...)
    ret: str
    stmts: tuple
    result: object
    extern: bool = False
    recursive: bool = False


@dataclass(frozen=True)
class FuzzProgram:
    fns: tuple
    entry: str
    arg_sets: tuple  # tuple of argument tuples to call the entry with
    expr_only: bool = False
    seed: object = None

    @property
    def entry_fn(self) -> FuzzFn:
        for fn in self.fns:
            if fn.name == self.entry:
                return fn
        raise KeyError(self.entry)

    @property
    def first_order(self) -> bool:
        """True when nothing fn-typed crosses a function boundary."""

        def expr_first_order(e) -> bool:
            if isinstance(e, Lam):
                return False
            for child in _expr_children(e):
                if not expr_first_order(child):
                    return False
            return True

        for fn in self.fns:
            if any(isinstance(t, tuple) and t and t[0] == "fn"
                   for _, t in fn.params):
                return False
            for stmt in _walk_stmts(fn.stmts):
                for e in _stmt_exprs(stmt):
                    if not expr_first_order(e):
                        return False
            if not expr_first_order(fn.result):
                return False
        return True

    def render(self) -> str:
        return render_program(self)

    def to_sexpr(self, args: tuple):
        """The nested-CPS S-expression form (``expr_only`` programs only)."""
        assert self.expr_only, "only expr_only programs have an S-expr form"
        entry = self.entry_fn
        env = {name: int(value)
               for (name, _t), value in zip(entry.params, args)}
        body = _expr_to_sexpr(entry.result, env)
        for fn in reversed([f for f in self.fns if f.name != self.entry]):
            body = ("letfun", fn.name, [p for p, _ in fn.params],
                    _expr_to_sexpr(fn.result, {}), body)
        return body


def _expr_children(e) -> tuple:
    if isinstance(e, Bin):
        return (e.lhs, e.rhs)
    if isinstance(e, (Un, Cast)):
        return (e.operand,)
    if isinstance(e, IfE):
        return (e.cond, e.then, e.els)
    if isinstance(e, Call):
        return e.args
    if isinstance(e, Lam):
        return (e.body,)
    if isinstance(e, Tup):
        return e.elems
    if isinstance(e, Index):
        return (e.index,)
    return ()


def _stmt_exprs(stmt) -> tuple:
    if isinstance(stmt, LetS):
        return (stmt.init,)
    if isinstance(stmt, AssignS):
        return (stmt.value,)
    if isinstance(stmt, StoreS):
        return (stmt.index, stmt.value)
    if isinstance(stmt, (ForS, WhileS)):
        return (stmt.bound,)
    if isinstance(stmt, IfS):
        return (stmt.cond,)
    if isinstance(stmt, PrintS):
        return (stmt.value,)
    return ()


def _walk_stmts(stmts):
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, (ForS, WhileS)):
            yield from _walk_stmts(stmt.body)
        elif isinstance(stmt, IfS):
            yield from _walk_stmts(stmt.then)
            yield from _walk_stmts(stmt.els)


def _expr_to_sexpr(e, env: dict):
    if isinstance(e, Lit):
        return int(e.value)
    if isinstance(e, Var):
        if e.name in env:
            return env[e.name]
        return e.name
    if isinstance(e, Bin):
        return (e.op, _expr_to_sexpr(e.lhs, env), _expr_to_sexpr(e.rhs, env))
    if isinstance(e, IfE):
        return ("if", _expr_to_sexpr(e.cond, env),
                _expr_to_sexpr(e.then, env), _expr_to_sexpr(e.els, env))
    if isinstance(e, Call):
        return ("call", e.name) + tuple(_expr_to_sexpr(a, env) for a in e.args)
    if isinstance(e, Un) and e.op == "-":
        return ("-", 0, _expr_to_sexpr(e.operand, env))
    raise ValueError(f"no S-expr form for {e!r}")


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _render_type(t) -> str:
    if isinstance(t, tuple):
        if t[0] == "fn":
            params = ", ".join(_render_type(p) for p in t[1])
            return f"fn({params}) -> {_render_type(t[2])}"
        if t[0] == "tuple":
            return "(" + ", ".join(_render_type(e) for e in t[1]) + ")"
        if t[0] == "buf":
            return f"&[{t[1]}]"
    return t


def render_expr(e) -> str:
    if isinstance(e, Lit):
        if e.t == BOOL:
            return "true" if e.value else "false"
        if e.t == F64:
            return repr(float(e.value))
        value = int(e.value)
        return f"(-{-value})" if value < 0 else str(value)
    if isinstance(e, Var):
        return e.name
    if isinstance(e, Bin):
        return f"({render_expr(e.lhs)} {e.op} {render_expr(e.rhs)})"
    if isinstance(e, Un):
        return f"({e.op}{render_expr(e.operand)})"
    if isinstance(e, IfE):
        return (f"(if {render_expr(e.cond)} {{ {render_expr(e.then)} }} "
                f"else {{ {render_expr(e.els)} }})")
    if isinstance(e, Call):
        args = ", ".join(render_expr(a) for a in e.args)
        at = "@" if e.pe else ""
        return f"{at}{e.name}({args})"
    if isinstance(e, Lam):
        params = ", ".join(f"{n}: {_render_type(t)}" for n, t in e.params)
        return f"|{params}| {render_expr(e.body)}"
    if isinstance(e, Cast):
        return f"({render_expr(e.operand)} as {e.t})"
    if isinstance(e, Tup):
        return "(" + ", ".join(render_expr(el) for el in e.elems) + ")"
    if isinstance(e, Field):
        return f"{e.base}.{e.index}"
    if isinstance(e, Index):
        return f"{e.buf}[({render_expr(e.index)}) & {BUF_SIZE - 1}]"
    raise AssertionError(f"cannot render {e!r}")


def _render_stmt(stmt, out: list, indent: int) -> None:
    pad = "    " * indent
    if isinstance(stmt, LetS):
        mut = "mut " if stmt.mut else ""
        out.append(f"{pad}let {mut}{stmt.name} = {render_expr(stmt.init)};")
    elif isinstance(stmt, NewBufS):
        out.append(f"{pad}let {stmt.name} = new_buf_i64({BUF_SIZE});")
    elif isinstance(stmt, AssignS):
        op = (stmt.op or "") + "="
        out.append(f"{pad}{stmt.name} {op} {render_expr(stmt.value)};")
    elif isinstance(stmt, StoreS):
        out.append(f"{pad}{stmt.buf}[({render_expr(stmt.index)}) & "
                   f"{BUF_SIZE - 1}] = {render_expr(stmt.value)};")
    elif isinstance(stmt, ForS):
        out.append(f"{pad}for {stmt.var} in 0..(({render_expr(stmt.bound)})"
                   f" & 7) {{")
        for inner in stmt.body:
            _render_stmt(inner, out, indent + 1)
        out.append(f"{pad}}}")
    elif isinstance(stmt, WhileS):
        out.append(f"{pad}let mut {stmt.ctr} = ({render_expr(stmt.bound)})"
                   f" & 7;")
        out.append(f"{pad}while {stmt.ctr} > 0 {{")
        out.append(f"{pad}    {stmt.ctr} -= 1;")
        for inner in stmt.body:
            _render_stmt(inner, out, indent + 1)
        out.append(f"{pad}}}")
    elif isinstance(stmt, IfS):
        out.append(f"{pad}if {render_expr(stmt.cond)} {{")
        for inner in stmt.then:
            _render_stmt(inner, out, indent + 1)
        if stmt.els:
            out.append(f"{pad}}} else {{")
            for inner in stmt.els:
                _render_stmt(inner, out, indent + 1)
        out.append(f"{pad}}}")
    elif isinstance(stmt, PrintS):
        out.append(f"{pad}print_i64({render_expr(stmt.value)});")
    else:
        raise AssertionError(f"cannot render {stmt!r}")


def render_fn(fn: FuzzFn) -> str:
    out: list[str] = []
    params = ", ".join(f"{n}: {_render_type(t)}" for n, t in fn.params)
    extern = "extern " if fn.extern else ""
    out.append(f"{extern}fn {fn.name}({params}) -> {fn.ret} {{")
    for stmt in fn.stmts:
        _render_stmt(stmt, out, 1)
    out.append(f"    {render_expr(fn.result)}")
    out.append("}")
    return "\n".join(out)


def render_program(prog: FuzzProgram) -> str:
    return "\n".join(render_fn(fn) for fn in prog.fns) + "\n"


# ---------------------------------------------------------------------------
# cost model — a static upper bound on interpreted steps, to keep the
# (slow) graph-interpreter runs of the oracle bounded
# ---------------------------------------------------------------------------

LOOP_FACTOR = 8      # loop bounds are masked & 7
REC_FACTOR = 260     # depth <= 7, <= 2 self-calls/level: < 2**8 activations


def _expr_cost(e, fn_costs: dict) -> int:
    cost = 1
    if isinstance(e, Call):
        cost += fn_costs.get(e.name, 1)
    for child in _expr_children(e):
        cost += _expr_cost(child, fn_costs)
    return cost


def _stmts_cost(stmts, fn_costs: dict) -> int:
    cost = 0
    for stmt in stmts:
        cost += 1
        for e in _stmt_exprs(stmt):
            cost += _expr_cost(e, fn_costs)
        if isinstance(stmt, (ForS, WhileS)):
            cost += LOOP_FACTOR * _stmts_cost(stmt.body, fn_costs)
        elif isinstance(stmt, IfS):
            cost += max(_stmts_cost(stmt.then, fn_costs),
                        _stmts_cost(stmt.els, fn_costs))
    return cost


def fn_cost(fn: FuzzFn, fn_costs: dict) -> int:
    cost = (_stmts_cost(fn.stmts, fn_costs)
            + _expr_cost(fn.result, fn_costs))
    if fn.recursive:
        cost *= REC_FACTOR
    return cost


def program_cost(prog: FuzzProgram) -> int:
    """Upper bound on dynamic steps of one entry call."""
    costs: dict[str, int] = {}
    for fn in prog.fns:
        costs[fn.name] = fn_cost(fn, costs)
    return costs[prog.entry]


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------


@dataclass
class GenConfig:
    """Knobs for program size and feature coverage."""

    max_helpers: int = 3
    max_stmts: int = 4          # statements per block
    max_depth: int = 3          # expression nesting
    max_block_depth: int = 2    # loop/if statement nesting
    n_arg_sets: int = 2
    cost_budget: int = 6000     # static bound on interpreted steps

    floats: bool = True
    tuples: bool = True
    buffers: bool = True
    higher_order: bool = True
    recursion: bool = True
    loops: bool = True
    prints: bool = True
    casts: bool = True
    pe_calls: bool = True       # sprinkle `@` force-PE call markers
    allow_traps: bool = False   # unguarded / and % (interp/VM-only configs)
    expr_only: bool = False     # nested-CPS-compatible pure expressions
    # Memory-heavy profile (``--mem-heavy``): the entry always creates
    # two buffers and opens with a pair of stores through potentially
    # aliasing indices; statement and expression rolls are re-weighted
    # toward stores, loads, store-pairs on both branch arms and loads
    # inside loops — the constructs the alias analysis and mem_opt pass
    # have to judge.
    mem_heavy: bool = False


@dataclass
class _Ctx:
    """Generation context: what is in scope, and where we are."""

    env: list                   # [(name, type, mutable)]
    callables: list             # [FuzzFn] visible helpers
    rec: object = None          # (fn_name, depth_param, params) if inside
    rec_budget: int = 0         # self-calls still allowed
    in_entry: bool = False
    lam_depth: int = 0


_FLOAT_POOL = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.25, 0.125, 10.0, 100.0,
               0.0625, 7.75, 12.375, 1024.0)
_INT_POOL = (0, 1, 2, 3, 5, 7, 8, 13, 15, 16, 63, 100, 255, 1000,
             -1, -2, -7, -100, 4096, 65535, 2**31 - 1, -(2**31))


class Gen:
    def __init__(self, seed, config: GenConfig | None = None):
        self.rng = random.Random(seed)
        self.config = config or GenConfig()
        self.seed = seed
        self._counter = 0

    def fresh(self, base: str) -> str:
        self._counter += 1
        return f"{base}{self._counter}"

    # -- leaves -------------------------------------------------------------

    def int_lit(self) -> Lit:
        r = self.rng
        if r.random() < 0.8:
            return Lit(I64, r.choice(_INT_POOL))
        return Lit(I64, r.randint(-60, 60))

    def float_lit(self) -> Lit:
        return Lit(F64, self.rng.choice(_FLOAT_POOL))

    def leaf(self, t, ctx: _Ctx):
        r = self.rng
        vars_of_t = [name for name, vt, _m in ctx.env if vt == t]
        if vars_of_t and r.random() < 0.7:
            return Var(t, r.choice(vars_of_t))
        if t == I64:
            return self.int_lit()
        if t == F64:
            return self.float_lit()
        if t == BOOL:
            return Lit(BOOL, r.random() < 0.5)
        raise AssertionError(f"no leaf of type {t}")

    # -- guards -------------------------------------------------------------

    def _div_rhs(self, depth, ctx):
        """A guaranteed non-zero, non-(-1) divisor: ``(e & 15) + 1``."""
        if self.config.allow_traps and self.rng.random() < 0.5:
            return self.expr(I64, depth, ctx)
        inner = self.expr(I64, depth, ctx)
        return Bin(I64, "+", Bin(I64, "&", inner, Lit(I64, 15)), Lit(I64, 1))

    def _shift_rhs(self, depth, ctx):
        return Bin(I64, "&", self.expr(I64, depth, ctx), Lit(I64, 63))

    # -- expressions --------------------------------------------------------

    def expr(self, t, depth: int, ctx: _Ctx):
        r = self.rng
        if depth <= 0:
            return self.leaf(t, ctx)
        if t == I64:
            return self._int_expr(depth, ctx)
        if t == F64:
            return self._float_expr(depth, ctx)
        if t == BOOL:
            return self._bool_expr(depth, ctx)
        raise AssertionError(f"cannot generate {t}")

    def _call_to(self, fn: FuzzFn, depth: int, ctx: _Ctx):
        args = []
        for index, (_name, pt) in enumerate(fn.params):
            if fn.recursive and index == 0:
                # recursion depth argument: mask to keep the call tree small
                args.append(Bin(I64, "&", self.expr(I64, depth - 1, ctx),
                                Lit(I64, 7)))
            elif isinstance(pt, tuple) and pt[0] == "fn":
                args.append(self._fn_value(pt, ctx))
            else:
                args.append(self.expr(pt, depth - 1, ctx))
        pe = (self.config.pe_calls and not fn.recursive
              and self.rng.random() < 0.15)
        return Call(fn.ret, fn.name, tuple(args), pe=pe)

    def _fn_value(self, pt: tuple, ctx: _Ctx):
        """A lambda literal (or an in-scope fn-typed variable) of type *pt*."""
        r = self.rng
        fn_vars = [name for name, vt, _m in ctx.env if vt == pt]
        if fn_vars and r.random() < 0.4:
            return Var(pt, r.choice(fn_vars))
        param_types = pt[1]
        params = tuple((self.fresh("l"), p) for p in param_types)
        # The lambda body sees its own params plus captured immutable
        # scalars from the enclosing scope (the paper's closure motif).
        # sema forbids capturing loop variables; generated loop vars are
        # exactly the fresh "i<N>"/"w<N>" names, so filter them by prefix
        captured = [(n, vt, False) for n, vt, m in ctx.env
                    if not m and vt in (I64, F64) and ctx.lam_depth == 0
                    and n[0] not in "iw"]
        body_ctx = _Ctx(env=[(n, t_, False) for n, t_ in params] + captured,
                        callables=[], lam_depth=ctx.lam_depth + 1)
        body = self.expr(pt[2], 2, body_ctx)
        return Lam(pt, params, body)

    def _int_expr(self, depth: int, ctx: _Ctx):
        r = self.rng
        if self.config.mem_heavy:
            heavy_bufs = [name for name, vt, _m in ctx.env
                          if vt == ("buf", I64)]
            if heavy_bufs and r.random() < 0.4:
                return Index(I64, r.choice(heavy_bufs),
                             self.expr(I64, depth - 1, ctx))
        roll = r.random()
        callables = [f for f in ctx.callables if f.ret == I64]
        if ctx.rec is not None and ctx.rec_budget > 0 and roll < 0.35:
            ctx.rec_budget -= 1
            name, depth_param, params = ctx.rec
            args = [Bin(I64, "-", Var(I64, depth_param), Lit(I64, 1))]
            for _n, pt in params[1:]:
                args.append(self.expr(pt, depth - 1, ctx))
            return Call(I64, name, tuple(args))
        if callables and roll < 0.25:
            return self._call_to(r.choice(callables), depth, ctx)
        if roll < 0.35:
            return IfE(I64, self._bool_expr(depth - 1, ctx),
                       self.expr(I64, depth - 1, ctx),
                       self.expr(I64, depth - 1, ctx))
        if self.config.casts and roll < 0.40:
            return Cast(I64, self._bool_expr(depth - 1, ctx))
        tuple_vars = [(name, vt) for name, vt, _m in ctx.env
                      if isinstance(vt, tuple) and vt[0] == "tuple"]
        if tuple_vars and roll < 0.48:
            name, vt = r.choice(tuple_vars)
            return Field(I64, name, r.randrange(len(vt[1])))
        buf_vars = [name for name, vt, _m in ctx.env if vt == ("buf", I64)]
        if buf_vars and roll < 0.55:
            return Index(I64, r.choice(buf_vars),
                         self.expr(I64, depth - 1, ctx))
        if roll < 0.62:
            return Un(I64, "-", self.expr(I64, depth - 1, ctx))
        op = r.choice(INT_BINOPS)
        lhs = self.expr(I64, depth - 1, ctx)
        if op in ("/", "%"):
            rhs = self._div_rhs(depth - 1, ctx)
        elif op in ("<<", ">>"):
            rhs = self._shift_rhs(depth - 1, ctx)
        else:
            rhs = self.expr(I64, depth - 1, ctx)
        return Bin(I64, op, lhs, rhs)

    def _float_expr(self, depth: int, ctx: _Ctx):
        r = self.rng
        roll = r.random()
        callables = [f for f in ctx.callables if f.ret == F64]
        if callables and roll < 0.2:
            return self._call_to(r.choice(callables), depth, ctx)
        if roll < 0.3:
            fn = r.choice(("sqrt", "fabs", "floor"))
            return Call(F64, fn, (self.expr(F64, depth - 1, ctx),))
        if self.config.casts and roll < 0.42:
            return Cast(F64, self.expr(I64, depth - 1, ctx))
        if roll < 0.5:
            return IfE(F64, self._bool_expr(depth - 1, ctx),
                       self.expr(F64, depth - 1, ctx),
                       self.expr(F64, depth - 1, ctx))
        op = r.choice(FLOAT_BINOPS)
        return Bin(F64, op, self.expr(F64, depth - 1, ctx),
                   self.expr(F64, depth - 1, ctx))

    def _bool_expr(self, depth: int, ctx: _Ctx):
        r = self.rng
        roll = r.random()
        if depth <= 0:
            return self.leaf(BOOL, ctx)
        if roll < 0.55:
            cmp_t = F64 if (self.config.floats and r.random() < 0.25) else I64
            return Bin(BOOL, r.choice(INT_CMPS),
                       self.expr(cmp_t, depth - 1, ctx),
                       self.expr(cmp_t, depth - 1, ctx))
        if roll < 0.7:
            return Un(BOOL, "!", self._bool_expr(depth - 1, ctx))
        op = r.choice(BOOL_BINOPS)
        return Bin(BOOL, op, self._bool_expr(depth - 1, ctx),
                   self._bool_expr(depth - 1, ctx))

    # -- statements ---------------------------------------------------------

    def stmts(self, ctx: _Ctx, n: int, block_depth: int) -> tuple:
        out = []
        for _ in range(n):
            out.append(self.stmt(ctx, block_depth))
        return tuple(out)

    def stmt(self, ctx: _Ctx, block_depth: int):
        r = self.rng
        cfg = self.config
        roll = r.random()
        mut_scalars = [(name, vt) for name, vt, m in ctx.env
                       if m and vt in (I64, F64)]
        buf_vars = [name for name, vt, _m in ctx.env if vt == ("buf", I64)]
        if cfg.mem_heavy and buf_vars:
            mroll = r.random()
            if mroll < 0.12 and block_depth > 0:
                # A store on *both* arms of a branch to the same buffer
                # and index expression: a Must-aliasing pair across the
                # join, which forwarding must refuse to cross.
                buf = r.choice(buf_vars)
                index = self.expr(I64, 1, ctx)
                cond = self._bool_expr(cfg.max_depth - 1, ctx)
                return IfS(cond,
                           (StoreS(buf, index, self.expr(I64, 2, ctx)),),
                           (StoreS(buf, index, self.expr(I64, 2, ctx)),))
            if mroll < 0.40:
                return StoreS(r.choice(buf_vars),
                              self.expr(I64, 1, ctx),
                              self.expr(I64, cfg.max_depth - 1, ctx))
            if mroll < 0.55:
                name = self.fresh("v")
                init = Index(I64, r.choice(buf_vars), self.expr(I64, 1, ctx))
                ctx.env.append((name, I64, False))
                return LetS(name, I64, False, init)
        if cfg.loops and block_depth > 0 and roll < 0.22:
            if r.random() < 0.5:
                var = self.fresh("i")
                bound = self.expr(I64, 1, ctx)
                body_ctx = replace_env(ctx, ctx.env + [(var, I64, False)])
                body = self.stmts(body_ctx, r.randint(1, 2), block_depth - 1)
                if cfg.mem_heavy and buf_vars:
                    # a load keyed to the induction variable, so every
                    # iteration reads through the loop header's mem param
                    body = body + (LetS(self.fresh("v"), I64, False,
                                        Index(I64, r.choice(buf_vars),
                                              Var(I64, var))),)
                return ForS(var, bound, body)
            ctr = self.fresh("w")
            bound = self.expr(I64, 1, ctx)
            # the counter is readable but never an assignment target:
            # the renderer's own `ctr -= 1` is the only mutation, which
            # is what guarantees termination
            body_ctx = replace_env(ctx, ctx.env + [(ctr, I64, False)])
            body = self.stmts(body_ctx, r.randint(1, 2), block_depth - 1)
            return WhileS(ctr, bound, body)
        if block_depth > 0 and roll < 0.32:
            cond = self._bool_expr(cfg.max_depth - 1, ctx)
            then = self.stmts(replace_env(ctx, list(ctx.env)),
                              r.randint(1, 2), block_depth - 1)
            els = (self.stmts(replace_env(ctx, list(ctx.env)), 1,
                              block_depth - 1)
                   if r.random() < 0.6 else ())
            return IfS(cond, then, els)
        if mut_scalars and roll < 0.5:
            name, vt = r.choice(mut_scalars)
            ops = ("+", "-", "*", None) if vt == F64 \
                else ("+", "-", "*", "&", "|", "^", None)
            return AssignS(name, r.choice(ops),
                           self.expr(vt, cfg.max_depth - 1, ctx))
        if buf_vars and roll < 0.62:
            return StoreS(r.choice(buf_vars),
                          self.expr(I64, 1, ctx),
                          self.expr(I64, cfg.max_depth - 1, ctx))
        if cfg.prints and ctx.in_entry and roll < 0.68:
            return PrintS(self.expr(I64, cfg.max_depth - 1, ctx))
        # default: a let binding, growing the environment
        if cfg.tuples and ctx.in_entry and r.random() < 0.2:
            name = self.fresh("t")
            elems = tuple(self.expr(I64, cfg.max_depth - 1, ctx)
                          for _ in range(r.randint(2, 3)))
            t = ("tuple", tuple(I64 for _ in elems))
            ctx.env.append((name, t, False))
            return LetS(name, t, False, Tup(t, elems))
        name = self.fresh("v")
        vt = F64 if (cfg.floats and r.random() < 0.25) else I64
        if r.random() < 0.25:
            vt_b = BOOL
            init = self._bool_expr(cfg.max_depth - 1, ctx)
            ctx.env.append((name, vt_b, False))
            return LetS(name, vt_b, False, init)
        mut = r.random() < 0.5
        init = self.expr(vt, cfg.max_depth, ctx)
        ctx.env.append((name, vt, mut))
        return LetS(name, vt, mut, init)

    # -- functions ----------------------------------------------------------

    def helper(self, index: int, existing: list) -> FuzzFn:
        r = self.rng
        cfg = self.config
        kind_roll = r.random()
        if cfg.recursion and kind_roll < 0.3:
            return self._recursive_helper(existing)
        if cfg.higher_order and kind_roll < 0.55:
            return self._higher_order_helper(existing)
        return self._simple_helper(existing)

    def _simple_helper(self, existing: list) -> FuzzFn:
        r = self.rng
        cfg = self.config
        name = self.fresh("h")
        n_params = r.randint(1, 3)
        ret = F64 if (cfg.floats and r.random() < 0.2) else I64
        params = []
        for _ in range(n_params):
            pt = F64 if (cfg.floats and r.random() < 0.2) else I64
            params.append((self.fresh("x"), pt))
        params = tuple(params)
        ctx = _Ctx(env=[(n, t, False) for n, t in params],
                   callables=[f for f in existing if not f.recursive])
        stmts = self.stmts(ctx, r.randint(0, 2), 1)
        result = self.expr(ret, cfg.max_depth, ctx)
        return FuzzFn(name, params, ret, stmts, result)

    def _recursive_helper(self, existing: list) -> FuzzFn:
        r = self.rng
        cfg = self.config
        name = self.fresh("rec")
        depth_param = self.fresh("d")
        params = [(depth_param, I64)]
        for _ in range(r.randint(1, 2)):
            params.append((self.fresh("x"), I64))
        params = tuple(params)
        ctx = _Ctx(env=[(n, t, False) for n, t in params],
                   callables=[f for f in existing
                              if not f.recursive and f.ret == I64],
                   rec=(name, depth_param, params), rec_budget=2)
        base = self.expr(I64, 2, _Ctx(env=list(ctx.env), callables=[]))
        rec_expr = self.expr(I64, cfg.max_depth, ctx)
        if ctx.rec_budget == 2:
            # force at least one self-call so recursion is actually covered
            ctx.rec_budget -= 1
            args = [Bin(I64, "-", Var(I64, depth_param), Lit(I64, 1))]
            for _n, pt in params[1:]:
                args.append(Var(pt, params[1][0]))
            rec_expr = Bin(I64, "+", rec_expr, Call(I64, name, tuple(args)))
        result = IfE(I64, Bin(BOOL, "<=", Var(I64, depth_param), Lit(I64, 0)),
                     base, rec_expr)
        return FuzzFn(name, params, I64, (), result, recursive=True)

    def _higher_order_helper(self, existing: list) -> FuzzFn:
        r = self.rng
        cfg = self.config
        name = self.fresh("hof")
        ft = fn_t(tuple(I64 for _ in range(r.randint(1, 2))), I64)
        params = [(self.fresh("f"), ft)]
        for _ in range(r.randint(1, 2)):
            params.append((self.fresh("x"), I64))
        params = tuple(params)
        ctx = _Ctx(env=[(n, t, False) for n, t in params],
                   callables=[f for f in existing if not f.recursive])
        fname = params[0][0]
        stmts = self.stmts(ctx, r.randint(0, 1), 1)
        # the body applies f at least once, possibly inside a loop
        call_args = tuple(self.expr(I64, 2, ctx) for _ in ft[1])
        applied = Call(I64, fname, call_args)
        if cfg.loops and r.random() < 0.5:
            acc = self.fresh("v")
            var = self.fresh("i")
            loop_ctx_env = ctx.env + [(var, I64, False)]
            inner = tuple(self.expr(I64, 1,
                                    replace_env(ctx, loop_ctx_env))
                          for _ in ft[1])
            stmts = stmts + (
                LetS(acc, I64, True, applied),
                ForS(var, self.expr(I64, 1, ctx),
                     (AssignS(acc, "+", Call(I64, fname, inner)),)),
            )
            result = Var(I64, acc)
        else:
            result = Bin(I64, "+", applied, self.expr(I64, 2, ctx))
        return FuzzFn(name, params, I64, stmts, result)

    # -- whole programs -----------------------------------------------------

    def entry(self, helpers: list) -> FuzzFn:
        r = self.rng
        cfg = self.config
        params = (("a", I64), ("b", I64))
        env = [(n, t, False) for n, t in params]
        ctx = _Ctx(env=env, callables=list(helpers), in_entry=True)
        stmts: tuple = ()
        if cfg.mem_heavy:
            bufs = []
            for _ in range(2):
                buf = self.fresh("buf")
                env.append((buf, ("buf", I64), False))
                bufs.append(buf)
            # Two stores through indices the alias analysis cannot
            # separate statically (both derive from the same parameter):
            # a May-aliasing pair is present in every program.
            stmts = tuple(NewBufS(b) for b in bufs) + (
                StoreS(bufs[0], Var(I64, "a"), self.expr(I64, 2, ctx)),
                StoreS(r.choice(bufs), Var(I64, "a"), self.expr(I64, 2, ctx)),
            )
        elif cfg.buffers and r.random() < 0.5:
            buf = self.fresh("buf")
            env.append((buf, ("buf", I64), False))
            stmts = (NewBufS(buf),)
        stmts = stmts + self.stmts(ctx, r.randint(1, cfg.max_stmts),
                                   cfg.max_block_depth)
        result = self.expr(I64, cfg.max_depth, ctx)
        return FuzzFn("fz", params, I64, stmts, result, extern=True)

    def program(self) -> FuzzProgram:
        if self.config.expr_only:
            return self._expr_only_program()
        r = self.rng
        cfg = self.config
        # Deterministic rejection sampling on the cost bound: the rng
        # stream just advances, so the same seed still yields the same
        # final program.
        for _attempt in range(6):
            helpers: list[FuzzFn] = []
            for index in range(r.randint(0, cfg.max_helpers)):
                helpers.append(self.helper(index, helpers))
            entry = self.entry(helpers)
            prog = FuzzProgram(tuple(helpers) + (entry,), "fz",
                               self._arg_sets(), seed=self.seed)
            if program_cost(prog) <= cfg.cost_budget:
                return prog
        # Fallback: a trivially cheap program (still a valid test case).
        entry = FuzzFn("fz", (("a", I64), ("b", I64)), I64, (),
                       Bin(I64, "+", Var(I64, "a"), Var(I64, "b")),
                       extern=True)
        return FuzzProgram((entry,), "fz", self._arg_sets(), seed=self.seed)

    def _arg_sets(self) -> tuple:
        r = self.rng
        sets = []
        for _ in range(self.config.n_arg_sets):
            sets.append((r.randint(-9, 13), r.randint(-9, 13)))
        return tuple(sets)

    # -- expr_only mode (nested-CPS compatible) -----------------------------

    def _pure_expr(self, depth: int, env: list, callables: list):
        r = self.rng
        if depth <= 0:
            if env and r.random() < 0.6:
                return Var(I64, r.choice(env))
            return Lit(I64, r.randint(-20, 20))
        roll = r.random()
        if callables and roll < 0.25:
            fn = r.choice(callables)
            args = tuple(self._pure_expr(depth - 1, env, callables)
                         for _ in fn.params)
            return Call(I64, fn.name, args)
        if roll < 0.45:
            cond = Bin(BOOL, r.choice(INT_CMPS),
                       self._pure_expr(depth - 1, env, callables),
                       self._pure_expr(depth - 1, env, callables))
            return IfE(I64, cond,
                       self._pure_expr(depth - 1, env, callables),
                       self._pure_expr(depth - 1, env, callables))
        op = r.choice(("+", "-", "*", "/", "%"))
        lhs = self._pure_expr(depth - 1, env, callables)
        if op in ("/", "%"):
            rhs = Lit(I64, r.randint(1, 16))
        else:
            rhs = self._pure_expr(depth - 1, env, callables)
        return Bin(I64, op, lhs, rhs)

    def _expr_only_program(self) -> FuzzProgram:
        r = self.rng
        cfg = self.config
        helpers: list[FuzzFn] = []
        for _ in range(r.randint(0, 2)):
            name = self.fresh("g")
            params = tuple((self.fresh("p"), I64)
                           for _ in range(r.randint(1, 2)))
            body = self._pure_expr(cfg.max_depth, [n for n, _ in params],
                                   list(helpers))
            helpers.append(FuzzFn(name, params, I64, (), body))
        params = (("a", I64), ("b", I64))
        result = self._pure_expr(cfg.max_depth, [n for n, _ in params],
                                 helpers)
        entry = FuzzFn("fz", params, I64, (), result, extern=True)
        return FuzzProgram(tuple(helpers) + (entry,), "fz",
                           self._arg_sets(), expr_only=True, seed=self.seed)


def replace_env(ctx: _Ctx, env: list) -> _Ctx:
    return _Ctx(env=env, callables=ctx.callables, rec=ctx.rec,
                rec_budget=ctx.rec_budget, in_entry=ctx.in_entry,
                lam_depth=ctx.lam_depth)


def generate_program(seed, config: GenConfig | None = None) -> FuzzProgram:
    """The one-call entry point: a deterministic program for *seed*."""
    return Gen(seed, config).program()

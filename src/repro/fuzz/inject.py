"""Deliberate faults, for exercising the shrinker and the fault-tolerant
optimization pipeline.

Two kinds of damage live here:

* ``drop_one_argument`` — a *semantic* miscompile that every verifier
  accepts; only a differential oracle can catch it (the shrinker test's
  workload).
* ``FaultInjector`` — an operational fault harness.  Built as a
  ``OptimizeOptions.pass_hook`` callable, it fires once, on the Nth
  invocation of a chosen pass, one of four failure modes the pipeline's
  checkpoint/quarantine machinery must absorb:

  - ``raise``   — the pass body crashes (:class:`InjectedFault`);
  - ``corrupt`` — the IR is structurally damaged in a way
    ``verify(full)`` catches (an argument is chopped off a jump);
  - ``stall``   — the pass sleeps past its wall-clock deadline;
  - ``growth``  — the world balloons past the pipeline's growth cap.

  A fifth mode, ``kill``, hard-kills the *process* (``SIGKILL`` to
  self) — nothing in-process can absorb that, so it is deliberately
  excluded from :data:`FAULT_MODES` (the fault campaign iterates that
  tuple) and exists for the compile service's crash-isolated worker
  pool, where the parent must survive a worker dying mid-compile.

``drop_one_argument`` is a mangler misuse: it picks a call site
``caller → callee(args)`` of an ordinary bodied continuation, mangles
the callee with one ``i64`` parameter *specialized to literal 0* (as if
the pass had proven the argument constant), and redirects the call site
to the specialized copy **without the dropped argument**.  The result
is perfectly well-formed IR — it passes the structural, use-list and
scope verifiers, and stays in control-flow form — but is semantically
wrong whenever the dropped argument was not actually 0 at run time.

That combination (type-correct, verifier-clean, output-divergent) is
exactly what only a *differential* oracle can catch, which is what the
shrinker test uses it for.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from ..core import types as ct
from ..core.defs import Continuation
from ..core.primops import Literal
from ..core.scope import Scope
from ..core.world import World
from ..transform.mangle import drop

# In-process faults the pipeline's isolation machinery must absorb.
# The fault campaign iterates exactly these.
FAULT_MODES = ("raise", "corrupt", "stall", "growth")
# ``kill`` is process-fatal by design (see module docstring); valid for
# a FaultPlan, never part of the in-process campaign.
_PROCESS_MODES = FAULT_MODES + ("kill",)


class InjectedFault(RuntimeError):
    """Raised by :class:`FaultInjector` in ``raise`` mode."""


@dataclass
class FaultPlan:
    """Where and how a :class:`FaultInjector` strikes.

    ``target`` names a pass by its quarantine key (``"inline"`` matches
    both the ``inline`` phase and its per-round repeats; ``None``
    matches every pass).  ``nth`` delays the strike to the Nth matching
    invocation, so later rounds of an already-exercised pass can be hit.
    """

    mode: str
    target: str | None = None
    nth: int = 1
    stall_seconds: float = 2.0
    blowup: int = 8192

    def __post_init__(self):
        if self.mode not in _PROCESS_MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; "
                             f"expected one of {_PROCESS_MODES}")


class FaultInjector:
    """``pass_hook`` callable injecting one fault per pipeline run.

    The pipeline calls the hook as ``hook(phase, world)`` after each
    pass body, inside that pass's fault-isolation envelope — so damage
    done here is attributed to (and rolled back with) the pass itself.
    ``fired`` records whether the fault actually triggered, and
    ``struck`` the phase label it hit.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.fired = False
        self.struck: str | None = None
        self._matches = 0

    def __call__(self, phase: str, world: World) -> None:
        if self.fired:
            return
        key = phase.split("(", 1)[0]
        if self.plan.target is not None and key != self.plan.target:
            return
        self._matches += 1
        if self._matches < self.plan.nth:
            return
        self.fired = True
        self.struck = phase
        mode = self.plan.mode
        if mode == "raise":
            raise InjectedFault(f"injected crash in {phase}")
        if mode == "corrupt":
            corrupt_world(world)
        elif mode == "stall":
            time.sleep(self.plan.stall_seconds)
        elif mode == "growth":
            blow_up_world(world, self.plan.blowup)
        elif mode == "kill":
            # Process-fatal: simulate a segfaulting pass.  Only a
            # crash-isolated worker pool survives this one.
            os.kill(os.getpid(), signal.SIGKILL)


def corrupt_world(world: World) -> str | None:
    """Structurally damage *world* so ``verify(full)`` rejects it.

    Chops the last argument off the first bodied continuation that
    jumps with at least one argument, leaving a jump whose arity no
    longer matches its callee — the opposite of ``drop_one_argument``,
    which is careful to stay verifier-clean.  Returns a description;
    when no continuation carries an argument to chop it raises
    :class:`InjectedFault` instead, so the injection still registers as
    a fault the pipeline must absorb.
    """
    for cont in world.continuations():
        if cont.has_body() and len(cont.ops) >= 2:
            cont._set_ops(cont.ops[:-1])
            return f"chopped last argument of jump in {cont.unique_name()}"
    raise InjectedFault("corrupt: no jump with arguments to damage")


def blow_up_world(world: World, count: int) -> int:
    """Register *count* empty continuations, tripping the growth cap."""
    for index in range(count):
        world.continuation(ct.fn_type(()), f"blowup_{index}")
    return count


def drop_one_argument(world: World, *, target: str | None = None) -> str | None:
    """Break one call site; returns a description or ``None`` if no site.

    ``target`` restricts the damage to call sites whose callee has that
    name.  The first eligible site in deterministic world order is hit:
    the callee must be a bodied, non-intrinsic, non-external
    continuation and the argument must be an ``i64`` that is not
    already literally 0 (so the rewrite is guaranteed to be a change).
    """
    for caller in world.continuations():
        if not caller.has_body():
            continue
        callee = caller.callee
        if not isinstance(callee, Continuation):
            continue
        if (not callee.has_body() or callee.is_intrinsic()
                or callee.is_external):
            continue
        if target is not None and callee.name != target:
            continue
        for index, param in enumerate(callee.params):
            if param.type != ct.I64:
                continue
            arg = caller.arg(index)
            if isinstance(arg, Literal) and arg.value == 0:
                continue
            specialized = drop(Scope(callee),
                               {param: world.literal(ct.I64, 0)})
            new_args = caller.args[:index] + caller.args[index + 1:]
            caller.jump(specialized, new_args)
            return (f"dropped argument {index} of "
                    f"{callee.unique_name()} at call site "
                    f"{caller.unique_name()}")
    return None

"""A deliberately wrong transformation, for exercising the shrinker.

``drop_one_argument`` is a mangler misuse: it picks a call site
``caller → callee(args)`` of an ordinary bodied continuation, mangles
the callee with one ``i64`` parameter *specialized to literal 0* (as if
the pass had proven the argument constant), and redirects the call site
to the specialized copy **without the dropped argument**.  The result
is perfectly well-formed IR — it passes the structural, use-list and
scope verifiers, and stays in control-flow form — but is semantically
wrong whenever the dropped argument was not actually 0 at run time.

That combination (type-correct, verifier-clean, output-divergent) is
exactly what only a *differential* oracle can catch, which is what the
shrinker test uses it for.
"""

from __future__ import annotations

from ..core import types as ct
from ..core.defs import Continuation
from ..core.primops import Literal
from ..core.scope import Scope
from ..core.world import World
from ..transform.mangle import drop


def drop_one_argument(world: World, *, target: str | None = None) -> str | None:
    """Break one call site; returns a description or ``None`` if no site.

    ``target`` restricts the damage to call sites whose callee has that
    name.  The first eligible site in deterministic world order is hit:
    the callee must be a bodied, non-intrinsic, non-external
    continuation and the argument must be an ``i64`` that is not
    already literally 0 (so the rewrite is guaranteed to be a change).
    """
    for caller in world.continuations():
        if not caller.has_body():
            continue
        callee = caller.callee
        if not isinstance(callee, Continuation):
            continue
        if (not callee.has_body() or callee.is_intrinsic()
                or callee.is_external):
            continue
        if target is not None and callee.name != target:
            continue
        for index, param in enumerate(callee.params):
            if param.type != ct.I64:
                continue
            arg = caller.arg(index)
            if isinstance(arg, Literal) and arg.value == 0:
                continue
            specialized = drop(Scope(callee),
                               {param: world.literal(ct.I64, 0)})
            new_args = caller.args[:index] + caller.args[index + 1:]
            caller.jump(specialized, new_args)
            return (f"dropped argument {index} of "
                    f"{callee.unique_name()} at call site "
                    f"{caller.unique_name()}")
    return None

"""AST-level minimizing shrinker for failing fuzz programs.

The shrinker never touches source text: it reduces the structural AST
of :mod:`repro.fuzz.gen` with a greedy fixed-point loop over single-edit
reductions, re-checking after each edit that the *failure signature*
still reproduces.  Every reduction is smaller by construction, so the
loop terminates; reductions that break the program (e.g. removing a
``let`` whose name is still used) simply fail the predicate — usually
as a ``compile(none)`` oracle stage that differs from the original
signature — and are discarded.

Reduction classes, tried in decreasing order of expected payoff:

1. drop all but one argument set;
2. remove a whole helper function;
3. remove a statement (at any nesting depth);
4. hoist a block's body over its ``for``/``while``/``if`` header;
5. replace an expression with a same-typed operand of itself;
6. replace an expression with a trivial literal.

``shrink_failure`` wires the predicate to the differential oracle;
``write_repro`` persists the minimized program (plus its provenance as
``//`` comments) under ``tests/corpus/``.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from .gen import (
    BOOL,
    F64,
    I64,
    Bin,
    Call,
    Cast,
    ForS,
    FuzzProgram,
    IfE,
    IfS,
    Index,
    Lam,
    Lit,
    Tup,
    Un,
    WhileS,
    _expr_children,
)
from .oracle import FuzzFailure, OracleConfig, run_oracle

DEFAULT_MAX_ATTEMPTS = 4000


def _type_of(e):
    return e.t


def _trivial(t):
    """The smallest closed expression of type *t* (``None`` if none)."""
    if t == I64:
        return Lit(I64, 0)
    if t == F64:
        return Lit(F64, 0.0)
    if t == BOOL:
        return Lit(BOOL, False)
    if isinstance(t, tuple) and t and t[0] == "tuple":
        elems = tuple(_trivial(et) for et in t[1])
        if any(e is None for e in elems):
            return None
        return Tup(t, elems)
    return None  # fn types and buffers have no closed literal


def _expr_variants(e):
    """Strictly smaller same-typed replacements for *e*, biggest first."""
    for child in _expr_children(e):
        if _type_of(child) == _type_of(e):
            yield child
    trivial = _trivial(_type_of(e))
    if trivial is not None and trivial != e:
        yield trivial
    # one-child-reduced rebuilds
    if isinstance(e, Bin):
        for v in _expr_variants(e.lhs):
            yield replace(e, lhs=v)
        for v in _expr_variants(e.rhs):
            yield replace(e, rhs=v)
    elif isinstance(e, (Un, Cast)):
        for v in _expr_variants(e.operand):
            yield replace(e, operand=v)
    elif isinstance(e, IfE):
        for v in _expr_variants(e.cond):
            yield replace(e, cond=v)
        for v in _expr_variants(e.then):
            yield replace(e, then=v)
        for v in _expr_variants(e.els):
            yield replace(e, els=v)
    elif isinstance(e, Call):
        for index, arg in enumerate(e.args):
            for v in _expr_variants(arg):
                yield replace(e, args=e.args[:index] + (v,)
                              + e.args[index + 1:])
    elif isinstance(e, Lam):
        for v in _expr_variants(e.body):
            yield replace(e, body=v)
    elif isinstance(e, Tup):
        for index, elem in enumerate(e.elems):
            for v in _expr_variants(elem):
                yield replace(e, elems=e.elems[:index] + (v,)
                              + e.elems[index + 1:])
    elif isinstance(e, Index):
        for v in _expr_variants(e.index):
            yield replace(e, index=v)


def _stmt_expr_variants(stmt):
    """*stmt* with exactly one of its expression slots reduced."""
    from .gen import AssignS, LetS, PrintS, StoreS

    if isinstance(stmt, LetS):
        for v in _expr_variants(stmt.init):
            yield replace(stmt, init=v)
    elif isinstance(stmt, AssignS):
        for v in _expr_variants(stmt.value):
            yield replace(stmt, value=v)
    elif isinstance(stmt, StoreS):
        for v in _expr_variants(stmt.index):
            yield replace(stmt, index=v)
        for v in _expr_variants(stmt.value):
            yield replace(stmt, value=v)
    elif isinstance(stmt, (ForS, WhileS)):
        for v in _expr_variants(stmt.bound):
            yield replace(stmt, bound=v)
    elif isinstance(stmt, IfS):
        for v in _expr_variants(stmt.cond):
            yield replace(stmt, cond=v)
    elif isinstance(stmt, PrintS):
        for v in _expr_variants(stmt.value):
            yield replace(stmt, value=v)


def _stmt_list_variants(stmts: tuple):
    """Strictly smaller variants of a statement list (any nesting depth)."""
    for index, stmt in enumerate(stmts):
        before, after = stmts[:index], stmts[index + 1:]
        yield before + after  # drop the statement outright
        if isinstance(stmt, (ForS, WhileS)):
            yield before + stmt.body + after  # hoist over the loop header
            for body in _stmt_list_variants(stmt.body):
                yield before + (replace(stmt, body=body),) + after
        elif isinstance(stmt, IfS):
            yield before + stmt.then + after
            yield before + stmt.els + after
            for then in _stmt_list_variants(stmt.then):
                yield before + (replace(stmt, then=then),) + after
            for els in _stmt_list_variants(stmt.els):
                yield before + (replace(stmt, els=els),) + after
        for reduced in _stmt_expr_variants(stmt):
            yield before + (reduced,) + after


def _with_fn(prog: FuzzProgram, index: int, fn) -> FuzzProgram:
    return replace(prog, fns=prog.fns[:index] + (fn,)
                   + prog.fns[index + 1:])


def _variants(prog: FuzzProgram):
    """All single-edit reductions of *prog*, best-payoff classes first."""
    if len(prog.arg_sets) > 1:
        yield replace(prog, arg_sets=prog.arg_sets[:1])
    for fn in prog.fns:
        if fn.name != prog.entry:
            yield replace(prog, fns=tuple(f for f in prog.fns
                                          if f is not fn))
    for index, fn in enumerate(prog.fns):
        for stmts in _stmt_list_variants(fn.stmts):
            yield _with_fn(prog, index, replace(fn, stmts=stmts))
        for result in _expr_variants(fn.result):
            yield _with_fn(prog, index, replace(fn, result=result))


def shrink(prog: FuzzProgram, predicate, *,
           max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> FuzzProgram:
    """Greedily minimize *prog* while ``predicate(candidate)`` holds.

    *predicate* returns True when the candidate still exhibits the
    original failure; an exception from the predicate counts as False.
    The input program itself is assumed to satisfy the predicate.
    """
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _variants(prog):
            attempts += 1
            if attempts > max_attempts:
                break
            try:
                still_failing = bool(predicate(candidate))
            except Exception:
                still_failing = False
            if still_failing:
                prog = candidate
                improved = True
                break
    return prog


def shrink_failure(prog: FuzzProgram, failure: FuzzFailure,
                   config: OracleConfig | None = None, *,
                   max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> FuzzProgram:
    """Minimize *prog* preserving *failure*'s oracle signature."""
    base = config if config is not None else OracleConfig()

    def predicate(candidate: FuzzProgram) -> bool:
        cfg = replace(base, record={})
        observed = run_oracle(candidate, cfg)
        return (observed is not None
                and observed.signature == failure.signature)

    return shrink(prog, predicate, max_attempts=max_attempts)


def write_repro(prog: FuzzProgram, failure: FuzzFailure,
                directory: str | Path = "tests/corpus") -> Path:
    """Write the minimized program (with provenance) to *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stage = "".join(c if c.isalnum() else "-" for c in failure.stage)
    seed = "unknown" if prog.seed is None else prog.seed
    path = directory / f"repro-{stage}-seed{seed}.impala"
    header = [
        f"// fuzz repro: stage {failure.stage} ({failure.message})",
        f"// seed {seed}; entry {prog.entry}; args {list(prog.arg_sets)}",
    ]
    path.write_text("\n".join(header) + "\n" + prog.render() + "\n")
    return path

"""Wire format for the compile service: newline-delimited JSON.

One request or reply per line, UTF-8, ``\\n`` terminated.  Chosen over
a binary framing because every peer the repo cares about (tests, CI,
the bench driver, `nc` at a terminal) can speak it with no library.

Requests
--------

``{"op": "compile", "source": ..., "opt": "none"|"static"|"pgo", ...}``
    Compile ``source`` and return artifacts.  Optional fields:
    ``entry`` + ``train_args`` (PGO training workload), ``profile`` (a
    precollected profile JSON, skips training), ``options`` (overrides
    for :class:`~repro.transform.pipeline.OptimizeOptions` fields),
    ``fault`` (test-only fault injection: ``{"mode", "target", "nth"}``),
    ``id`` (opaque, echoed in the reply).

``{"op": "run", "source": ..., "entry": ..., "args": [[...], ...]}``
    *Execute* ``source``'s ``entry`` on each argument list and return
    the observations.  The server picks the execution tier (graph
    interpreter, bytecode VM, or — once the tiering manager marks the
    program hot and a background native compile lands — machine code
    from a cached ``.so``); the reply carries ``tier`` and
    ``native_state`` so clients can watch promotion happen.  Optional:
    ``options`` (pipeline overrides, as for compile), ``id``.

``{"op": "batch", "requests": [{...}, ...]}``
    One line carrying many sub-requests (``compile``/``run``/``ping``/
    ``stats``; batches do not nest).  Sub-replies are *streamed back as
    they complete*, each tagged with the sub-request's ``id`` (its index
    in ``requests`` when absent) plus the batch's own ``id`` under
    ``batch``; a final summary line ``{"ok": true, "batch_complete":
    true, "replies": N, "failed": M}`` closes the batch.  Sub-requests
    execute concurrently — a batch is the protocol's pipelining
    primitive, and the fleet router fans its sub-requests out across
    shards by cache-key affinity.

``{"op": "stats"}``
    Introspection: counters, latency histograms, cache rates,
    aggregated per-phase pipeline timings, per-tier execution counters
    (``tiering``).  Fleet routers aggregate: per-shard stats plus
    router counters and fleet-wide sums.

``{"op": "ping"}``
    Liveness probe; replies ``{"ok": true, "pong": true, "version":
    ..., "pid": ..., "shard": ...}`` so routers and operators can tell
    shards apart.

Replies
-------

Success: ``{"ok": true, "id": ..., ...}`` — compile replies add
``key`` (the content address), ``cached`` (``"memory"``, ``"disk"`` or
``false``), ``coalesced`` and ``artifacts``.  Run replies add ``key``,
``tier`` (``"interp"``/``"vm"``/``"native"``), ``native_state`` and
``results`` (one ``{"value", "trap", "output"}`` per argument list).

Failure: ``{"ok": false, "error": {"code": ..., "message": ...}}`` with
``code`` one of :data:`ERROR_CODES`; ``worker-crash`` errors add
``crash_bundle`` (the report directory written by
:func:`repro.transform.crashreport.write_worker_crash_report`).
"""

from __future__ import annotations

import json

# Hard ceiling on one request/reply line.  Artifacts for the suite
# programs are tens of KiB; 8 MiB leaves room without letting a rogue
# client buffer the server into the ground.
MAX_LINE_BYTES = 8 * 1024 * 1024

# Sub-requests one batch line may carry.  Big enough that one
# connection can ship a corpus, small enough that a single line cannot
# fan out into unbounded concurrent work.
MAX_BATCH_REQUESTS = 1024

OPT_LEVELS = ("none", "static", "pgo")

ERROR_CODES = (
    "malformed-json",   # the line was not a JSON object
    "oversized",        # the line exceeded MAX_LINE_BYTES
    "bad-request",      # JSON fine, contents invalid (op, opt, fields)
    "compile-error",    # the compiler rejected the program (worker fine)
    "worker-crash",     # the worker process died or hung; bundle written
    "overloaded",       # admission control shed the request
    "unavailable",      # fleet router: no live shard could take this
    "shutting-down",    # server received SIGTERM mid-request
)


class ProtocolError(Exception):
    """A request that could not be accepted; maps onto an error reply."""

    def __init__(self, code: str, message: str):
        assert code in ERROR_CODES, code
        self.code = code
        super().__init__(message)

    def as_reply(self, request_id=None) -> dict:
        return error_reply(self.code, str(self), request_id=request_id)


def encode_message(message: dict) -> bytes:
    """One reply/request as a wire line (compact JSON + newline)."""
    return (json.dumps(message, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one wire line; raises :class:`ProtocolError` on bad input."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "oversized",
            f"request line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte limit")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("malformed-json",
                            f"request is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("malformed-json",
                            "request must be a JSON object")
    return message


def error_reply(code: str, message: str, *, request_id=None,
                **extra) -> dict:
    assert code in ERROR_CODES, code
    reply = {"ok": False, "error": {"code": code, "message": message,
                                    **extra}}
    if request_id is not None:
        reply["id"] = request_id
    return reply


def validate_compile_request(request: dict) -> dict:
    """Check a compile request's shape; returns the normalized request.

    Raises :class:`ProtocolError("bad-request")` with a message naming
    the offending field — the client sees exactly what to fix.
    """
    source = request.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError("bad-request",
                            "'source' must be a non-empty string")
    opt = request.get("opt", "static")
    if opt not in OPT_LEVELS:
        raise ProtocolError(
            "bad-request", f"'opt' must be one of {OPT_LEVELS}, got {opt!r}")
    options = request.get("options", {})
    if not isinstance(options, dict):
        raise ProtocolError("bad-request", "'options' must be an object")
    normalized = {"op": "compile", "source": source, "opt": opt,
                  "options": options}
    if opt == "pgo":
        profile = request.get("profile")
        if profile is not None:
            if not isinstance(profile, dict):
                raise ProtocolError("bad-request",
                                    "'profile' must be an object")
            normalized["profile"] = profile
        else:
            entry = request.get("entry")
            train_args = request.get("train_args")
            if not isinstance(entry, str):
                raise ProtocolError(
                    "bad-request",
                    "pgo requests need 'entry' (and 'train_args') or a "
                    "precollected 'profile'")
            if not (isinstance(train_args, list)
                    and all(isinstance(a, list) for a in train_args)):
                raise ProtocolError(
                    "bad-request",
                    "'train_args' must be a list of argument lists")
            normalized["entry"] = entry
            normalized["train_args"] = train_args
    fault = request.get("fault")
    if fault is not None:
        if not (isinstance(fault, dict) and isinstance(fault.get("mode"),
                                                       str)):
            raise ProtocolError("bad-request",
                                "'fault' must be an object with a 'mode'")
        normalized["fault"] = fault
    return normalized


def validate_batch_request(request: dict) -> list[dict]:
    """Check a batch envelope; returns its sub-requests, ids assigned.

    Each sub-request must be a JSON object and must not itself be a
    batch.  Sub-requests without an ``id`` get their index, so every
    streamed sub-reply is attributable.  Deeper validation (source,
    opt, options) happens when each sub-request is dispatched — a bad
    sub-request yields a structured error *reply* for its id, never a
    failed batch.
    """
    subs = request.get("requests")
    if not (isinstance(subs, list) and subs):
        raise ProtocolError("bad-request",
                            "'requests' must be a non-empty list")
    if len(subs) > MAX_BATCH_REQUESTS:
        raise ProtocolError(
            "bad-request",
            f"batch of {len(subs)} exceeds {MAX_BATCH_REQUESTS} "
            f"sub-requests")
    out = []
    for index, sub in enumerate(subs):
        if not isinstance(sub, dict):
            raise ProtocolError(
                "bad-request",
                f"batch sub-request {index} is not an object")
        if sub.get("op") == "batch":
            raise ProtocolError("bad-request", "batches do not nest")
        sub = dict(sub)
        sub.setdefault("id", index)
        out.append(sub)
    return out


def validate_run_request(request: dict) -> dict:
    """Check a run request's shape; returns the normalized request."""
    source = request.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError("bad-request",
                            "'source' must be a non-empty string")
    entry = request.get("entry", "main")
    if not isinstance(entry, str) or not entry:
        raise ProtocolError("bad-request", "'entry' must be a string")
    args = request.get("args")
    if not (isinstance(args, list) and args
            and all(isinstance(a, list) for a in args)):
        raise ProtocolError(
            "bad-request",
            "'args' must be a non-empty list of argument lists")
    for arg_set in args:
        for value in arg_set:
            if not isinstance(value, (bool, int, float)):
                raise ProtocolError(
                    "bad-request",
                    f"arguments must be numbers or booleans, "
                    f"got {type(value).__name__}")
    options = request.get("options", {})
    if not isinstance(options, dict):
        raise ProtocolError("bad-request", "'options' must be an object")
    return {"op": "run", "source": source, "entry": entry, "args": args,
            "options": options}

"""The asyncio compile server.

One connection = one NDJSON request/reply stream, *pipelined*: every
incoming line is dispatched concurrently (replies may interleave in
completion order, serialized by a per-connection write lock), and a
``batch`` op carries many sub-requests on one line with sub-replies
streamed back as they finish plus a trailing summary.  The event loop
only parses, routes and replies; every compile runs in a forked worker
(:class:`repro.core.pool.WorkerPool`) reached through a small thread
executor, so the loop stays responsive while compiles grind and stays
*alive* when a compile takes its whole process down.

Request flow, in order:

1. **cache** — a content-address hit (memory or disk) replies
   immediately; no worker, no queue.
2. **single-flight** — an identical request already compiling joins its
   in-flight future instead of compiling twice; joiners are marked
   ``coalesced`` in the reply.
3. **admission** — at most ``max_pending`` compiles may be queued or
   running; beyond that the server sheds load with an ``overloaded``
   reply instead of buffering unboundedly.
4. **execute** — the job runs in a pool worker under the per-request
   deadline.  A worker death (segfault, injected ``kill``, deadline
   overrun) becomes a structured ``worker-crash`` reply carrying the
   crash-bundle path, the seat respawns, and the server keeps serving.

Fault-injected requests bypass the cache in both directions: their
artifacts are not representative and must never be served to (or
poisoned by) clean requests.

``run`` requests take the tiered execution path instead: the
:class:`~repro.native.tiering.TieringManager` picks interp/VM/native
per program, and when a program turns hot the server launches one
background ``native-compile`` job through the same crash-isolated
pool.  VM-tier runs execute instrumented and their profiles accumulate
per key, so that promotion job is profile-guided: the native world is
specialized around the paths this key's own requests actually took.  Native failures of any kind — compiler error, build timeout,
worker crash while executing the ``.so`` — quarantine the program back
to the VM (a crashed native *run* is retried on the VM immediately, so
the client still gets an answer).  ``.so`` objects are
content-addressed in ``<cache_dir>/native`` beside the artifact store,
so a restarted daemon re-promotes from a warm object cache.

SIGTERM/SIGINT drain cleanly: the listener closes, queued requests get
``shutting-down`` replies, the pool is torn down, ``run()`` returns.

In fleet mode (:mod:`repro.serve.fleet`) each shard is one of these
servers: ``shard_name`` tags ``ping``/``stats`` replies, ``port_file``
publishes the bound port for ``--port 0``, and ``cache_max_bytes``
bounds the shared object store with an mtime-LRU sweep.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import signal
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from .. import __version__
from ..core.pool import JobError, WorkerCrash, WorkerPool
from ..native import (TierDecision, TieringManager, TieringPolicy,
                      native_available)
from .cache import ArtifactCache, cache_key, run_cache_key
from .metrics import Metrics
from .protocol import (MAX_LINE_BYTES, ProtocolError, decode_line,
                       encode_message, error_reply,
                       validate_batch_request, validate_compile_request,
                       validate_run_request)
from .worker import CompileHandler


@dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    port: int = 7767
    workers: int = 2
    cache_dir: str | None = "serve_cache"
    crash_dir: str = "crash_reports"
    # Identity in a fleet: echoed by ping/stats so routers and
    # operators can tell shards apart.  None = standalone daemon.
    shard_name: str | None = None
    # When set, the bound port is written here after the listener is
    # up (atomic write).  This is how the fleet manager discovers the
    # port of a shard started with port=0.
    port_file: str | None = None
    # Disk object-store budget; exceeding it triggers an mtime-LRU GC
    # sweep (see cache.ArtifactCache.gc).  None = unbounded.
    cache_max_bytes: int | None = None
    # Admission control: queued-or-running compiles beyond this are shed.
    max_pending: int = 32
    # Per-request wall-clock budget inside the worker; overruns kill
    # and respawn the seat (the request gets a worker-crash reply).
    request_timeout: float = 120.0
    memory_cache_entries: int = 128
    # -- the native tier (run requests) --------------------------------
    # Master switch; native also turns itself off when no C compiler is
    # on PATH (requests then tier interp -> vm and stop there).
    native: bool = True
    # Where .so objects live; default <cache_dir>/native (or a temp
    # directory when the cache is disabled).
    native_dir: str | None = None
    # Tiering policy: requests served by the interpreter before the VM
    # takes over, and the request/step thresholds that mark a program
    # hot enough for a background native compile.
    tier_interp_runs: int = 2
    tier_hot_requests: int = 4
    tier_hot_steps: int = 100_000
    # Budget for one background native compile (pool deadline); the cc
    # subprocess inside gets a slightly tighter timeout so a wedged
    # compiler surfaces as a structured error, not a worker kill.
    native_compile_timeout: float = 120.0
    # Per-call block-entry budget for native runs; honest programs sit
    # far below it, and real hangs are killed by request_timeout anyway.
    native_fuel: int = 1 << 40


class CompileServer:
    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self.metrics = Metrics()
        self.cache = ArtifactCache(self.config.cache_dir,
                                   self.config.memory_cache_entries,
                                   max_bytes=self.config.cache_max_bytes)
        self.pool: WorkerPool | None = None
        self._server: asyncio.base_events.Server | None = None
        self._executor: concurrent.futures.ThreadPoolExecutor | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._connections: set[asyncio.StreamWriter] = set()
        self._pending = 0
        self._stopping = asyncio.Event()
        self.started = time.time()
        self.tiering = TieringManager(TieringPolicy(
            enabled=self.config.native and native_available(),
            interp_runs=self.config.tier_interp_runs,
            hot_requests=self.config.tier_hot_requests,
            hot_steps=self.config.tier_hot_steps))
        if self.config.native_dir is not None:
            self.native_dir = self.config.native_dir
        elif self.config.cache_dir is not None:
            self.native_dir = str(Path(self.config.cache_dir) / "native")
        else:
            self.native_dir = tempfile.mkdtemp(prefix="repro-native-")
        self._promotions: dict[str, asyncio.Task] = {}

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self.pool = WorkerPool(CompileHandler(self.config.crash_dir),
                               size=self.config.workers)
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.workers + 2,
            thread_name_prefix="serve-pool")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=MAX_LINE_BYTES + 2)
        if self.config.port_file:
            # Atomic: the fleet manager polls for this file and must
            # never read a half-written port number.
            target = Path(self.config.port_file)
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp = target.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(str(self.port))
            os.replace(tmp, target)

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests)."""
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        self._stopping.set()
        for task in list(self._promotions.values()):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for future in list(self._inflight.values()):
            if not future.done():
                future.set_result(error_reply(
                    "shutting-down", "server is shutting down"))
        self._inflight.clear()
        # Close accepted connections too: a process exit would close
        # these sockets anyway, but an in-process stop (tests, embedded
        # shards) must not leave peers blocked on a dead stream.
        for writer in list(self._connections):
            writer.close()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self.pool is not None:
            self.pool.close()

    async def run(self) -> None:
        """Start, install signal handlers, serve until SIGTERM/SIGINT."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self._stopping.set)
        try:
            await self._stopping.wait()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(signum)
            await self.stop()

    # -- connections --------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        # One connection may have many requests in flight: every line
        # becomes a task, replies are written (lock-serialized) as they
        # complete.  That is what makes a pooled router->shard
        # connection a pipeline instead of a turn-taking RPC channel —
        # a cold compile no longer blocks the cache hits queued behind
        # it.  Plain one-at-a-time clients see the old behavior.
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        self._connections.add(writer)
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line outgrew the stream limit; the framing is
                    # lost, so reply and drop the connection.
                    async with write_lock:
                        await self._send(writer, error_reply(
                            "oversized",
                            f"request line exceeds {MAX_LINE_BYTES} bytes"))
                    break
                if not line or not line.endswith(b"\n"):
                    break  # EOF (possibly mid-request): just drop it.
                if line.strip() == b"":
                    continue
                task = asyncio.create_task(
                    self._serve_line(line, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                # Drain in-flight replies before closing the stream; a
                # disconnect mid-compile still runs the job to
                # completion (the artifact lands in the cache) but the
                # write fails silently below.
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer vanished mid-reply; nothing to salvage
        except asyncio.CancelledError:
            pass  # server shutdown with this connection still open
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_line(self, line: bytes, writer: asyncio.StreamWriter,
                          write_lock: asyncio.Lock) -> None:
        try:
            message = decode_line(line)
        except ProtocolError as exc:
            self.metrics.bump("requests_total")
            self.metrics.bump(f"errors_{exc.code}")
            await self._send_locked(writer, write_lock, exc.as_reply(None))
            return
        if message.get("op") == "batch":
            await self._serve_batch(message, writer, write_lock)
            return
        reply = await self._dispatch_message(message)
        await self._send_locked(writer, write_lock, reply)

    async def _serve_batch(self, message: dict,
                           writer: asyncio.StreamWriter,
                           write_lock: asyncio.Lock) -> None:
        """One batch line: fan out, stream sub-replies, close with a
        summary.  Sub-requests run concurrently; each reply leaves as
        soon as its sub-request finishes."""
        self.metrics.bump("requests_total")
        self.metrics.bump("batch_requests")
        batch_id = message.get("id")
        try:
            subs = validate_batch_request(message)
        except ProtocolError as exc:
            self.metrics.bump(f"errors_{exc.code}")
            await self._send_locked(writer, write_lock,
                                    exc.as_reply(batch_id))
            return

        async def one(sub: dict) -> bool:
            reply = await self._dispatch_message(sub)
            reply.setdefault("id", sub["id"])
            if batch_id is not None:
                reply["batch"] = batch_id
            await self._send_locked(writer, write_lock, reply)
            return bool(reply.get("ok"))

        oks = await asyncio.gather(*(one(sub) for sub in subs))
        summary = {"ok": True, "batch_complete": True,
                   "replies": len(oks), "failed": oks.count(False)}
        if batch_id is not None:
            summary["batch"] = batch_id
            summary["id"] = batch_id
        await self._send_locked(writer, write_lock, summary)

    async def _send_locked(self, writer: asyncio.StreamWriter,
                           write_lock: asyncio.Lock, reply: dict) -> None:
        try:
            async with write_lock:
                await self._send(writer, reply)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # peer vanished; the work itself already happened

    async def _send(self, writer: asyncio.StreamWriter,
                    reply: dict) -> None:
        writer.write(encode_message(reply))
        await writer.drain()

    # -- request routing ----------------------------------------------------

    async def _dispatch(self, line: bytes) -> dict:
        """Decode one wire line and dispatch it (non-batch ops)."""
        try:
            message = decode_line(line)
        except ProtocolError as exc:
            self.metrics.bump("requests_total")
            self.metrics.bump(f"errors_{exc.code}")
            return exc.as_reply(None)
        return await self._dispatch_message(message)

    async def _dispatch_message(self, message: dict) -> dict:
        started = time.perf_counter()
        self.metrics.bump("requests_total")
        request_id = message.get("id")
        try:
            op = message.get("op")
            if op == "ping":
                return self._ping_reply(request_id)
            if op == "stats":
                return self._stats_reply(request_id)
            if op == "compile":
                return await self._compile(message, request_id, started)
            if op == "run":
                return await self._run(message, request_id, started)
            if op == "batch":
                raise ProtocolError("bad-request", "batches do not nest")
            raise ProtocolError("bad-request",
                                f"unknown op {op!r}; expected "
                                f"'compile', 'run', 'batch', 'stats' or "
                                f"'ping'")
        except ProtocolError as exc:
            self.metrics.bump(f"errors_{exc.code}")
            return exc.as_reply(request_id)
        finally:
            self.metrics.observe("request", time.perf_counter() - started)

    def _ping_reply(self, request_id) -> dict:
        reply = {"ok": True, "pong": True, "version": __version__,
                 "pid": os.getpid(), "shard": self.config.shard_name}
        if request_id is not None:
            reply["id"] = request_id
        return reply

    def _stats_reply(self, request_id) -> dict:
        assert self.pool is not None
        reply = {
            "ok": True,
            "shard": self.config.shard_name,
            "version": __version__,
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started, 3),
            "workers": self.pool.size,
            "worker_crashes": self.pool.crashes,
            "pending": self._pending,
            "inflight_keys": len(self._inflight),
            "cache": self.cache.stats(),
            "tiering": self.tiering.snapshot(),
            **self.metrics.snapshot(),
        }
        if request_id is not None:
            reply["id"] = request_id
        return reply

    # -- the compile path ---------------------------------------------------

    async def _compile(self, message: dict, request_id, started) -> dict:
        self.metrics.bump("compile_requests")
        request = validate_compile_request(message)
        try:
            key = cache_key(request)
        except ValueError as exc:  # unknown options field
            raise ProtocolError("bad-request", str(exc)) from exc

        cacheable = "fault" not in request
        if cacheable:
            hit = self.cache.get(key)
            if hit is not None:
                entry, tier = hit
                self.metrics.bump("cache_hits")
                self.metrics.observe("compile_cached",
                                     time.perf_counter() - started)
                return self._ok(request_id, key, entry, cached=tier)
            self.metrics.bump("cache_misses")

            inflight = self._inflight.get(key)
            if inflight is not None:
                self.metrics.bump("coalesced")
                reply = dict(await inflight)
                if reply.get("ok"):
                    reply = self._ok(request_id, key,
                                     reply["artifacts"], cached=False,
                                     coalesced=True)
                elif request_id is not None:
                    reply["id"] = request_id
                return reply

        if self._pending >= self.config.max_pending:
            self.metrics.bump("shed")
            raise ProtocolError(
                "overloaded",
                f"{self._pending} compiles already pending "
                f"(max {self.config.max_pending}); retry later")

        future: asyncio.Future = asyncio.get_running_loop().create_future()
        if cacheable:
            self._inflight[key] = future
        self._pending += 1
        try:
            reply = await self._execute(request, key, request_id, started)
        finally:
            self._pending -= 1
            if cacheable and self._inflight.get(key) is future:
                del self._inflight[key]
            if not future.done():
                future.set_result(reply)
        return reply

    async def _execute(self, request: dict, key: str, request_id,
                       started) -> dict:
        assert self.pool is not None and self._executor is not None
        loop = asyncio.get_running_loop()
        try:
            artifacts = await loop.run_in_executor(
                self._executor,
                lambda: self.pool.run(request,
                                      timeout=self.config.request_timeout))
        except JobError as exc:
            self.metrics.bump("compile_errors")
            return error_reply(
                "compile-error", f"{exc.kind}: {exc.detail}",
                request_id=request_id, kind=exc.kind)
        except WorkerCrash as exc:
            self.metrics.bump("worker_crashes")
            if "deadline" in exc.reason:
                self.metrics.bump("deadline_kills")
            bundle = self._write_crash_bundle(exc, request)
            return error_reply(
                "worker-crash", exc.reason, request_id=request_id,
                crash_bundle=bundle, exitcode=exc.exitcode)
        except RuntimeError as exc:  # pool closed during shutdown
            return error_reply("shutting-down", str(exc),
                               request_id=request_id)

        self._record_phase_timings(artifacts)
        if "fault" not in request:
            self.cache.put(key, artifacts)
        self.metrics.observe("compile_cold", time.perf_counter() - started)
        return self._ok(request_id, key, artifacts, cached=False)

    # -- the tiered run path ------------------------------------------------

    async def _run(self, message: dict, request_id, started) -> dict:
        self.metrics.bump("run_requests")
        request = validate_run_request(message)
        try:
            key = run_cache_key(request)
        except ValueError as exc:  # unknown options field
            raise ProtocolError("bad-request", str(exc)) from exc

        # Admission control first: a shed request is never served, so it
        # must not advance per-key hotness, per-tier stats, or launch a
        # background native compile.
        if self._pending >= self.config.max_pending:
            self.metrics.bump("shed")
            raise ProtocolError(
                "overloaded",
                f"{self._pending} requests already pending "
                f"(max {self.config.max_pending}); retry later")

        decision = self.tiering.decide(key)
        self.metrics.bump(f"run_tier_{decision.tier}")
        if decision.promote:
            self._start_promotion(key, request)

        self._pending += 1
        try:
            return await self._execute_run(request, key, decision,
                                           request_id, started)
        finally:
            self._pending -= 1

    async def _execute_run(self, request: dict, key: str,
                           decision: TierDecision, request_id,
                           started) -> dict:
        assert self.pool is not None and self._executor is not None
        loop = asyncio.get_running_loop()
        job = {"op": "run", "tier": decision.tier, "key": key,
               "source": request["source"], "entry": request["entry"],
               "args": request["args"], "options": request["options"]}
        if decision.tier == "native":
            job["native"] = {"so": decision.so_path,
                             "entry_meta": decision.entry_meta}
            job["fuel"] = self.config.native_fuel
        try:
            result = await loop.run_in_executor(
                self._executor,
                lambda: self.pool.run(job,
                                      timeout=self.config.request_timeout))
        except JobError as exc:
            self.metrics.bump("run_errors")
            return error_reply(
                "compile-error", f"{exc.kind}: {exc.detail}",
                request_id=request_id, kind=exc.kind)
        except WorkerCrash as exc:
            self.metrics.bump("worker_crashes")
            if decision.tier == "native":
                # A crashed native run quarantines the program and is
                # retried on the VM — the client still gets an answer.
                self.tiering.fallback(key, exc.reason)
                return await self._execute_run(
                    request, key, TierDecision("vm", False),
                    request_id, started)
            if "deadline" in exc.reason:
                self.metrics.bump("deadline_kills")
            bundle = self._write_crash_bundle(exc, request)
            return error_reply(
                "worker-crash", exc.reason, request_id=request_id,
                crash_bundle=bundle, exitcode=exc.exitcode)
        except RuntimeError as exc:  # pool closed during shutdown
            return error_reply("shutting-down", str(exc),
                               request_id=request_id)

        if decision.tier == "vm":
            self.tiering.note_steps(key, result.get("steps", 0))
            self.tiering.note_profile(key, result.get("profile"))
        self.metrics.observe("run", time.perf_counter() - started)
        reply = {"ok": True, "key": key, "tier": decision.tier,
                 "native_state": self.tiering.state_of(key),
                 "results": result["results"]}
        if request_id is not None:
            reply["id"] = request_id
        return reply

    def _start_promotion(self, key: str, request: dict) -> None:
        if key in self._promotions:
            return
        job = {"op": "native-compile", "source": request["source"],
               "options": request["options"],
               "native_dir": self.native_dir,
               "cc_timeout": max(1.0,
                                 self.config.native_compile_timeout * 0.8)}
        # PGO: ship whatever training data the VM tier accumulated for
        # this key; the worker then runs a profile-guided round before
        # emitting C (absent profile => plain static native compile).
        profile = self.tiering.profile_of(key)
        if profile:
            job["profile"] = profile
        self._promotions[key] = asyncio.get_running_loop().create_task(
            self._promote(key, job))

    async def _promote(self, key: str, job: dict) -> None:
        assert self.pool is not None and self._executor is not None
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._executor,
                lambda: self.pool.run(
                    job, timeout=self.config.native_compile_timeout))
        except JobError as exc:
            self.metrics.bump("native_compile_errors")
            self.tiering.quarantine(key, f"{exc.kind}: {exc.detail}")
        except WorkerCrash as exc:
            self.metrics.bump("native_compile_crashes")
            self.tiering.quarantine(key, exc.reason)
            self._write_crash_bundle(exc, job)
        except RuntimeError:
            pass  # pool closed during shutdown; nothing to record
        else:
            self.tiering.native_ready(key, result["so"],
                                      result["entry_meta"],
                                      cached=result["cached"],
                                      pgo=result.get("pgo", False))
        finally:
            self._promotions.pop(key, None)

    def _write_crash_bundle(self, crash: WorkerCrash,
                            request: dict) -> str | None:
        from ..transform.crashreport import write_worker_crash_report

        try:
            bundle = write_worker_crash_report(
                directory=self.config.crash_dir, error=crash,
                request=request,
                context={"server": f"{self.config.host}:{self.config.port}"})
            return str(bundle)
        except Exception:  # reporting is best-effort
            return None

    def _record_phase_timings(self, artifacts: dict) -> None:
        stats = artifacts.get("stats")
        if not isinstance(stats, dict):
            return
        if "timings" in stats:
            self.metrics.record_phase_timings(stats["timings"])
        else:  # PGO: one record per phase group
            for sub in stats.values():
                if isinstance(sub, dict):
                    self.metrics.record_phase_timings(sub.get("timings"))

    @staticmethod
    def _ok(request_id, key: str, artifacts: dict, *, cached,
            coalesced: bool = False) -> dict:
        reply = {"ok": True, "key": key, "cached": cached,
                 "coalesced": coalesced, "artifacts": artifacts}
        if request_id is not None:
            reply["id"] = request_id
        return reply


def run_server(config: ServerConfig) -> None:
    """Blocking entry point used by ``python -m repro.serve``."""
    if config.cache_dir is not None:
        Path(config.cache_dir).mkdir(parents=True, exist_ok=True)
    asyncio.run(CompileServer(config).run())

"""The compile job: request dict in, artifact dict out.

This module is the *only* code the forked workers run.  The handler is
deliberately a plain synchronous function over plain data (dicts in,
dicts out) so that :class:`repro.core.pool.ForkWorker` can ship jobs
and results over a pipe, and so that tests can call it in-process to
establish the byte-identity baseline the server is checked against.

A request compiles in one of three modes:

* ``none``   — frontend only (construction-time folding still applies);
* ``static`` — the full optimization pipeline;
* ``pgo``    — static rounds, then profile-guided phases, driven either
  by a precollected ``profile`` or by training on ``entry`` ×
  ``train_args`` via :func:`repro.profile.driver.compile_profiled`.

Artifacts are all text/JSON: ``ir`` (printed Thorin IR), ``c`` (the C
emission), ``bytecode`` (the VM disassembly; ``None`` with a
``bytecode_error`` when the world is not in control-flow form, e.g. an
unoptimized higher-order program), and ``stats``
(:meth:`PipelineStats.as_dict`, keyed per phase for PGO).

``fault`` requests wire a :class:`repro.fuzz.inject.FaultInjector` into
the pipeline as ``pass_hook`` — including the process-fatal ``kill``
mode, which is what the server's crash-isolation test exercises.
"""

from __future__ import annotations

from dataclasses import replace

from .. import compile_source
from .cache import canonical_options


def _pipeline_options(request: dict):
    """Request overrides -> OptimizeOptions (semantic fields only)."""
    from ..transform.pipeline import OptimizeOptions

    overrides = dict(request.get("options") or {})
    # canonical_options validates field names; reuse it for the error.
    canonical_options(overrides)
    return OptimizeOptions(**overrides)


def _maybe_fault_hook(request: dict, options):
    fault = request.get("fault")
    if fault is None:
        return options
    from ..fuzz.inject import FaultInjector, FaultPlan

    plan = FaultPlan(mode=fault["mode"], target=fault.get("target"),
                     nth=int(fault.get("nth", 1)))
    return replace(options, pass_hook=FaultInjector(plan))


def _artifacts(world, stats_payload) -> dict:
    from ..backend.c_emitter import emit_c
    from ..backend.codegen import compile_world
    from ..core.printer import print_world

    artifacts = {"ir": print_world(world), "stats": stats_payload}
    try:
        artifacts["c"] = emit_c(world)
    except Exception as exc:
        artifacts["c"] = None
        artifacts["c_error"] = f"{type(exc).__name__}: {exc}"
    try:
        artifacts["bytecode"] = compile_world(world).program.disassemble()
    except Exception as exc:
        artifacts["bytecode"] = None
        artifacts["bytecode_error"] = f"{type(exc).__name__}: {exc}"
    return artifacts


def compile_request(request: dict) -> dict:
    """Execute one validated compile request; returns the artifact dict.

    Raises on compiler errors — the worker pool translates exceptions
    into structured ``compile-error`` replies (and a dead process into
    ``worker-crash``).
    """
    opt = request.get("opt", "static")
    world = compile_source(request["source"], optimize=False)

    if opt == "none":
        return _artifacts(world, None)

    options = _maybe_fault_hook(request, _pipeline_options(request))
    if opt == "static":
        stats = _optimize(world, options)
        return _artifacts(world, stats.as_dict())

    # opt == "pgo"
    profile_data = request.get("profile")
    if profile_data is not None:
        from ..profile.model import Profile

        static_stats = _optimize(world, options)
        pgo_stats = _optimize(world, options,
                              profile=Profile.from_dict(profile_data))
        payload = {"static": static_stats.as_dict(),
                   "pgo": pgo_stats.as_dict()}
        return _artifacts(world, payload)

    from ..profile.driver import compile_profiled

    entry = request["entry"]
    train_args = [tuple(args) for args in request["train_args"]]

    def workload(compiled):
        for args in train_args:
            compiled.call(entry, *args)

    _, _, stats = compile_profiled(world, workload, options=options)
    payload = {"static": stats["static"].as_dict(),
               "pgo": stats["pgo"].as_dict()}
    return _artifacts(world, payload)


def _optimize(world, options, profile=None):
    from ..transform.pipeline import optimize

    return optimize(world, options=options, profile=profile)


class CompileHandler:
    """The pool handler: picks the crash directory at server start.

    Instances ride into the children via fork (no pickling), so this
    can be configured with whatever the server was started with.
    """

    def __init__(self, crash_dir: str | None = None):
        self.crash_dir = crash_dir

    def __call__(self, request: dict) -> dict:
        if self.crash_dir is not None:
            options = dict(request.get("options") or {})
            options.setdefault("crash_dir", self.crash_dir)
            request = {**request, "options": options}
        return compile_request(request)

"""The worker jobs: request dict in, result dict out.

This module is the *only* code the forked workers run.  The handlers
are deliberately plain synchronous functions over plain data (dicts
in, dicts out) so that :class:`repro.core.pool.ForkWorker` can ship
jobs and results over a pipe, and so that tests can call them
in-process to establish the byte-identity baseline the server is
checked against.

Three job kinds, dispatched on ``op``:

* ``compile`` — the original artifact build (below);
* ``run`` — execute an entry point at a server-chosen tier (graph
  interpreter, bytecode VM, or a native ``.so`` via ctypes); each
  worker process keeps small per-tier caches so repeated requests for
  the same program skip recompilation;
* ``native-compile`` — emit hardened C for the statically optimized
  world and build it into the content-addressed native store.  Runs in
  the pool so a wedged or crashing system compiler takes down a
  disposable seat, never the server.

A compile request compiles in one of three modes:

* ``none``   — frontend only (construction-time folding still applies);
* ``static`` — the full optimization pipeline;
* ``pgo``    — static rounds, then profile-guided phases, driven either
  by a precollected ``profile`` or by training on ``entry`` ×
  ``train_args`` via :func:`repro.profile.driver.compile_profiled`.

Artifacts are all text/JSON: ``ir`` (printed Thorin IR), ``c`` (the C
emission), ``bytecode`` (the VM disassembly; ``None`` with a
``bytecode_error`` when the world is not in control-flow form, e.g. an
unoptimized higher-order program), and ``stats``
(:meth:`PipelineStats.as_dict`, keyed per phase for PGO).

``fault`` requests wire a :class:`repro.fuzz.inject.FaultInjector` into
the pipeline as ``pass_hook`` — including the process-fatal ``kill``
mode, which is what the server's crash-isolation test exercises.
"""

from __future__ import annotations

from dataclasses import replace

from .. import compile_source
from .cache import canonical_options


def _pipeline_options(request: dict):
    """Request overrides -> OptimizeOptions (semantic fields only)."""
    from ..transform.pipeline import OptimizeOptions

    overrides = dict(request.get("options") or {})
    # canonical_options validates field names; reuse it for the error.
    canonical_options(overrides)
    return OptimizeOptions(**overrides)


def _maybe_fault_hook(request: dict, options):
    fault = request.get("fault")
    if fault is None:
        return options
    from ..fuzz.inject import FaultInjector, FaultPlan

    plan = FaultPlan(mode=fault["mode"], target=fault.get("target"),
                     nth=int(fault.get("nth", 1)))
    return replace(options, pass_hook=FaultInjector(plan))


def _artifacts(world, stats_payload) -> dict:
    from ..backend.c_emitter import emit_c
    from ..backend.codegen import compile_world
    from ..core.printer import print_world

    artifacts = {"ir": print_world(world), "stats": stats_payload}
    try:
        artifacts["c"] = emit_c(world)
    except Exception as exc:
        artifacts["c"] = None
        artifacts["c_error"] = f"{type(exc).__name__}: {exc}"
    try:
        artifacts["bytecode"] = compile_world(world).program.disassemble()
    except Exception as exc:
        artifacts["bytecode"] = None
        artifacts["bytecode_error"] = f"{type(exc).__name__}: {exc}"
    return artifacts


def compile_request(request: dict) -> dict:
    """Execute one validated compile request; returns the artifact dict.

    Raises on compiler errors — the worker pool translates exceptions
    into structured ``compile-error`` replies (and a dead process into
    ``worker-crash``).
    """
    opt = request.get("opt", "static")
    world = compile_source(request["source"], optimize=False)

    if opt == "none":
        return _artifacts(world, None)

    options = _maybe_fault_hook(request, _pipeline_options(request))
    if opt == "static":
        stats = _optimize(world, options)
        return _artifacts(world, stats.as_dict())

    # opt == "pgo"
    profile_data = request.get("profile")
    if profile_data is not None:
        from ..profile.model import Profile

        static_stats = _optimize(world, options)
        pgo_stats = _optimize(world, options,
                              profile=Profile.from_dict(profile_data))
        payload = {"static": static_stats.as_dict(),
                   "pgo": pgo_stats.as_dict()}
        return _artifacts(world, payload)

    from ..profile.driver import compile_profiled

    entry = request["entry"]
    train_args = [tuple(args) for args in request["train_args"]]

    def workload(compiled):
        for args in train_args:
            compiled.call(entry, *args)

    _, _, stats = compile_profiled(world, workload, options=options)
    payload = {"static": stats["static"].as_dict(),
               "pgo": stats["pgo"].as_dict()}
    return _artifacts(world, payload)


def _optimize(world, options, profile=None):
    from ..transform.pipeline import optimize

    return optimize(world, options=options, profile=profile)


# ---------------------------------------------------------------------------
# run + native-compile jobs (the native tier)
# ---------------------------------------------------------------------------

# Per-worker-process artifact caches, keyed by the server's run key (or
# .so path for loaded modules).  Workers are forked and long-lived, so
# the second request for a hot program skips the compile entirely.
_WORKER_CACHE_LIMIT = 16
_INTERP_WORLDS: dict = {}
_VM_IMAGES: dict = {}
_NATIVE_MODULES: dict = {}


def _bounded_put(cache: dict, key, value) -> None:
    cache.pop(key, None)
    cache[key] = value
    while len(cache) > _WORKER_CACHE_LIMIT:
        cache.pop(next(iter(cache)))


def _trap_kind(exc: BaseException) -> str:
    from ..core.limits import ResourceLimitError

    if isinstance(exc, ResourceLimitError):
        resource = getattr(exc, "resource", "")
        return "step-limit" if resource == "steps" else "resource-limit"
    if "division" in str(exc):
        return "div-by-zero"
    return "other"


def _run_interp_tier(request: dict) -> dict:
    from ..backend.interp import Interpreter, InterpError
    from ..core import fold
    from ..core.limits import ResourceLimitError

    key = request["key"]
    world = _INTERP_WORLDS.get(key)
    if world is None:
        world = compile_source(request["source"], optimize=False)
        _bounded_put(_INTERP_WORLDS, key, world)
    results = []
    for args in request["args"]:
        interp = Interpreter(world)
        try:
            value = interp.call(request["entry"], *args)
            results.append({"value": value, "trap": None,
                            "output": "".join(interp.output)})
        except (InterpError, fold.EvalError, ResourceLimitError) as exc:
            results.append({"value": None, "trap": _trap_kind(exc),
                            "output": "".join(interp.output)})
    return {"results": results, "steps": 0}


def _run_vm_tier(request: dict) -> dict:
    from ..backend import bytecode as bc
    from ..backend.codegen import compile_world
    from ..core.limits import ResourceLimitError
    from ..profile.collector import ProfileCollector
    from ..profile.model import Profile

    key = request["key"]
    compiled = _VM_IMAGES.get(key)
    if compiled is None:
        world = compile_source(request["source"], optimize=False)
        _optimize(world, _pipeline_options(request))
        compiled = compile_world(world)
        _bounded_put(_VM_IMAGES, key, compiled)
    results = []
    before = compiled.vm.executed
    # The VM tier doubles as the PGO trainer: requests run under the
    # instrumented dispatch loop and ship their profile back so the
    # server can accumulate per-key training data — when the key turns
    # hot, the background native compile is profile-guided.  The
    # instrumented loop forgoes the fused dispatch stream; that is the
    # price of the warmup tier, repaid by the native code it trains.
    collector = ProfileCollector()
    compiled.vm.profile = collector
    try:
        for args in request["args"]:
            mark = len(compiled.vm.output)
            try:
                value = compiled.call(request["entry"], *args)
                results.append({"value": value, "trap": None,
                                "output":
                                    "".join(compiled.vm.output[mark:])})
            except (bc.VMError, ResourceLimitError) as exc:
                results.append({"value": None, "trap": _trap_kind(exc),
                                "output":
                                    "".join(compiled.vm.output[mark:])})
    finally:
        compiled.vm.profile = None
    reply = {"results": results, "steps": compiled.vm.executed - before}
    if not collector.is_empty():
        reply["profile"] = Profile.from_collector(
            collector, compiled.program).to_dict()
    return reply


def _run_native_tier(request: dict) -> dict:
    from ..native import DEFAULT_FUEL, NativeModule

    so_path = request["native"]["so"]
    module = _NATIVE_MODULES.get(so_path)
    if module is None:
        module = NativeModule(so_path, request["native"]["entry_meta"])
        _bounded_put(_NATIVE_MODULES, so_path, module)
    fuel = request.get("fuel")
    if fuel is None:
        fuel = DEFAULT_FUEL
    results = []
    for args in request["args"]:
        run = module.run(request["entry"], args, fuel=fuel)
        results.append({"value": run.result, "trap": run.trap,
                        "output": run.output})
    return {"results": results, "steps": 0}


def run_request(request: dict) -> dict:
    """Execute one validated run job at the tier the server chose."""
    tier = request["tier"]
    if tier == "interp":
        return _run_interp_tier(request)
    if tier == "vm":
        return _run_vm_tier(request)
    if tier == "native":
        return _run_native_tier(request)
    raise ValueError(f"unknown run tier {tier!r}")


def native_compile_request(request: dict) -> dict:
    """Build ``source`` into the content-addressed native store.

    With a ``profile`` (the VM tier's accumulated training data for
    this key), the static rounds are followed by a profile-guided
    round before the C emission — the native world the daemon tiers up
    to is PGO-specialized.  The profile's site labels name
    continuations of the statically optimized world; same source ×
    options reproduce that world byte-for-byte, so the labels resolve.
    The store content-addresses the C source, so PGO objects never
    collide with static ones.
    """
    from ..native import NativeStore, emit_native_c

    world = compile_source(request["source"], optimize=False)
    options = _pipeline_options(request)
    _optimize(world, options)
    profile_data = request.get("profile")
    if profile_data:
        from ..profile.model import Profile

        _optimize(world, options, profile=Profile.from_dict(profile_data))
    c_source, entry_meta = emit_native_c(world)
    store = NativeStore(request["native_dir"])
    so_path, store_key, cached = store.get_or_build(
        c_source, timeout=request.get("cc_timeout", 60.0))
    return {"so": str(so_path), "entry_meta": entry_meta,
            "store_key": store_key, "cached": cached,
            "pgo": bool(profile_data)}


class CompileHandler:
    """The pool handler: picks the crash directory at server start.

    Instances ride into the children via fork (no pickling), so this
    can be configured with whatever the server was started with.
    """

    def __init__(self, crash_dir: str | None = None):
        self.crash_dir = crash_dir

    def __call__(self, request: dict) -> dict:
        op = request.get("op", "compile")
        if op == "run":
            return run_request(request)
        if op == "native-compile":
            return native_compile_request(request)
        if self.crash_dir is not None:
            options = dict(request.get("options") or {})
            options.setdefault("crash_dir", self.crash_dir)
            request = {**request, "options": options}
        return compile_request(request)

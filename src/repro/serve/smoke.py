"""CI smoke driver: ``python -m repro.serve.smoke``.

Boots a real daemon (``python -m repro.serve`` subprocess), fires a
mixed batch of requests at it, and asserts the service contract:

* every suite program compiles at every optimization level;
* repeated requests hit the cache (hit rate > 0, warm replies marked);
* served artifacts are **byte-identical** to a direct in-process
  :func:`repro.serve.worker.compile_request` for the same request;
* an injected worker ``kill`` yields a structured ``worker-crash``
  reply with a crash bundle, and the server keeps serving afterwards;
* SIGTERM produces a clean exit (status 0).

Exit status 0 = contract holds.  Used by the ``serve-smoke`` CI job.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

from ..programs.suite import ALL_PROGRAMS
from .client import ServeClient
from .worker import compile_request


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_for_server(client: ServeClient, deadline: float) -> None:
    while True:
        try:
            assert client.ping()["ok"]
            return
        except Exception:
            if time.monotonic() > deadline:
                raise SystemExit("server did not come up in time")
            client.close()
            time.sleep(0.2)


def _mixed_requests(count: int) -> list[dict]:
    """A deterministic batch: every program × level, then repeats."""
    batch: list[dict] = []
    for program in ALL_PROGRAMS:
        for opt in ("none", "static", "pgo"):
            request = {"op": "compile", "source": program.source,
                       "opt": opt}
            if opt == "pgo":
                request["entry"] = program.entry
                request["train_args"] = [list(program.test_args)]
            batch.append(request)
    while len(batch) < count:
        batch.append(dict(batch[len(batch) % (len(ALL_PROGRAMS) * 3)]))
    return batch[:count]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.serve.smoke")
    parser.add_argument("--requests", type=int, default=50, metavar="N")
    parser.add_argument("--workers", type=int, default=2, metavar="N")
    parser.add_argument("--identity-checks", type=int, default=6,
                        metavar="N",
                        help="requests to re-run in-process and compare "
                             "byte-for-byte (default 6; -1 = all)")
    args = parser.parse_args(argv)

    port = _free_port()
    tmp = tempfile.mkdtemp(prefix="serve-smoke-")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", str(port),
         "--workers", str(args.workers),
         "--cache-dir", os.path.join(tmp, "cache"),
         "--crash-dir", os.path.join(tmp, "crashes")],
        env={**os.environ, "PYTHONPATH": os.environ.get("PYTHONPATH", "")},
    )
    failures: list[str] = []
    try:
        client = ServeClient(port=port, timeout=180.0)
        _wait_for_server(client, time.monotonic() + 30.0)

        batch = _mixed_requests(args.requests)
        replies = []
        for index, request in enumerate(batch):
            reply = client.request({**request, "id": index})
            if not reply.get("ok"):
                failures.append(f"request {index} failed: {reply}")
            replies.append(reply)
        print(f"{len(batch)} requests, "
              f"{sum(1 for r in replies if r.get('cached'))} served "
              f"from cache")

        stats = client.stats()
        hit_rate = stats["cache"]["hit_rate"]
        print(f"cache: {stats['cache']}")
        if not hit_rate > 0:
            failures.append(f"expected cache hit rate > 0, got {hit_rate}")

        # Byte-identity: the daemon must return exactly what a direct
        # in-process compile produces.
        checks = (len(batch) if args.identity_checks < 0
                  else min(args.identity_checks, len(batch)))
        step = max(1, len(batch) // checks)
        for index in range(0, checks * step, step):
            request, reply = batch[index], replies[index]
            if not reply.get("ok"):
                continue
            direct = compile_request(dict(request))
            served = dict(reply["artifacts"])
            for artifact in ("ir", "c", "bytecode"):
                if served.get(artifact) != direct.get(artifact):
                    failures.append(
                        f"request {index} ({request['opt']}): artifact "
                        f"{artifact!r} differs between daemon and direct "
                        f"compile")
        print(f"byte-identity verified on {checks} request(s)")

        # Crash isolation: kill a worker mid-compile, expect a bundle
        # and continued service.
        source = ALL_PROGRAMS[0].source
        crash = client.compile(source + "\n", opt="static",
                               fault={"mode": "kill", "target": "inline"})
        if crash.get("ok") or crash["error"]["code"] != "worker-crash":
            failures.append(f"expected worker-crash reply, got {crash}")
        elif not crash["error"].get("crash_bundle"):
            failures.append(f"worker-crash reply without a bundle: {crash}")
        else:
            print(f"worker crash handled; bundle at "
                  f"{crash['error']['crash_bundle']}")
        after = client.compile(source, opt="static")
        if not after.get("ok"):
            failures.append(f"server unusable after worker crash: {after}")

        client.close()
    finally:
        daemon.send_signal(signal.SIGTERM)
        try:
            exit_code = daemon.wait(timeout=15.0)
        except subprocess.TimeoutExpired:
            daemon.kill()
            exit_code = None
    if exit_code != 0:
        failures.append(f"daemon exit status {exit_code} after SIGTERM "
                        f"(want 0)")
    else:
        print("clean SIGTERM shutdown")

    if failures:
        print("SMOKE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Server-side telemetry: counters, latency histograms, phase timings.

Everything here is plain Python aggregation — the introspection
endpoint (``{"op": "stats"}``) serializes :meth:`Metrics.snapshot`
straight to the wire.  Histograms use power-of-two millisecond buckets
(1ms, 2ms, 4ms, ... 65s, +inf): coarse enough to be cheap, fine enough
to see a cold compile (hundreds of ms) versus a warm cache hit
(sub-millisecond) at a glance.
"""

from __future__ import annotations

import threading

_BUCKET_MS = [2 ** i for i in range(17)]  # 1ms .. 65536ms


class Histogram:
    """Log-bucketed latency histogram over seconds-valued observations."""

    def __init__(self) -> None:
        self.counts = [0] * (len(_BUCKET_MS) + 1)
        self.total = 0
        self.sum_seconds = 0.0

    def observe(self, seconds: float) -> None:
        ms = seconds * 1000.0
        for index, bound in enumerate(_BUCKET_MS):
            if ms <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum_seconds += seconds

    def snapshot(self) -> dict:
        buckets = {f"le_{bound}ms": count
                   for bound, count in zip(_BUCKET_MS, self.counts)
                   if count}
        if self.counts[-1]:
            buckets["le_inf"] = self.counts[-1]
        return {
            "count": self.total,
            "mean_ms": (0.0 if not self.total
                        else round(self.sum_seconds / self.total * 1000, 3)),
            "buckets": buckets,
        }


class Metrics:
    """All serve-side counters behind one lock (asyncio + executor safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self.latency: dict[str, Histogram] = {}
        # Wall-clock seconds per pipeline phase kind, summed over every
        # compile this server executed (from PipelineStats.timings).
        self.phase_seconds: dict[str, float] = {}

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            hist = self.latency.get(name)
            if hist is None:
                hist = self.latency[name] = Histogram()
            hist.observe(seconds)

    def record_phase_timings(self, timings: dict) -> None:
        if not isinstance(timings, dict):
            return
        with self._lock:
            for phase, seconds in timings.items():
                if isinstance(seconds, (int, float)):
                    self.phase_seconds[phase] = (
                        self.phase_seconds.get(phase, 0.0) + seconds)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counters": dict(self.counters),
                "latency": {name: hist.snapshot()
                            for name, hist in self.latency.items()},
                "pipeline_phase_seconds": {
                    phase: round(seconds, 6)
                    for phase, seconds in sorted(self.phase_seconds.items())},
            }

"""Content-addressed artifact cache for the compile service.

The cache key is a sha256 over the *complete semantic input* of a
compile: the source text, the optimization level, the canonicalized
:class:`~repro.transform.pipeline.OptimizeOptions`, and — for PGO — a
digest of the profile (or of the training workload that determines it).
Everything the pipeline's output depends on is in the key; nothing
else is.  Operational knobs that cannot change the artifacts
(``crash_dir``, ``crash_context``, ``pass_hook``) are excluded, so two
servers with different crash directories share cache entries.

Layout: an in-memory LRU (dict-ordered, capped by entry count) in
front of an on-disk object store ``<cache_dir>/objects/<k[:2]>/<k>.json``
— the git-style fan-out keeps directories small.  Disk writes are
atomic (tmp + rename) so a killed server never leaves a torn object,
and a hit promotes the entry back into memory.

The store is shared-nothing-safe: entries are immutable once written
(content-addressed), so concurrent servers on one directory can only
race to write identical bytes.

Disk growth is bounded by an optional mtime-LRU sweep
(``max_bytes``): every ``GC_PUT_INTERVAL`` writes the owning server
scans the object store and unlinks the least-recently-used objects
until usage falls under a low watermark.  Hits refresh an object's
mtime, so hot entries survive.  The sweep is safe under concurrent
shards sharing one store: deletes are single atomic ``unlink`` calls,
a racing reader that loses simply takes a miss and recompiles, and a
racing sweeper that loses an ``unlink`` ignores the ``ENOENT``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, fields
from pathlib import Path

from ..core.snapshot import canonical_json
from ..transform.pipeline import OptimizeOptions

CACHE_FORMAT = 1

# Options fields with no bearing on the produced artifacts.
_NON_SEMANTIC_OPTIONS = ("crash_dir", "crash_context", "pass_hook")

_OPTION_NAMES = frozenset(f.name for f in fields(OptimizeOptions))


def canonical_options(overrides: dict | None = None) -> dict:
    """Defaults + *overrides* as a stable, artifact-relevant dict.

    Unknown override names raise ``ValueError`` (surfaces as a
    bad-request to clients) rather than being silently dropped into
    the key, which would fragment the cache.
    """
    overrides = dict(overrides or {})
    unknown = set(overrides) - _OPTION_NAMES
    if unknown:
        raise ValueError(f"unknown OptimizeOptions field(s): "
                         f"{', '.join(sorted(unknown))}")
    options = OptimizeOptions(**overrides)
    out = asdict(options)
    for name in _NON_SEMANTIC_OPTIONS:
        out.pop(name, None)
    return out


def profile_digest(request: dict) -> str | None:
    """Digest of whatever determines the PGO profile, or ``None``.

    An explicit precollected profile is hashed directly.  A training
    workload (``entry`` + ``train_args``) determines the profile
    deterministically — the VM is deterministic — so hashing the
    workload description is equivalent to hashing the profile it will
    produce.
    """
    if request.get("opt") != "pgo":
        return None
    profile = request.get("profile")
    if profile is not None:
        payload = {"profile": profile}
    else:
        payload = {"entry": request.get("entry"),
                   "train_args": request.get("train_args")}
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")).hexdigest()


def cache_key(request: dict) -> str:
    """The content address of a validated compile request."""
    material = {
        "format": CACHE_FORMAT,
        "source": request["source"],
        "opt": request.get("opt", "static"),
        "options": canonical_options(request.get("options")),
        "profile": profile_digest(request),
    }
    return hashlib.sha256(
        canonical_json(material).encode("utf-8")).hexdigest()


def run_cache_key(request: dict) -> str:
    """The tiering key of a validated run request.

    Deliberately excludes the argument lists: hotness must accumulate
    across calls with different inputs, and one compiled artifact
    (VM image or ``.so``) serves them all.
    """
    material = {
        "format": CACHE_FORMAT,
        "kind": "run",
        "source": request["source"],
        "entry": request["entry"],
        "options": canonical_options(request.get("options")),
    }
    return hashlib.sha256(
        canonical_json(material).encode("utf-8")).hexdigest()


# Disk GC cadence: one sweep per this many object writes.  A sweep is
# a directory scan, so amortize it; the store can overshoot max_bytes
# by at most GC_PUT_INTERVAL objects between sweeps.
GC_PUT_INTERVAL = 16

# Sweep down to this fraction of max_bytes so back-to-back puts don't
# re-trigger a full scan each time.
GC_LOW_WATERMARK = 0.8

# Orphaned .tmp files (a writer died between write and rename) older
# than this are reclaimed by the sweep.
GC_STALE_TMP_SECONDS = 600.0


class ArtifactCache:
    """In-memory LRU over an on-disk content-addressed object store."""

    def __init__(self, cache_dir: str | Path | None,
                 memory_entries: int = 128,
                 max_bytes: int | None = None):
        self.root = None if cache_dir is None else Path(cache_dir)
        self.memory_entries = memory_entries
        self.max_bytes = max_bytes
        self._memory: dict[str, dict] = {}  # insertion order = LRU order
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.gc_sweeps = 0
        # Sweep on the very first put, then every GC_PUT_INTERVAL.
        self._puts_since_gc = GC_PUT_INTERVAL - 1

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def get(self, key: str) -> tuple[dict, str] | None:
        """Look *key* up; returns ``(entry, tier)`` or ``None``.

        ``tier`` is ``"memory"`` or ``"disk"``; a disk hit is promoted
        into the in-memory LRU on the way out.
        """
        entry = self._memory.get(key)
        if entry is not None:
            # Promote: re-insert at the MRU end.
            self._memory.pop(key)
            self._memory[key] = entry
            self.hits_memory += 1
            return entry, "memory"
        if self.root is not None:
            path = self._object_path(key)
            try:
                entry = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                entry = None
            if entry is not None:
                self.hits_disk += 1
                try:  # LRU touch: a hit must survive the next GC sweep
                    os.utime(path)
                except OSError:
                    pass  # concurrently evicted; the entry is in memory now
                self._remember(key, entry)
                return entry, "disk"
        self.misses += 1
        return None

    def put(self, key: str, entry: dict) -> None:
        self._remember(key, entry)
        if self.root is None:
            return
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(canonical_json(entry))
        os.replace(tmp, path)
        if self.max_bytes is not None:
            self._puts_since_gc += 1
            if self._puts_since_gc >= GC_PUT_INTERVAL:
                self.gc()

    # -- disk eviction ------------------------------------------------------

    def disk_usage(self) -> int:
        """Bytes currently held by the on-disk object store."""
        if self.root is None:
            return 0
        total = 0
        for path in (self.root / "objects").glob("*/*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                pass  # racing sweeper on a shared store
        return total

    def gc(self, max_bytes: int | None = None) -> dict:
        """One mtime-LRU sweep; returns what it did.

        Oldest objects go first until usage is under the low
        watermark.  Every delete is one atomic ``unlink``; ``ENOENT``
        (a concurrent shard swept the same file) is not an error.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        self._puts_since_gc = 0
        if self.root is None or budget is None:
            return {"evicted": 0, "evicted_bytes": 0, "disk_bytes": 0}
        self.gc_sweeps += 1
        now = time.time()
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for path in (self.root / "objects").glob("*/*"):
            try:
                stat = path.stat()
            except OSError:
                continue
            if path.name.endswith(".json"):
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
            elif (".tmp." in path.name
                  and now - stat.st_mtime > GC_STALE_TMP_SECONDS):
                # A writer died between write and rename; reclaim.
                try:
                    path.unlink()
                except OSError:
                    pass
        disk_bytes = total
        evicted = evicted_bytes = 0
        if total > budget:
            target = int(budget * GC_LOW_WATERMARK)
            entries.sort()  # oldest mtime first
            for _, size, path in entries:
                if total <= target:
                    break
                try:
                    path.unlink()
                except FileNotFoundError:
                    total -= size  # another shard beat us to it
                    continue
                except OSError:
                    continue
                total -= size
                evicted += 1
                evicted_bytes += size
        self.evictions += evicted
        self.evicted_bytes += evicted_bytes
        return {"evicted": evicted, "evicted_bytes": evicted_bytes,
                "disk_bytes": disk_bytes - evicted_bytes}

    def _remember(self, key: str, entry: dict) -> None:
        self._memory.pop(key, None)
        self._memory[key] = entry
        while len(self._memory) > self.memory_entries:
            self._memory.pop(next(iter(self._memory)))

    def stats(self) -> dict:
        total = self.hits_memory + self.hits_disk + self.misses
        return {
            "memory_entries": len(self._memory),
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "hit_rate": (0.0 if not total
                         else round((self.hits_memory + self.hits_disk)
                                    / total, 4)),
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "gc_sweeps": self.gc_sweeps,
        }

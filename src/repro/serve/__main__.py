"""``python -m repro.serve`` — run the compile service.

Foreground process; logs one line on start, exits 0 on SIGTERM/SIGINT.
Default is one daemon; ``--shards N`` boots fleet mode instead — N
supervised shard daemons sharing the on-disk object store behind a
consistent-hash router (see :mod:`repro.serve.fleet`).
"""

from __future__ import annotations

import argparse
import sys

from .server import ServerConfig, run_server


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="async compile server with content-addressed artifact "
                    "cache and crash-isolated workers; --shards N runs a "
                    "sharded fleet behind a consistent-hash router")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7767,
                        help="TCP port (default 7767; 0 = ephemeral, "
                             "see --port-file)")
    parser.add_argument("--shards", type=int, default=0, metavar="N",
                        help="fleet mode: run N shard daemons behind a "
                             "router on --port (default 0 = single daemon)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="forked compile workers per daemon "
                             "(default 2)")
    parser.add_argument("--cache-dir", default="serve_cache",
                        help="artifact store directory; 'none' disables "
                             "the on-disk tier (default serve_cache; "
                             "fleet shards share it)")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        metavar="B",
                        help="disk object-store budget; exceeding it "
                             "triggers an mtime-LRU GC sweep (default "
                             "unbounded)")
    parser.add_argument("--crash-dir", default="crash_reports",
                        help="where worker-crash bundles go")
    parser.add_argument("--max-pending", type=int, default=32, metavar="N",
                        help="compiles queued or running before the server "
                             "sheds load (default 32; per shard in fleet "
                             "mode)")
    parser.add_argument("--request-timeout", type=float, default=120.0,
                        metavar="S",
                        help="per-compile wall-clock budget in seconds; "
                             "overruns kill the worker (default 120)")
    parser.add_argument("--shard-name", default=None, metavar="NAME",
                        help="identity echoed by ping/stats (set by the "
                             "fleet manager)")
    parser.add_argument("--port-file", default=None, metavar="PATH",
                        help="write the bound port here once listening "
                             "(for --port 0)")
    parser.add_argument("--no-native", action="store_true",
                        help="disable the native execution tier; 'run' "
                             "requests stop tiering at the VM")
    parser.add_argument("--native-dir", default=None,
                        help="content-addressed .so store (default "
                             "<cache-dir>/native)")
    parser.add_argument("--hot-requests", type=int, default=4, metavar="N",
                        help="run requests per program before a background "
                             "native compile starts (default 4)")
    parser.add_argument("--hot-steps", type=int, default=100_000,
                        metavar="N",
                        help="cumulative VM steps that mark a program hot "
                             "(default 100000)")
    return parser.parse_args(argv)


def _server_config(args: argparse.Namespace) -> ServerConfig:
    return ServerConfig(
        host=args.host, port=args.port, workers=args.workers,
        cache_dir=None if args.cache_dir == "none" else args.cache_dir,
        crash_dir=args.crash_dir, max_pending=args.max_pending,
        request_timeout=args.request_timeout,
        shard_name=args.shard_name, port_file=args.port_file,
        cache_max_bytes=args.cache_max_bytes,
        native=not args.no_native, native_dir=args.native_dir,
        tier_hot_requests=args.hot_requests,
        tier_hot_steps=args.hot_steps)


def main(argv=None) -> int:
    args = _parse_args(argv)
    if args.shards > 0:
        from .fleet import FleetConfig, run_fleet

        if args.cache_dir == "none":
            print("fleet mode needs a shared --cache-dir", file=sys.stderr)
            return 2
        run_fleet(FleetConfig(
            host=args.host, port=args.port, shards=args.shards,
            workers_per_shard=args.workers, cache_dir=args.cache_dir,
            crash_dir=args.crash_dir, max_pending=args.max_pending,
            request_timeout=args.request_timeout,
            native=not args.no_native,
            cache_max_bytes=args.cache_max_bytes,
            port_file=args.port_file))
        print("repro.serve: clean fleet shutdown", flush=True)
        return 0
    config = _server_config(args)
    print(f"repro.serve listening on {config.host}:{config.port} "
          f"({config.workers} workers, cache={config.cache_dir})",
          flush=True)
    run_server(config)
    print("repro.serve: clean shutdown", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The compile service: an async daemon around the optimizer.

``python -m repro.serve`` starts a newline-delimited-JSON socket server
that compiles Impala-lite sources through the full pipeline and replies
with artifacts — printed Thorin IR, C source, VM bytecode listing, and
the :class:`~repro.transform.pipeline.PipelineStats` record — at any of
the three optimization levels (``none``, ``static``, ``pgo``).

The interesting parts, each in its own module:

* :mod:`.protocol` — wire format: one JSON object per line, bounded
  line length, structured error replies;
* :mod:`.cache` — content-addressed artifact cache keyed by
  ``sha256(source × options × profile digest)``; in-memory LRU over an
  on-disk object store;
* :mod:`.worker` — the compile job itself, executed in crash-isolated
  forked workers (:mod:`repro.core.pool`) so a segfaulting pass kills
  one request, not the server;
* :mod:`.server` — asyncio front end: admission control with load
  shedding, single-flight coalescing of identical in-flight requests,
  introspection, clean SIGTERM shutdown;
* :mod:`.client` — a small blocking client for tests, benchmarks and
  scripts; retries ``overloaded`` replies with bounded
  backoff + jitter;
* :mod:`.router` — fleet front end: consistent-hash routing on the
  cache key over pooled pipelined shard connections, dead-shard
  redispatch, fleet-wide stats aggregation;
* :mod:`.fleet` — the fleet manager behind ``--shards N``: spawns and
  supervises N shard daemons (restart-on-crash with backoff,
  staggered SIGTERM drain) around one router.
"""

from .cache import ArtifactCache, cache_key
from .client import ServeClient
from .protocol import ProtocolError, decode_line, encode_message
from .server import CompileServer, ServerConfig

__all__ = [
    "ArtifactCache",
    "cache_key",
    "CompileServer",
    "ProtocolError",
    "ServeClient",
    "ServerConfig",
    "decode_line",
    "encode_message",
]

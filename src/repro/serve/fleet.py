"""Fleet mode: N supervised shard daemons behind one router.

``python -m repro.serve --shards N`` lands here.  One process (this
one) runs the asyncio front-end :class:`~repro.serve.router.Router`
and supervises N shard subprocesses, each a full ``python -m
repro.serve`` daemon with its own fork pool, in-memory LRU and
tiering state.  All shards share one on-disk object store — safe
because entries are content-addressed and immutable — while the
consistent-hash router keeps each shard's *memory* tier hot by
always sending a key to the same shard.

Supervision contract:

* **spawn** — shards bind port 0 and report the real port through a
  ``--port-file``; the manager waits for the file, then for a ping.
* **restart-on-crash** — a shard that exits unexpectedly is taken out
  of the ring immediately and respawned with exponential backoff
  (``RESTART_BACKOFF_BASE * 2^failures``, capped); the backoff resets
  once the shard stays up for ``HEALTHY_RESET_SECONDS``.  In-flight
  requests on the dead shard are redispatched by the router, so a
  crash under load is invisible to clients.
* **drain** — SIGTERM/SIGINT stops the listener first (no new work),
  then SIGTERMs the shards staggered (``DRAIN_STAGGER_SECONDS``
  apart, so N fork pools don't tear down in lockstep), waits for each
  with a kill fallback, and exits 0.

The router's ``stats`` op reports the supervisor state too:
``fleet.restarts`` and a per-shard process table.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from .client import ServeClient
from .router import Router, RouterConfig

RESTART_BACKOFF_BASE = 0.5
RESTART_BACKOFF_CAP = 10.0
HEALTHY_RESET_SECONDS = 30.0
DRAIN_STAGGER_SECONDS = 0.05
SPAWN_DEADLINE_SECONDS = 60.0


@dataclass
class FleetConfig:
    host: str = "127.0.0.1"
    port: int = 7767
    shards: int = 4
    workers_per_shard: int = 2
    cache_dir: str = "serve_cache"        # shared by every shard
    crash_dir: str = "crash_reports"      # one subdirectory per shard
    max_pending: int = 32                 # per shard
    request_timeout: float = 120.0
    native: bool = True
    cache_max_bytes: int | None = None
    conns_per_shard: int = 2
    health_interval: float = 2.0
    port_file: str | None = None          # router port discovery
    # Extra argv appended to every shard command line (tests).
    shard_extra_args: list = field(default_factory=list)


class ShardProc:
    """One supervised shard: process handle + restart bookkeeping."""

    def __init__(self, name: str):
        self.name = name
        self.proc: subprocess.Popen | None = None
        self.port: int | None = None
        self.failures = 0          # consecutive crashes (drives backoff)
        self.up_since = 0.0
        self.restarts = 0          # lifetime restarts, for stats


class Fleet:
    def __init__(self, config: FleetConfig | None = None):
        self.config = config or FleetConfig()
        self.shards = [ShardProc(f"shard-{i}")
                       for i in range(self.config.shards)]
        self.router = Router(RouterConfig(
            host=self.config.host, port=self.config.port,
            conns_per_shard=self.config.conns_per_shard,
            request_timeout=self.config.request_timeout + 60.0,
            health_interval=self.config.health_interval,
            port_file=self.config.port_file))
        self.router.extra_stats = self._supervisor_stats
        self._stopping = asyncio.Event()
        self._run_dir = Path(self.config.cache_dir) / "fleet"

    # -- shard lifecycle ----------------------------------------------------

    def _shard_command(self, shard: ShardProc, port_file: Path) -> list:
        cmd = [sys.executable, "-m", "repro.serve",
               "--host", self.config.host, "--port", "0",
               "--port-file", str(port_file),
               "--shard-name", shard.name,
               "--workers", str(self.config.workers_per_shard),
               "--cache-dir", self.config.cache_dir,
               "--crash-dir",
               str(Path(self.config.crash_dir) / shard.name),
               "--max-pending", str(self.config.max_pending),
               "--request-timeout", str(self.config.request_timeout)]
        if not self.config.native:
            cmd.append("--no-native")
        if self.config.cache_max_bytes is not None:
            cmd += ["--cache-max-bytes", str(self.config.cache_max_bytes)]
        cmd += list(self.config.shard_extra_args)
        return cmd

    async def _spawn(self, shard: ShardProc) -> None:
        """Start one shard and wait until it answers a ping."""
        port_file = self._run_dir / f"{shard.name}.port"
        port_file.unlink(missing_ok=True)
        port_file.parent.mkdir(parents=True, exist_ok=True)
        shard.proc = subprocess.Popen(
            self._shard_command(shard, port_file),
            env={**os.environ,
                 "PYTHONPATH": os.environ.get("PYTHONPATH", "")})
        deadline = time.monotonic() + SPAWN_DEADLINE_SECONDS
        while True:
            if shard.proc.poll() is not None:
                raise RuntimeError(
                    f"{shard.name} exited with {shard.proc.returncode} "
                    f"during startup")
            try:
                shard.port = int(port_file.read_text())
                break
            except (OSError, ValueError):
                pass
            if time.monotonic() > deadline:
                shard.proc.kill()
                raise RuntimeError(f"{shard.name} did not report a port")
            await asyncio.sleep(0.05)
        # The port is bound before the file is written, so one ping
        # settles readiness.
        while True:
            try:
                reply = await asyncio.get_running_loop().run_in_executor(
                    None, self._ping_shard, shard)
                if reply.get("pong"):
                    break
            except Exception:
                pass
            if time.monotonic() > deadline:
                shard.proc.kill()
                raise RuntimeError(f"{shard.name} did not answer ping")
            await asyncio.sleep(0.1)
        shard.up_since = time.monotonic()
        self.router.add_shard(shard.name, self.config.host, shard.port)

    def _ping_shard(self, shard: ShardProc) -> dict:
        with ServeClient(self.config.host, shard.port,
                         timeout=5.0, retry_overloaded=False) as client:
            return client.ping()

    async def _supervise(self, shard: ShardProc) -> None:
        """Watch one shard; restart with backoff when it dies."""
        while not self._stopping.is_set():
            proc = shard.proc
            if proc is None or proc.poll() is not None:
                code = None if proc is None else proc.returncode
                self.router.note_shard_dead(shard.name)
                if self._stopping.is_set():
                    return
                if shard.up_since and (time.monotonic() - shard.up_since
                                       > HEALTHY_RESET_SECONDS):
                    shard.failures = 0
                delay = min(RESTART_BACKOFF_CAP,
                            RESTART_BACKOFF_BASE * (2 ** shard.failures))
                shard.failures += 1
                print(f"repro.serve.fleet: {shard.name} exited "
                      f"(code {code}); restarting in {delay:.1f}s",
                      flush=True)
                await asyncio.sleep(delay)
                if self._stopping.is_set():
                    return
                try:
                    await self._spawn(shard)
                except RuntimeError as exc:
                    print(f"repro.serve.fleet: {shard.name} respawn "
                          f"failed: {exc}", flush=True)
                    continue  # loop: back off harder and try again
                shard.restarts += 1
                print(f"repro.serve.fleet: {shard.name} back on port "
                      f"{shard.port} (pid {shard.proc.pid})", flush=True)
            await asyncio.sleep(0.2)

    def _supervisor_stats(self) -> dict:
        return {
            "restarts": sum(shard.restarts for shard in self.shards),
            "shard_procs": {
                shard.name: {
                    "pid": None if shard.proc is None else shard.proc.pid,
                    "port": shard.port,
                    "alive": (shard.proc is not None
                              and shard.proc.poll() is None),
                    "restarts": shard.restarts,
                } for shard in self.shards},
        }

    # -- fleet lifecycle ----------------------------------------------------

    async def start(self) -> None:
        Path(self.config.cache_dir).mkdir(parents=True, exist_ok=True)
        await asyncio.gather(*(self._spawn(shard)
                               for shard in self.shards))
        await self.router.start()
        self._supervisors = [asyncio.create_task(self._supervise(shard))
                             for shard in self.shards]

    @property
    def port(self) -> int:
        return self.router.port

    async def stop(self) -> None:
        """Drain: close the front door, then stagger shard SIGTERMs."""
        self._stopping.set()
        for task in getattr(self, "_supervisors", []):
            task.cancel()
        await self.router.stop()
        loop = asyncio.get_running_loop()
        for shard in self.shards:
            if shard.proc is not None and shard.proc.poll() is None:
                shard.proc.send_signal(signal.SIGTERM)
                await asyncio.sleep(DRAIN_STAGGER_SECONDS)
        for shard in self.shards:
            if shard.proc is None:
                continue
            try:
                await asyncio.wait_for(
                    loop.run_in_executor(None, shard.proc.wait),
                    timeout=15.0)
            except asyncio.TimeoutError:
                shard.proc.kill()

    async def run(self) -> None:
        await self.start()
        print(f"repro.serve.fleet: router on "
              f"{self.config.host}:{self.port}, "
              f"{len(self.shards)} shard(s): "
              + ", ".join(f"{s.name}@{s.port}" for s in self.shards),
              flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self._stopping.set)
        try:
            await self._stopping.wait()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(signum)
            await self.stop()


def run_fleet(config: FleetConfig) -> None:
    """Blocking entry point used by ``python -m repro.serve --shards N``."""
    asyncio.run(Fleet(config).run())

"""Fleet front-end: consistent-hash routing over compile shards.

The router terminates client connections, speaks the same NDJSON
protocol as a single daemon, and forwards each request to one of N
shard servers.  The routing key is the request's *cache key* — the
same sha256 the shard itself derives (:mod:`repro.serve.cache`) — so
a given compile or run always lands on the same shard.  That gives
the fleet three properties for free:

* **hot in-memory LRUs** — a shard only ever sees its own key range,
  so its memory cache tier stays dense instead of N-way diluted;
* **fleet-wide single-flight** — identical concurrent requests meet
  on one shard and coalesce there; no cross-shard duplicate compiles;
* **deterministic artifacts** — any shard computes the same bytes
  (compiles are pure functions of the key material), so rebalancing
  is always safe.

Key affinity is a consistent hash (:class:`HashRing`, sha256 points,
``REPLICAS`` virtual nodes per shard): when a shard dies only its arc
of the ring moves, the rest of the key space keeps its warm shard.
In-flight requests on a dying shard raise :class:`ShardDown`
internally and are *redispatched* to the next live shard — safe
because requests are pure — so a shard SIGKILL under load produces
zero client-visible failures.

Router->shard transport is a small pool of *pipelined* connections
per shard (:class:`ShardLink`): many requests in flight per
connection, tagged with router-assigned ids and matched to replies by
id (the shard serves one connection's lines concurrently).  The
``batch`` op is decomposed at the router: every sub-request routes by
its own key, so one client line fans out across the whole fleet and
the sub-replies stream back in completion order.

``ping``/``stats`` are answered by the router itself; ``stats``
aggregates — router counters, per-shard introspection, fleet-wide
sums.  A health loop pings shards: live ones that stop answering are
removed from the ring, known-but-down ones that answer again are
re-added (the fleet manager also drives both transitions directly
when it observes a shard process exit or restart).

Standalone use against already-running daemons::

    python -m repro.serve.router --port 7767 \\
        --shard a=127.0.0.1:7768 --shard b=127.0.0.1:7769
"""

from __future__ import annotations

import argparse
import asyncio
import bisect
import hashlib
import itertools
import os
import signal
import sys
import time
from dataclasses import dataclass, field

from .. import __version__
from .cache import cache_key, run_cache_key
from .metrics import Metrics
from .protocol import (MAX_LINE_BYTES, ProtocolError, decode_line,
                       encode_message, error_reply, validate_batch_request,
                       validate_compile_request, validate_run_request)

# Virtual nodes per shard on the ring.  96 points x sha256 keeps the
# per-shard share of the key space within a few percent of uniform for
# small fleets while add/remove stays O(replicas log n).
REPLICAS = 96


class ShardDown(Exception):
    """The shard died (or its connection did) before replying."""


class HashRing:
    """Consistent hashing: key -> shard, minimal movement on change.

    Each shard contributes ``replicas`` points at
    ``sha256(f"{name}#{i}")``; a key maps to the first point clockwise
    from ``sha256(key)``.  Removing a shard moves only the keys on its
    own arcs; every other key keeps its (warm) shard.
    """

    def __init__(self, replicas: int = REPLICAS):
        self.replicas = replicas
        self._points: list[int] = []      # sorted hash positions
        self._owners: list[str] = []      # shard name per position
        self._members: set[str] = set()

    @staticmethod
    def _hash(material: str) -> int:
        return int.from_bytes(
            hashlib.sha256(material.encode("utf-8")).digest()[:8], "big")

    @property
    def members(self) -> frozenset:
        return frozenset(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def add(self, name: str) -> None:
        if name in self._members:
            return
        self._members.add(name)
        for replica in range(self.replicas):
            point = self._hash(f"{name}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, name)

    def remove(self, name: str) -> None:
        if name not in self._members:
            return
        self._members.discard(name)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != name]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def lookup(self, key: str) -> str | None:
        """The shard owning *key*, or ``None`` on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect(self._points, self._hash(key))
        if index == len(self._points):
            index = 0  # wrap: past the last point -> first point
        return self._owners[index]


# ---------------------------------------------------------------------------
# pooled, pipelined shard connections
# ---------------------------------------------------------------------------


class _Conn:
    """One pipelined connection: many requests in flight, matched by id."""

    def __init__(self):
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.pending: dict[str, asyncio.Future] = {}
        self.reader_task: asyncio.Task | None = None
        self.dead = False


class ShardLink:
    """The router's transport to one shard: a small connection pool.

    Requests are tagged with router ids (``r<N>``) before they go on
    the wire and matched back by that id, so any number can be in
    flight per connection.  Connections are created lazily and
    round-robined; any transport failure fails *all* pending requests
    on that connection with :class:`ShardDown` (the router then
    redispatches them — requests are pure).
    """

    _rids = itertools.count()

    def __init__(self, name: str, host: str, port: int, *,
                 conns: int = 2, timeout: float = 300.0):
        self.name = name
        self.host = host
        self.port = port
        self.max_conns = max(1, conns)
        self.timeout = timeout
        self._conns: list[_Conn] = []
        self._next = 0
        self.closed = False

    async def request(self, message: dict) -> dict:
        """Forward one message; returns the shard's reply.

        The caller's ``id`` is preserved: the wire carries a router id,
        the reply comes back with the original (or none).
        Raises :class:`ShardDown` on any transport failure and
        :class:`asyncio.TimeoutError` if the shard sits on the request
        past the link timeout.
        """
        if self.closed:
            raise ShardDown(f"link to {self.name} is closed")
        conn = await self._pick()
        rid = f"r{next(self._rids)}"
        had_id = "id" in message
        client_id = message.get("id")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        conn.pending[rid] = future
        try:
            conn.writer.write(encode_message({**message, "id": rid}))
            await conn.writer.drain()
        except (ConnectionError, OSError) as exc:
            conn.pending.pop(rid, None)
            self._kill_conn(conn, f"write failed: {exc}")
            raise ShardDown(str(exc)) from exc
        try:
            reply = await asyncio.wait_for(future, self.timeout)
        except asyncio.TimeoutError:
            conn.pending.pop(rid, None)
            raise
        reply = dict(reply)
        if had_id and client_id is not None:
            reply["id"] = client_id
        else:
            reply.pop("id", None)
        return reply

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def _pick(self) -> _Conn:
        alive = [c for c in self._conns if not c.dead]
        if len(alive) < self.max_conns:
            conn = _Conn()
            try:
                conn.reader, conn.writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port,
                                            limit=MAX_LINE_BYTES + 2),
                    timeout=10.0)
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                raise ShardDown(f"connect to {self.name} failed: {exc}") \
                    from exc
            conn.reader_task = asyncio.create_task(self._read_loop(conn))
            self._conns.append(conn)
            alive.append(conn)
        self._next = (self._next + 1) % len(alive)
        return alive[self._next]

    async def _read_loop(self, conn: _Conn) -> None:
        try:
            while True:
                line = await conn.reader.readline()
                if not line:
                    break
                reply = decode_line(line)
                future = conn.pending.pop(reply.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (ConnectionError, OSError, ProtocolError,
                asyncio.LimitOverrunError, ValueError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            self._kill_conn(conn, "connection lost")

    def _kill_conn(self, conn: _Conn, reason: str) -> None:
        if conn.dead:
            return
        conn.dead = True
        if conn in self._conns:
            self._conns.remove(conn)
        for future in conn.pending.values():
            if not future.done():
                future.set_exception(ShardDown(
                    f"shard {self.name}: {reason}"))
        conn.pending.clear()
        if conn.writer is not None:
            conn.writer.close()

    def close(self) -> None:
        self.closed = True
        for conn in list(self._conns):
            if conn.reader_task is not None:
                conn.reader_task.cancel()
            self._kill_conn(conn, "link closed")


# ---------------------------------------------------------------------------
# the router
# ---------------------------------------------------------------------------


@dataclass
class ShardAddr:
    name: str
    host: str
    port: int


@dataclass
class RouterConfig:
    host: str = "127.0.0.1"
    port: int = 7767
    shards: list = field(default_factory=list)  # list[ShardAddr]
    conns_per_shard: int = 2
    # Router->shard budget per request; generous (the shard enforces
    # its own request_timeout) so only a wedged shard trips it.
    request_timeout: float = 300.0
    # Health loop cadence; large values effectively disable it (the
    # fleet manager drives membership directly in that case).
    health_interval: float = 2.0
    port_file: str | None = None


class Router:
    def __init__(self, config: RouterConfig | None = None):
        self.config = config or RouterConfig()
        self.metrics = Metrics()
        self.ring = HashRing()
        self._addrs: dict[str, ShardAddr] = {}
        self._links: dict[str, ShardLink] = {}
        self._health: dict[str, dict] = {}  # last ping identity per shard
        self._server: asyncio.base_events.Server | None = None
        self._health_task: asyncio.Task | None = None
        self._stopping = asyncio.Event()
        self._connections: set[asyncio.StreamWriter] = set()
        self.started = time.time()
        # The fleet manager plugs in extra stats (restarts, shard
        # process table) through this hook.
        self.extra_stats = None
        for addr in self.config.shards:
            self.add_shard(addr.name, addr.host, addr.port)

    # -- membership ---------------------------------------------------------

    def add_shard(self, name: str, host: str, port: int) -> None:
        """(Re-)register a shard and put it in rotation.

        Safe to call with a live shard (no-op) or with a restarted
        shard on a new port (link is replaced).  Links connect lazily,
        so this is synchronous and callable from supervisor code.
        """
        addr = self._addrs.get(name)
        if addr is not None and (addr.host, addr.port) != (host, port):
            self._drop_link(name)
        self._addrs[name] = ShardAddr(name, host, port)
        if name not in self._links:
            self._links[name] = ShardLink(
                name, host, port, conns=self.config.conns_per_shard,
                timeout=self.config.request_timeout)
        if name not in self.ring:
            self.ring.add(name)
            self.metrics.bump("shard_up_events")

    def note_shard_dead(self, name: str) -> None:
        """Take a shard out of rotation (supervisor or failed request)."""
        if name in self.ring:
            self.ring.remove(name)
            self.metrics.bump("shard_down_events")
        self._drop_link(name)

    def _drop_link(self, name: str) -> None:
        link = self._links.pop(name, None)
        if link is not None:
            link.close()

    def _link_for(self, name: str) -> ShardLink:
        link = self._links.get(name)
        if link is None:
            addr = self._addrs[name]
            link = self._links[name] = ShardLink(
                name, addr.host, addr.port,
                conns=self.config.conns_per_shard,
                timeout=self.config.request_timeout)
        return link

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=MAX_LINE_BYTES + 2)
        if self.config.health_interval > 0:
            self._health_task = asyncio.create_task(self._health_loop())
        if self.config.port_file:
            from pathlib import Path
            target = Path(self.config.port_file)
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp = target.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(str(self.port))
            os.replace(tmp, target)

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        self._stopping.set()
        if self._health_task is not None:
            self._health_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # In-process stops (tests, the fleet manager's own loop) must
        # unblock clients parked on open connections.
        for writer in list(self._connections):
            writer.close()
        for name in list(self._links):
            self._drop_link(name)

    async def run(self) -> None:
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self._stopping.set)
        try:
            await self._stopping.wait()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(signum)
            await self.stop()

    # -- health -------------------------------------------------------------

    async def _health_loop(self) -> None:
        while not self._stopping.is_set():
            await asyncio.sleep(self.config.health_interval)
            for name in list(self._addrs):
                await self._health_check(name)

    async def _health_check(self, name: str) -> None:
        """Ping one shard; drive ring membership from the answer."""
        addr = self._addrs.get(name)
        if addr is None:
            return
        in_ring = name in self.ring
        try:
            if in_ring:
                reply = await asyncio.wait_for(
                    self._link_for(name).ping(), timeout=5.0)
            else:
                # Down shard: probe on a throwaway link so a dead
                # address can't wedge the pooled path.
                probe = ShardLink(name, addr.host, addr.port, conns=1,
                                  timeout=5.0)
                try:
                    reply = await asyncio.wait_for(probe.ping(),
                                                   timeout=5.0)
                finally:
                    probe.close()
        except (ShardDown, asyncio.TimeoutError):
            if in_ring:
                self.note_shard_dead(name)
            return
        if reply.get("pong"):
            self._health[name] = {
                "version": reply.get("version"),
                "pid": reply.get("pid"),
                "shard": reply.get("shard"),
                "checked_at": round(time.time(), 3)}
            if not in_ring:
                self.add_shard(name, addr.host, addr.port)

    # -- connections (same concurrent-line pattern as the shard server) ----

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        self._connections.add(writer)
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    async with write_lock:
                        await self._send(writer, error_reply(
                            "oversized",
                            f"request line exceeds {MAX_LINE_BYTES} bytes"))
                    break
                if not line or not line.endswith(b"\n"):
                    break
                if line.strip() == b"":
                    continue
                task = asyncio.create_task(
                    self._serve_line(line, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    reply: dict) -> None:
        writer.write(encode_message(reply))
        await writer.drain()

    async def _send_locked(self, writer, write_lock, reply: dict) -> None:
        try:
            async with write_lock:
                await self._send(writer, reply)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def _serve_line(self, line: bytes, writer,
                          write_lock: asyncio.Lock) -> None:
        try:
            message = decode_line(line)
        except ProtocolError as exc:
            self.metrics.bump("requests_total")
            self.metrics.bump(f"errors_{exc.code}")
            await self._send_locked(writer, write_lock, exc.as_reply(None))
            return
        if message.get("op") == "batch":
            await self._serve_batch(message, writer, write_lock)
            return
        reply = await self._dispatch_message(message)
        await self._send_locked(writer, write_lock, reply)

    async def _serve_batch(self, message: dict, writer,
                           write_lock: asyncio.Lock) -> None:
        """Decompose a batch: each sub-request routes by its *own* key,
        so one client line fans out across the fleet; sub-replies
        stream back in completion order."""
        self.metrics.bump("requests_total")
        self.metrics.bump("batch_requests")
        batch_id = message.get("id")
        try:
            subs = validate_batch_request(message)
        except ProtocolError as exc:
            self.metrics.bump(f"errors_{exc.code}")
            await self._send_locked(writer, write_lock,
                                    exc.as_reply(batch_id))
            return

        async def one(sub: dict) -> bool:
            reply = await self._dispatch_message(sub)
            reply.setdefault("id", sub["id"])
            if batch_id is not None:
                reply["batch"] = batch_id
            await self._send_locked(writer, write_lock, reply)
            return bool(reply.get("ok"))

        oks = await asyncio.gather(*(one(sub) for sub in subs))
        summary = {"ok": True, "batch_complete": True,
                   "replies": len(oks), "failed": oks.count(False)}
        if batch_id is not None:
            summary["batch"] = batch_id
            summary["id"] = batch_id
        await self._send_locked(writer, write_lock, summary)

    # -- routing ------------------------------------------------------------

    async def _dispatch_message(self, message: dict) -> dict:
        started = time.perf_counter()
        self.metrics.bump("requests_total")
        request_id = message.get("id")
        try:
            op = message.get("op")
            if op == "ping":
                return self._ping_reply(request_id)
            if op == "stats":
                return await self._stats_reply(request_id)
            if op in ("compile", "run"):
                key = self._routing_key(message)
                return await self._forward(key, message, request_id)
            if op == "batch":
                raise ProtocolError("bad-request", "batches do not nest")
            raise ProtocolError("bad-request",
                                f"unknown op {op!r}; expected "
                                f"'compile', 'run', 'batch', 'stats' or "
                                f"'ping'")
        except ProtocolError as exc:
            self.metrics.bump(f"errors_{exc.code}")
            return exc.as_reply(request_id)
        finally:
            self.metrics.observe("request", time.perf_counter() - started)

    def _routing_key(self, message: dict) -> str:
        """The shard-affinity key: exactly the shard's own cache key.

        Validation happens here, *before* any shard sees the request —
        a malformed request (unknown op, bad options field, ...) gets
        the same structured ``bad-request`` reply routed clients would
        get from a direct connection.
        """
        if message.get("op") == "compile":
            request = validate_compile_request(message)
            derive = cache_key
        else:
            request = validate_run_request(message)
            derive = run_cache_key
        try:
            return derive(request)
        except ValueError as exc:  # unknown OptimizeOptions field
            raise ProtocolError("bad-request", str(exc)) from exc

    async def _forward(self, key: str, message: dict, request_id) -> dict:
        """Route by ring, forward, redispatch on shard death.

        Every attempt re-consults the ring, so after a failure the key
        lands on the next live shard.  Attempts are bounded by the
        fleet size: once every shard has failed us the ring is empty
        and the loop exits with ``unavailable``.
        """
        attempts = len(self.ring) + 1
        for _ in range(attempts):
            name = self.ring.lookup(key)
            if name is None:
                break
            link = self._link_for(name)
            try:
                reply = await link.request(message)
            except ShardDown:
                self.note_shard_dead(name)
                self.metrics.bump("redispatches")
                continue
            except asyncio.TimeoutError:
                self.metrics.bump("shard_timeouts")
                return error_reply(
                    "unavailable",
                    f"shard {name} did not answer within "
                    f"{self.config.request_timeout}s", request_id=request_id)
            self.metrics.bump("routed")
            return reply
        self.metrics.bump("errors_unavailable")
        return error_reply("unavailable", "no live shard available",
                           request_id=request_id)

    # -- introspection ------------------------------------------------------

    def _ping_reply(self, request_id) -> dict:
        reply = {"ok": True, "pong": True, "role": "router",
                 "version": __version__, "pid": os.getpid(),
                 "shards_live": len(self.ring),
                 "shards_known": len(self._addrs)}
        if request_id is not None:
            reply["id"] = request_id
        return reply

    async def _stats_reply(self, request_id) -> dict:
        """Fleet-wide stats: router counters + per-shard introspection
        merged into fleet totals."""
        names = sorted(self.ring.members)

        async def shard_stats(name: str):
            try:
                return name, await asyncio.wait_for(
                    self._link_for(name).request({"op": "stats"}),
                    timeout=10.0)
            except (ShardDown, asyncio.TimeoutError) as exc:
                return name, {"ok": False, "error": str(exc)}

        gathered = await asyncio.gather(*(shard_stats(n) for n in names))
        shards = dict(gathered)
        reply = {
            "ok": True,
            "role": "router",
            "router": {
                "uptime_s": round(time.time() - self.started, 3),
                "shards_live": len(self.ring),
                "shards_known": len(self._addrs),
                "health": dict(self._health),
                **self.metrics.snapshot(),
            },
            "shards": shards,
            "fleet": _merge_fleet(shards),
        }
        if self.extra_stats is not None:
            try:
                reply["fleet"].update(self.extra_stats())
            except Exception:
                pass  # introspection must never take a request down
        if request_id is not None:
            reply["id"] = request_id
        return reply


def _merge_fleet(shards: dict[str, dict]) -> dict:
    """Sum per-shard stats into one fleet view."""
    fleet = {"shards_reporting": 0, "workers": 0, "worker_crashes": 0,
             "pending": 0, "counters": {}, "cache": {
                 "hits_memory": 0, "hits_disk": 0, "misses": 0,
                 "memory_entries": 0, "evictions": 0, "evicted_bytes": 0,
                 "gc_sweeps": 0}}
    for stats in shards.values():
        if not stats.get("ok"):
            continue
        fleet["shards_reporting"] += 1
        for key in ("workers", "worker_crashes", "pending"):
            fleet[key] += stats.get(key, 0)
        for name, value in (stats.get("counters") or {}).items():
            if isinstance(value, (int, float)):
                fleet["counters"][name] = \
                    fleet["counters"].get(name, 0) + value
        cache = stats.get("cache") or {}
        for name in fleet["cache"]:
            value = cache.get(name, 0)
            if isinstance(value, (int, float)):
                fleet["cache"][name] += value
    hits = fleet["cache"]["hits_memory"] + fleet["cache"]["hits_disk"]
    lookups = hits + fleet["cache"]["misses"]
    fleet["cache"]["hit_rate"] = \
        0.0 if not lookups else round(hits / lookups, 4)
    return fleet


# ---------------------------------------------------------------------------
# standalone entry point: python -m repro.serve.router
# ---------------------------------------------------------------------------


def _parse_shard(spec: str, index: int) -> ShardAddr:
    """``name=host:port`` or ``host:port`` (auto-named s<index>)."""
    name, sep, rest = spec.partition("=")
    if not sep:
        name, rest = f"s{index}", spec
    host, sep, port = rest.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"shard spec {spec!r} is not [name=]host:port")
    return ShardAddr(name, host or "127.0.0.1", int(port))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.router",
        description="consistent-hash front-end router over running "
                    "compile daemons")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7767)
    parser.add_argument("--shard", action="append", default=[],
                        metavar="[NAME=]HOST:PORT", required=False,
                        help="a shard daemon to route to (repeatable)")
    parser.add_argument("--conns-per-shard", type=int, default=2,
                        metavar="N")
    parser.add_argument("--request-timeout", type=float, default=300.0,
                        metavar="S")
    parser.add_argument("--health-interval", type=float, default=2.0,
                        metavar="S")
    parser.add_argument("--port-file", default=None)
    args = parser.parse_args(argv)
    if not args.shard:
        parser.error("at least one --shard is required")
    shards = [_parse_shard(spec, index)
              for index, spec in enumerate(args.shard)]
    config = RouterConfig(
        host=args.host, port=args.port, shards=shards,
        conns_per_shard=args.conns_per_shard,
        request_timeout=args.request_timeout,
        health_interval=args.health_interval,
        port_file=args.port_file)
    print(f"repro.serve.router on {config.host}:{config.port} -> "
          f"{', '.join(f'{s.name}@{s.host}:{s.port}' for s in shards)}",
          flush=True)
    asyncio.run(Router(config).run())
    print("repro.serve.router: clean shutdown", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

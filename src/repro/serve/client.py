"""Blocking client for the compile service.

Synchronous on purpose: tests, benchmarks and shell scripts want a
plain request/reply call, not an event loop.  One socket, line-framed
JSON both ways; safe to reuse across requests, not across threads.

    with ServeClient("127.0.0.1", 7767) as client:
        reply = client.compile(source, opt="static")
        assert reply["ok"]
        print(reply["artifacts"]["ir"])
"""

from __future__ import annotations

import json
import socket

from .protocol import MAX_LINE_BYTES, encode_message


class ServeClientError(Exception):
    """Transport-level failure (connection, framing) — not an error reply."""


class ServeClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 7767, *,
                 timeout: float | None = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._buffer = b""

    def connect(self) -> "ServeClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- wire ---------------------------------------------------------------

    def request(self, message: dict) -> dict:
        """Send one request object; block for its reply object."""
        self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(encode_message(message))
            line = self._read_line()
        except OSError as exc:
            self.close()
            raise ServeClientError(f"transport failure: {exc}") from exc
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServeClientError(
                f"server sent a non-JSON reply: {line[:200]!r}") from exc

    def _read_line(self) -> bytes:
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ServeClientError("reply exceeded the line limit")
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServeClientError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    # -- convenience --------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def compile(self, source: str, *, opt: str = "static",
                entry: str | None = None,
                train_args: list | None = None,
                options: dict | None = None,
                profile: dict | None = None,
                fault: dict | None = None,
                request_id=None) -> dict:
        message: dict = {"op": "compile", "source": source, "opt": opt}
        if entry is not None:
            message["entry"] = entry
        if train_args is not None:
            message["train_args"] = [list(a) for a in train_args]
        if options:
            message["options"] = options
        if profile is not None:
            message["profile"] = profile
        if fault is not None:
            message["fault"] = fault
        if request_id is not None:
            message["id"] = request_id
        return self.request(message)

    def run(self, source: str, args: list, *, entry: str = "main",
            options: dict | None = None, request_id=None) -> dict:
        """Execute *entry* on each argument list; the server picks the
        tier (and promotes hot programs to native behind the scenes)."""
        message: dict = {"op": "run", "source": source, "entry": entry,
                         "args": [list(a) for a in args]}
        if options:
            message["options"] = options
        if request_id is not None:
            message["id"] = request_id
        return self.request(message)

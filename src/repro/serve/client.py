"""Blocking client for the compile service.

Synchronous on purpose: tests, benchmarks and shell scripts want a
plain request/reply call, not an event loop.  One socket, line-framed
JSON both ways; safe to reuse across requests, not across threads.

    with ServeClient("127.0.0.1", 7767) as client:
        reply = client.compile(source, opt="static")
        assert reply["ok"]
        print(reply["artifacts"]["ir"])

An ``overloaded`` error reply means the server shed the request under
admission control and said "retry later" — so the client does, with
bounded exponential backoff plus jitter (:func:`backoff_delay`; opt
out with ``retry_overloaded=False``).  Works against a single daemon
and a fleet router alike; ``batch``/``batch_iter`` speak the batch op
and consume the streamed sub-replies.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Iterator

from .protocol import MAX_LINE_BYTES, encode_message

# Bounded-retry defaults for overloaded replies: 5 attempts spanning
# roughly 50ms..800ms of backoff (plus jitter) — long enough to ride
# out a load spike, short enough that a truly saturated fleet still
# surfaces the overloaded error to the caller.
RETRY_ATTEMPTS = 5
RETRY_BASE = 0.05
RETRY_CAP = 2.0


def backoff_delay(attempt: int, base: float = RETRY_BASE,
                  cap: float = RETRY_CAP, rng=random) -> float:
    """Exponential backoff with jitter for retry *attempt* (0-based).

    ``min(cap, base * 2**attempt)`` scaled by a uniform factor in
    [0.5, 1.5) so a thundering herd of shed clients decorrelates.
    Shared by the blocking client and the S2 async load generator.
    """
    return min(cap, base * (2 ** attempt)) * (0.5 + rng.random())


class ServeClientError(Exception):
    """Transport-level failure (connection, framing) — not an error reply."""


class ServeClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 7767, *,
                 timeout: float | None = 60.0,
                 retry_overloaded: bool = True,
                 retry_attempts: int = RETRY_ATTEMPTS,
                 retry_base: float = RETRY_BASE,
                 retry_cap: float = RETRY_CAP):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_overloaded = retry_overloaded
        self.retry_attempts = retry_attempts
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.retries = 0  # overloaded replies retried, for telemetry
        self._sock: socket.socket | None = None
        self._buffer = b""

    def connect(self) -> "ServeClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- wire ---------------------------------------------------------------

    def request(self, message: dict) -> dict:
        """Send one request object; block for its reply object.

        Overloaded replies are retried with bounded backoff unless the
        client was built with ``retry_overloaded=False``; the last
        overloaded reply is returned when the budget runs out.
        """
        attempts = self.retry_attempts if self.retry_overloaded else 0
        for attempt in range(attempts + 1):
            reply = self._request_once(message)
            if (reply.get("ok")
                    or reply.get("error", {}).get("code") != "overloaded"
                    or attempt == attempts):
                return reply
            self.retries += 1
            time.sleep(backoff_delay(attempt, self.retry_base,
                                     self.retry_cap))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(self, message: dict) -> dict:
        self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(encode_message(message))
            line = self._read_line()
        except OSError as exc:
            self.close()
            raise ServeClientError(f"transport failure: {exc}") from exc
        return self._decode(line)

    @staticmethod
    def _decode(line: bytes) -> dict:
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServeClientError(
                f"server sent a non-JSON reply: {line[:200]!r}") from exc

    def _read_line(self) -> bytes:
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ServeClientError("reply exceeded the line limit")
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServeClientError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    # -- convenience --------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def compile(self, source: str, *, opt: str = "static",
                entry: str | None = None,
                train_args: list | None = None,
                options: dict | None = None,
                profile: dict | None = None,
                fault: dict | None = None,
                request_id=None) -> dict:
        message: dict = {"op": "compile", "source": source, "opt": opt}
        if entry is not None:
            message["entry"] = entry
        if train_args is not None:
            message["train_args"] = [list(a) for a in train_args]
        if options:
            message["options"] = options
        if profile is not None:
            message["profile"] = profile
        if fault is not None:
            message["fault"] = fault
        if request_id is not None:
            message["id"] = request_id
        return self.request(message)

    def run(self, source: str, args: list, *, entry: str = "main",
            options: dict | None = None, request_id=None) -> dict:
        """Execute *entry* on each argument list; the server picks the
        tier (and promotes hot programs to native behind the scenes)."""
        message: dict = {"op": "run", "source": source, "entry": entry,
                         "args": [list(a) for a in args]}
        if options:
            message["options"] = options
        if request_id is not None:
            message["id"] = request_id
        return self.request(message)

    # -- the batch op -------------------------------------------------------

    def batch_iter(self, requests: list, *,
                   request_id=None) -> Iterator[dict]:
        """Send one batch line; yield sub-replies as they stream back.

        The final summary line (``batch_complete``) is yielded last.
        Sub-replies arrive in *completion* order, each tagged with its
        sub-request's ``id`` (index when the sub-request had none).
        No automatic overloaded retry here — sub-replies are per-id,
        so callers decide which sub-requests to resend.
        """
        message: dict = {"op": "batch",
                         "requests": [dict(r) for r in requests]}
        if request_id is not None:
            message["id"] = request_id
        self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(encode_message(message))
            while True:
                reply = self._decode(self._read_line())
                yield reply
                if reply.get("batch_complete"):
                    return  # the summary line closes the stream
                if not reply.get("ok") and "batch" not in reply and \
                        reply.get("id") == request_id:
                    # The batch envelope itself was rejected (one error
                    # reply, no sub-replies follow).  Sub errors carry
                    # a "batch" tag or a sub id and don't match here.
                    return
        except OSError as exc:
            self.close()
            raise ServeClientError(f"transport failure: {exc}") from exc

    def batch(self, requests: list, *,
              request_id=None) -> tuple[dict, dict]:
        """Send a batch; return ``(replies_by_id, summary)``."""
        replies: dict = {}
        summary: dict = {}
        for reply in self.batch_iter(requests, request_id=request_id):
            if reply.get("batch_complete"):
                summary = reply
            else:
                replies[reply.get("id")] = reply
        return replies, summary

"""CI smoke driver for fleet mode: ``python -m repro.serve.fleet_smoke``.

Boots a real fleet (``python -m repro.serve --shards N`` subprocess),
drives it with batched mixed compile/run traffic, SIGKILLs one shard
in the middle of the run, and asserts the fleet contract:

* every batch sub-reply is ``ok`` — **zero** client-visible failures,
  including the batches in flight when the shard dies (the router
  redispatches them to live shards);
* artifacts are byte-identical to a direct in-process compile;
* the fleet ``stats`` op reflects the kill: ``fleet.restarts >= 1``
  and all shards back in the ring;
* SIGTERM produces a staggered drain and a clean exit (status 0).

Exit status 0 = contract holds.  Used by the ``fleet-smoke`` CI job.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

from ..programs.suite import ALL_PROGRAMS
from .client import ServeClient
from .worker import compile_request


def _mixed_requests(count: int) -> list[dict]:
    """Deterministic mixed traffic: compiles at two levels + runs.

    Compiles cover the whole suite; run traffic sticks to the cheap
    programs so the smoke exercises the run path without paying for
    interp-tier heavyweights on small CI boxes.
    """
    cheap = {"pow", "ackermann", "nqueens", "sieve", "compose"}
    pool: list[dict] = []
    for program in ALL_PROGRAMS:
        pool.append({"op": "compile", "source": program.source,
                     "opt": "none"})
        pool.append({"op": "compile", "source": program.source,
                     "opt": "static"})
        if program.name in cheap:
            pool.append({"op": "run", "source": program.source,
                         "entry": program.entry,
                         "args": [list(program.test_args)]})
    return [dict(pool[index % len(pool)]) for index in range(count)]


def _wait_for_port(port_file: str, proc: subprocess.Popen,
                   deadline: float) -> int:
    while True:
        if proc.poll() is not None:
            raise SystemExit(f"fleet exited during startup "
                             f"({proc.returncode})")
        try:
            return int(open(port_file).read())
        except (OSError, ValueError):
            if time.monotonic() > deadline:
                raise SystemExit("fleet did not report a router port")
            time.sleep(0.2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.fleet_smoke")
    parser.add_argument("--shards", type=int, default=4, metavar="N")
    parser.add_argument("--requests", type=int, default=200, metavar="N")
    parser.add_argument("--batch-size", type=int, default=20, metavar="N")
    parser.add_argument("--identity-checks", type=int, default=4,
                        metavar="N")
    args = parser.parse_args(argv)

    tmp = tempfile.mkdtemp(prefix="fleet-smoke-")
    port_file = os.path.join(tmp, "router.port")
    fleet = subprocess.Popen(
        [sys.executable, "-m", "repro.serve",
         "--shards", str(args.shards), "--port", "0",
         "--port-file", port_file, "--workers", "1",
         "--max-pending", "64", "--no-native",
         "--cache-dir", os.path.join(tmp, "cache"),
         "--crash-dir", os.path.join(tmp, "crashes")],
        env={**os.environ, "PYTHONPATH": os.environ.get("PYTHONPATH", "")})
    failures: list[str] = []
    try:
        port = _wait_for_port(port_file, fleet,
                              time.monotonic() + 120.0)
        client = ServeClient(port=port, timeout=300.0)

        ping = client.ping()
        if ping.get("role") != "router" or \
                ping.get("shards_live") != args.shards:
            failures.append(f"unexpected router ping: {ping}")

        victim = None
        stats = client.stats()
        procs = stats["fleet"].get("shard_procs", {})
        if procs:
            victim = sorted(procs.values(),
                            key=lambda p: p["port"] or 0)[0]["pid"]
        if victim is None:
            failures.append(f"no shard pids in fleet stats: {stats}")

        requests = _mixed_requests(args.requests)
        batches = [requests[i:i + args.batch_size]
                   for i in range(0, len(requests), args.batch_size)]
        kill_at = len(batches) // 2
        done = failed = 0
        for index, batch in enumerate(batches):
            if index == kill_at and victim is not None:
                os.kill(victim, signal.SIGKILL)
                print(f"SIGKILLed shard pid {victim} before batch "
                      f"{index}", flush=True)
            replies, summary = client.batch(batch, request_id=index)
            done += summary.get("replies", 0)
            if summary.get("failed"):
                failed += summary["failed"]
                for sub_id, reply in replies.items():
                    if not reply.get("ok"):
                        failures.append(
                            f"batch {index} sub {sub_id} failed: "
                            f"{reply.get('error')}")
        print(f"{done} batched sub-replies, {failed} failed", flush=True)
        if failed:
            failures.append(f"{failed} failed replies (want 0, the "
                            f"router must redispatch)")

        # Byte-identity through the fleet: routed compile == direct.
        for index in range(args.identity_checks):
            program = ALL_PROGRAMS[index % len(ALL_PROGRAMS)]
            request = {"op": "compile", "source": program.source,
                       "opt": "static"}
            reply = client.request(dict(request))
            if not reply.get("ok"):
                failures.append(f"identity request failed: {reply}")
                continue
            direct = compile_request(dict(request))
            for artifact in ("ir", "c", "bytecode"):
                if reply["artifacts"].get(artifact) != \
                        direct.get(artifact):
                    failures.append(
                        f"{program.name}: artifact {artifact!r} differs "
                        f"between fleet and direct compile")
        print(f"byte-identity verified on {args.identity_checks} "
              f"request(s)", flush=True)

        # The supervisor must have restarted the killed shard and the
        # stats op must say so.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            stats = client.stats()
            if stats["fleet"].get("restarts", 0) >= 1 and \
                    stats["router"]["shards_live"] == args.shards:
                break
            time.sleep(0.5)
        restarts = stats["fleet"].get("restarts", 0)
        live = stats["router"]["shards_live"]
        redispatches = stats["router"]["counters"].get("redispatches", 0)
        print(f"restarts={restarts} shards_live={live} "
              f"redispatches={redispatches}", flush=True)
        if restarts < 1:
            failures.append(f"fleet stats do not reflect the restart: "
                            f"{stats['fleet']}")
        if live != args.shards:
            failures.append(f"{live}/{args.shards} shards live after "
                            f"restart window")
        client.close()
    finally:
        fleet.send_signal(signal.SIGTERM)
        try:
            exit_code = fleet.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            fleet.kill()
            exit_code = None
    if exit_code != 0:
        failures.append(f"fleet exit status {exit_code} after SIGTERM "
                        f"(want 0)")
    else:
        print("clean staggered SIGTERM shutdown")

    if failures:
        print("FLEET SMOKE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("fleet smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Lexer for Impala-lite.

The surface language is a small Rust-like language in the spirit of the
paper's Impala frontend: imperative control flow plus first-class and
higher-order functions, with ``@``/``$`` partial-evaluation markers on
calls.
"""

from __future__ import annotations

import enum

from .errors import LexError, SourceLoc


class TokKind(enum.Enum):
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    PUNCT = "punct"
    KEYWORD = "keyword"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "fn", "let", "mut", "if", "else", "while", "for", "in",
        "break", "continue", "return", "as", "true", "false", "extern",
        "struct",
    }
)

# Longest first so maximal-munch works by ordered scan.
PUNCTUATION = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "->", "..", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "(",
    ")", "{", "}", "[", "]", ",", ";", ":", ".", "@", "$",
)

INT_SUFFIXES = ("i8", "i16", "i32", "i64", "u8", "u16", "u32", "u64")
FLOAT_SUFFIXES = ("f32", "f64")


class Token:
    __slots__ = ("kind", "text", "value", "loc")

    def __init__(self, kind: TokKind, text: str, loc: SourceLoc, value=None):
        self.kind = kind
        self.text = text
        self.loc = loc
        self.value = value

    def is_punct(self, text: str) -> bool:
        return self.kind is TokKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.kind.value} {self.text!r} @{self.loc}>"


class Lexer:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _loc(self) -> SourceLoc:
        return SourceLoc(self.line, self.col)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            c = self._peek()
            if c in " \t\r\n":
                self._advance()
            elif c == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif c == "/" and self._peek(1) == "*":
                loc = self._loc()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise LexError("unterminated block comment", loc)
                    self._advance()
                self._advance(2)
            else:
                return

    def tokens(self) -> list[Token]:
        result = []
        while True:
            tok = self.next_token()
            result.append(tok)
            if tok.kind is TokKind.EOF:
                return result

    def next_token(self) -> Token:
        self._skip_trivia()
        loc = self._loc()
        c = self._peek()
        if not c:
            return Token(TokKind.EOF, "", loc)
        if c.isdigit():
            return self._number(loc)
        if c.isalpha() or c == "_":
            return self._ident(loc)
        for punct in PUNCTUATION:
            if self.source.startswith(punct, self.pos):
                # `..` must not eat the dot of a float like `0..`; and
                # `1.5` is handled by _number, so order is safe here.
                self._advance(len(punct))
                return Token(TokKind.PUNCT, punct, loc)
        raise LexError(f"stray character {c!r}", loc)

    def _ident(self, loc: SourceLoc) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
        return Token(kind, text, loc)

    def _number(self, loc: SourceLoc) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self.source[start:self.pos]
            body, suffix = self._split_suffix(text, INT_SUFFIXES)
            try:
                value = int(body.replace("_", ""), 16)
            except ValueError:
                raise LexError(f"bad hex literal {text!r}", loc) from None
            return Token(TokKind.INT, text, loc, (value, suffix))
        while self._peek().isdigit() or self._peek() == "_":
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit() or self._peek() == "_":
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        # Trailing type suffix (e.g. 1i32, 2.5f32) rides on the token.
        suffix_start = self.pos
        while self._peek().isalnum():
            self._advance()
        text = self.source[start:self.pos]
        suffix = self.source[suffix_start:self.pos]
        body = self.source[start:suffix_start].replace("_", "")
        if suffix in FLOAT_SUFFIXES:
            return Token(TokKind.FLOAT, text, loc, (float(body), suffix))
        if is_float:
            if suffix:
                raise LexError(f"bad float suffix {suffix!r}", loc)
            return Token(TokKind.FLOAT, text, loc, (float(body), None))
        if suffix in INT_SUFFIXES:
            return Token(TokKind.INT, text, loc, (int(body), suffix))
        if suffix:
            raise LexError(f"bad integer suffix {suffix!r}", loc)
        return Token(TokKind.INT, text, loc, (int(body), None))

    @staticmethod
    def _split_suffix(text: str, suffixes) -> tuple[str, str | None]:
        for suffix in suffixes:
            if text.endswith(suffix):
                return text[: -len(suffix)], suffix
        return text, None


def tokenize(source: str) -> list[Token]:
    return Lexer(source).tokens()

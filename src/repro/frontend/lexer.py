"""Lexer for Impala-lite.

The surface language is a small Rust-like language in the spirit of the
paper's Impala frontend: imperative control flow plus first-class and
higher-order functions, with ``@``/``$`` partial-evaluation markers on
calls.

Tokenization is a single pass of one compiled master regex (trivia,
numbers, identifiers and maximal-munch punctuation as ordered
alternatives); a char-at-a-time scanner spends most of its time in
method-call overhead, and the lexer sits on the floor of every
compile-time measurement.
"""

from __future__ import annotations

import enum
import re

from .errors import LexError, SourceLoc


class TokKind(enum.Enum):
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    PUNCT = "punct"
    KEYWORD = "keyword"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "fn", "let", "mut", "if", "else", "while", "for", "in",
        "break", "continue", "return", "as", "true", "false", "extern",
        "struct",
    }
)

# Longest first so maximal-munch works by ordered scan.
PUNCTUATION = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "->", "..", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "(",
    ")", "{", "}", "[", "]", ",", ";", ":", ".", "@", "$",
)

INT_SUFFIXES = ("i8", "i16", "i32", "i64", "u8", "u16", "u32", "u64")
FLOAT_SUFFIXES = ("f32", "f64")

# One alternative per token class, tried in order, so earlier classes
# shadow later ones exactly like the old sequential scanner did:
# complete block comments are trivia, a dangling ``/*`` is an error;
# hex literals win over a decimal ``0`` with an ``x...`` suffix; the
# punctuation alternation preserves the longest-first PUNCTUATION order.
# A decimal number is body (digits, optional fraction — only when a
# digit follows the dot, so ``0..10`` lexes as ``0`` ``..`` ``10`` —
# and optional exponent) plus a trailing alphanumeric run that the
# number parser validates as a type suffix.
_TOKEN_RE = re.compile(
    r"""
      (?P<trivia>(?:[ \t\r\n]+|//[^\n]*|/\*(?:[^*]|\*(?!/))*\*/)+)
    | (?P<badcomment>/\*)
    | (?P<hex>0[xX][0-9a-zA-Z_]*)
    | (?P<body>[0-9][0-9_]*
        (?P<frac>\.[0-9][0-9_]*)?
        (?P<exp>[eE][+-]?[0-9]+)?)
      (?P<suffix>[0-9a-zA-Z_]*)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<punct><<=|>>=|==|!=|<=|>=|&&|\|\||->|\.\.|\+=|-=|\*=|/=|%=
        |&=|\|=|\^=|<<|>>
        |[-+*/%=<>!&|^(){}\[\],;:.@$])
    """,
    re.VERBOSE,
)


class Token:
    __slots__ = ("kind", "text", "value", "loc")

    def __init__(self, kind: TokKind, text: str, loc: SourceLoc, value=None):
        self.kind = kind
        self.text = text
        self.loc = loc
        self.value = value

    def is_punct(self, text: str) -> bool:
        return self.kind is TokKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.kind.value} {self.text!r} @{self.loc}>"


class Lexer:
    def __init__(self, source: str):
        self.source = source

    def tokens(self) -> list[Token]:
        source = self.source
        length = len(source)
        result: list[Token] = []
        match = _TOKEN_RE.match
        pos = 0
        line, col = 1, 1
        while pos < length:
            m = match(source, pos)
            if m is None:
                raise LexError(
                    f"stray character {source[pos]!r}", SourceLoc(line, col)
                )
            loc = SourceLoc(line, col)
            group = m.group
            if group("trivia") is None:
                if group("badcomment") is not None:
                    raise LexError("unterminated block comment", loc)
                if group("ident") is not None:
                    text = m.group()
                    kind = (TokKind.KEYWORD if text in KEYWORDS
                            else TokKind.IDENT)
                    result.append(Token(kind, text, loc))
                elif group("punct") is not None:
                    result.append(Token(TokKind.PUNCT, m.group(), loc))
                else:
                    result.append(self._number(m, loc))
            text = m.group()
            newlines = text.count("\n")
            if newlines:
                line += newlines
                col = len(text) - text.rfind("\n")
            else:
                col += len(text)
            pos = m.end()
        result.append(Token(TokKind.EOF, "", SourceLoc(line, col)))
        return result

    def _number(self, m: "re.Match[str]", loc: SourceLoc) -> Token:
        text = m.group()
        if m.group("hex") is not None:
            body, suffix = self._split_suffix(text, INT_SUFFIXES)
            try:
                value = int(body.replace("_", ""), 16)
            except ValueError:
                raise LexError(f"bad hex literal {text!r}", loc) from None
            return Token(TokKind.INT, text, loc, (value, suffix))
        body = m.group("body").replace("_", "")
        suffix = m.group("suffix")
        is_float = (m.group("frac") is not None
                    or m.group("exp") is not None)
        if suffix in FLOAT_SUFFIXES:
            return Token(TokKind.FLOAT, text, loc, (float(body), suffix))
        if is_float:
            if suffix:
                raise LexError(f"bad float suffix {suffix!r}", loc)
            return Token(TokKind.FLOAT, text, loc, (float(body), None))
        if suffix in INT_SUFFIXES:
            return Token(TokKind.INT, text, loc, (int(body), suffix))
        if suffix:
            raise LexError(f"bad integer suffix {suffix!r}", loc)
        return Token(TokKind.INT, text, loc, (int(body), None))

    @staticmethod
    def _split_suffix(text: str, suffixes) -> tuple[str, str | None]:
        for suffix in suffixes:
            if text.endswith(suffix):
                return text[: -len(suffix)], suffix
        return text, None


def tokenize(source: str) -> list[Token]:
    return Lexer(source).tokens()

"""Recursive-descent parser for Impala-lite.

Grammar sketch (Rust-flavoured)::

    module   := fn_decl*
    fn_decl  := 'extern'? 'fn' IDENT '(' params ')' ('->' type)? block
    params   := (IDENT ':' type) % ','
    type     := 'i8'..'u64' | 'f32' | 'f64' | 'bool' | '()'
              | 'fn' '(' type % ',' ')' ('->' type)?
              | '(' type % ',' ')' | '[' type ';' INT ']' | '&' '[' type ']'
    block    := '{' stmt* expr? '}'
    stmt     := 'let' 'mut'? IDENT (':' type)? '=' expr ';'
              | expr ('=' | '+=' | ...) expr ';'
              | 'while' expr block | 'for' IDENT 'in' expr '..' expr block
              | 'break' ';' | 'continue' ';' | 'return' expr? ';'
              | expr ';' | expr  (trailing block result)
    expr     := lambda | if | binary
    lambda   := '|' params '|' ('->' type)? (block | expr)
    call     := ('@' | '$')? postfix '(' expr % ',' ')'

Blocks follow the Rust rule: the last expression without a trailing
semicolon is the block's value.
"""

from __future__ import annotations

from . import ast
from .errors import ParseError
from .lexer import INT_SUFFIXES, FLOAT_SUFFIXES, TokKind, Token, tokenize

PRIM_TYPE_NAMES = frozenset(
    {"bool", "i8", "i16", "i32", "i64", "u8", "u16", "u32", "u64", "f32", "f64"}
)

ASSIGN_OPS = {
    "=": None, "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

# Binary precedence, loosest first.
BINARY_LEVELS = [
    ("||",),
    ("&&",),
    ("==", "!=", "<", "<=", ">", ">="),
    ("|",),
    ("^",),
    ("&",),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

# Maximum nesting of expressions/types/blocks.  The parser recurses on
# nested constructs; without an explicit bound, adversarial input like
# ten thousand `(`s would ride the process recursion limit (bumped high
# in ``repro/__init__`` for graph traversals) straight into a CPython
# stack overflow.  Real programs nest a few dozen levels at most.
MAX_NESTING_DEPTH = 500


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self._depth = 0

    def _enter(self, what: str) -> None:
        self._depth += 1
        if self._depth > MAX_NESTING_DEPTH:
            raise ParseError(
                f"{what} nested deeper than {MAX_NESTING_DEPTH} levels",
                self.peek().loc,
            )

    def _leave(self) -> None:
        self._depth -= 1

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def accept(self, text: str) -> Token | None:
        tok = self.peek()
        if tok.is_punct(text) or tok.is_keyword(text):
            return self.next()
        return None

    def expect(self, text: str) -> Token:
        tok = self.accept(text)
        if tok is None:
            actual = self.peek()
            raise ParseError(f"expected {text!r}, found {actual.text!r}", actual.loc)
        return tok

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind is not TokKind.IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.loc)
        return self.next()

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        loc = self.peek().loc
        functions = []
        while self.peek().kind is not TokKind.EOF:
            functions.append(self.parse_fn_decl())
        return ast.Module(loc, functions)

    def parse_fn_decl(self) -> ast.FnDecl:
        is_extern = self.accept("extern") is not None
        loc = self.expect("fn").loc
        name = self.expect_ident().text
        self.expect("(")
        params = self._parse_param_list(")")
        self.expect(")")
        ret_type = self.parse_type() if self.accept("->") else None
        body = self.parse_block()
        decl = ast.FnDecl(loc, name, params, ret_type, body)
        decl.is_extern = is_extern or name == "main"
        return decl

    def _parse_param_list(self, closer: str) -> list[ast.ParamDecl]:
        params: list[ast.ParamDecl] = []
        while not self.peek().is_punct(closer):
            if params:
                self.expect(",")
                if self.peek().is_punct(closer):  # trailing comma
                    break
            name_tok = self.expect_ident()
            self.expect(":")
            params.append(ast.ParamDecl(name_tok.loc, name_tok.text, self.parse_type()))
        return params

    # ------------------------------------------------------------------
    # types
    # ------------------------------------------------------------------

    def parse_type(self) -> ast.TypeExpr:
        self._enter("type")
        try:
            return self._parse_type_inner()
        finally:
            self._leave()

    def _parse_type_inner(self) -> ast.TypeExpr:
        tok = self.peek()
        if tok.kind is TokKind.IDENT and tok.text in PRIM_TYPE_NAMES:
            self.next()
            return ast.PrimTypeExpr(tok.loc, tok.text)
        if tok.is_keyword("fn"):
            self.next()
            self.expect("(")
            param_types = self._parse_type_list(")")
            self.expect(")")
            ret = self.parse_type() if self.accept("->") else None
            return ast.FnTypeExpr(tok.loc, param_types, ret)
        if tok.is_punct("("):
            self.next()
            elems = self._parse_type_list(")")
            self.expect(")")
            if not elems:
                return ast.UnitTypeExpr(tok.loc)
            if len(elems) == 1:
                return elems[0]
            return ast.TupleTypeExpr(tok.loc, elems)
        if tok.is_punct("["):
            self.next()
            elem = self.parse_type()
            self.expect(";")
            count_tok = self.next()
            if count_tok.kind is not TokKind.INT:
                raise ParseError("array length must be an integer literal",
                                 count_tok.loc)
            self.expect("]")
            return ast.ArrayTypeExpr(tok.loc, elem, count_tok.value[0])
        if tok.is_punct("&"):
            self.next()
            self.expect("[")
            elem = self.parse_type()
            self.expect("]")
            return ast.BufTypeExpr(tok.loc, elem)
        raise ParseError(f"expected a type, found {tok.text!r}", tok.loc)

    def _parse_type_list(self, closer: str) -> list[ast.TypeExpr]:
        types: list[ast.TypeExpr] = []
        while not self.peek().is_punct(closer):
            if types:
                self.expect(",")
                if self.peek().is_punct(closer):
                    break
            types.append(self.parse_type())
        return types

    # ------------------------------------------------------------------
    # statements & blocks
    # ------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        self._enter("block")
        try:
            return self._parse_block_inner()
        finally:
            self._leave()

    def _parse_block_inner(self) -> ast.Block:
        loc = self.expect("{").loc
        stmts: list[ast.Stmt] = []
        result: ast.Expr | None = None
        while not self.peek().is_punct("}"):
            item = self._parse_block_item()
            if isinstance(item, ast.Stmt):
                stmts.append(item)
            else:
                # An expression: result if the block ends here, else it
                # must have been a block-like expression used as a stmt.
                if self.peek().is_punct("}"):
                    result = item
                elif isinstance(item, (ast.IfExpr, ast.Block)):
                    stmts.append(ast.ExprStmt(item.loc, item))
                else:
                    tok = self.peek()
                    raise ParseError(
                        f"expected ';' or '}}', found {tok.text!r}", tok.loc
                    )
        self.expect("}")
        return ast.Block(loc, stmts, result)

    def _parse_block_item(self):
        tok = self.peek()
        if tok.is_keyword("let"):
            return self._parse_let()
        if tok.is_keyword("while"):
            self.next()
            cond = self.parse_expr(struct_ok=False)
            body = self.parse_block()
            return ast.WhileStmt(tok.loc, cond, body)
        if tok.is_keyword("for"):
            self.next()
            name = self.expect_ident().text
            self.expect("in")
            start = self.parse_expr(struct_ok=False)
            self.expect("..")
            end = self.parse_expr(struct_ok=False)
            body = self.parse_block()
            return ast.ForStmt(tok.loc, name, start, end, body)
        if tok.is_keyword("break"):
            self.next()
            self.expect(";")
            return ast.BreakStmt(tok.loc)
        if tok.is_keyword("continue"):
            self.next()
            self.expect(";")
            return ast.ContinueStmt(tok.loc)
        if tok.is_keyword("return"):
            self.next()
            value = None
            if not self.peek().is_punct(";"):
                value = self.parse_expr()
            self.expect(";")
            return ast.ReturnStmt(tok.loc, value)
        # Expression or assignment.
        expr = self.parse_expr()
        for text, op in ASSIGN_OPS.items():
            if self.peek().is_punct(text):
                self.next()
                value = self.parse_expr()
                self.expect(";")
                return ast.AssignStmt(expr.loc, expr, op, value)
        if self.accept(";"):
            return ast.ExprStmt(expr.loc, expr)
        return expr

    def _parse_let(self) -> ast.LetStmt:
        loc = self.expect("let").loc
        mutable = self.accept("mut") is not None
        name = self.expect_ident().text
        type_expr = self.parse_type() if self.accept(":") else None
        self.expect("=")
        init = self.parse_expr()
        self.expect(";")
        return ast.LetStmt(loc, name, mutable, type_expr, init)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def parse_expr(self, struct_ok: bool = True) -> ast.Expr:
        self._enter("expression")
        try:
            return self._parse_expr_inner(struct_ok)
        finally:
            self._leave()

    def _parse_expr_inner(self, struct_ok: bool) -> ast.Expr:
        tok = self.peek()
        if tok.is_punct("|"):
            return self._parse_lambda()
        if tok.is_punct("||"):
            # Zero-parameter lambda: `||` lexes as one token.
            return self._parse_lambda(zero_params=True)
        if tok.is_keyword("if"):
            return self._parse_if()
        return self._parse_binary(0, struct_ok)

    def _parse_lambda(self, zero_params: bool = False) -> ast.Lambda:
        tok = self.next()
        if zero_params:
            params: list[ast.ParamDecl] = []
        else:
            params = self._parse_param_list("|")
            self.expect("|")
        ret_type = self.parse_type() if self.accept("->") else None
        if self.peek().is_punct("{"):
            body = self.parse_block()
        else:
            expr = self.parse_expr()
            body = ast.Block(expr.loc, [], expr)
        return ast.Lambda(tok.loc, params, ret_type, body)

    def _parse_if(self) -> ast.IfExpr:
        loc = self.expect("if").loc
        cond = self.parse_expr(struct_ok=False)
        then_block = self.parse_block()
        else_block = None
        if self.accept("else"):
            if self.peek().is_keyword("if"):
                else_block = self._parse_if()
            else:
                else_block = self.parse_block()
        return ast.IfExpr(loc, cond, then_block, else_block)

    def _parse_binary(self, level: int, struct_ok: bool) -> ast.Expr:
        if level >= len(BINARY_LEVELS):
            return self._parse_unary(struct_ok)
        lhs = self._parse_binary(level + 1, struct_ok)
        ops = BINARY_LEVELS[level]
        while True:
            tok = self.peek()
            if tok.kind is TokKind.PUNCT and tok.text in ops:
                self.next()
                rhs = self._parse_binary(level + 1, struct_ok)
                lhs = ast.Binary(tok.loc, tok.text, lhs, rhs)
            else:
                return lhs

    def _parse_unary(self, struct_ok: bool) -> ast.Expr:
        self._enter("expression")
        try:
            return self._parse_unary_inner(struct_ok)
        finally:
            self._leave()

    def _parse_unary_inner(self, struct_ok: bool) -> ast.Expr:
        tok = self.peek()
        if tok.is_punct("-") or tok.is_punct("!"):
            self.next()
            operand = self._parse_unary(struct_ok)
            return ast.Unary(tok.loc, tok.text, operand)
        if tok.is_punct("@") or tok.is_punct("$"):
            self.next()
            mode = "run" if tok.text == "@" else "hlt"
            callee = self._parse_postfix(self._parse_primary(struct_ok),
                                         stop_before_call=True)
            call = self._parse_call(callee, mode)
            return self._parse_postfix(call)
        return self._parse_postfix(self._parse_primary(struct_ok))

    def _parse_call(self, callee: ast.Expr, pe_mode: str | None) -> ast.Call:
        open_tok = self.expect("(")
        args: list[ast.Expr] = []
        while not self.peek().is_punct(")"):
            if args:
                self.expect(",")
                if self.peek().is_punct(")"):
                    break
            args.append(self.parse_expr())
        self.expect(")")
        return ast.Call(open_tok.loc, callee, args, pe_mode)

    def _parse_postfix(self, expr: ast.Expr,
                       stop_before_call: bool = False) -> ast.Expr:
        while True:
            tok = self.peek()
            if tok.is_punct("(") and not stop_before_call:
                expr = self._parse_call(expr, None)
            elif tok.is_punct("["):
                self.next()
                index = self.parse_expr()
                self.expect("]")
                expr = ast.Index(tok.loc, expr, index)
            elif tok.is_punct("."):
                self.next()
                field_tok = self.next()
                if field_tok.kind is not TokKind.INT or field_tok.value[1]:
                    raise ParseError("expected tuple field index after '.'",
                                     field_tok.loc)
                expr = ast.TupleField(tok.loc, expr, field_tok.value[0])
            elif tok.is_keyword("as"):
                self.next()
                expr = ast.CastExpr(tok.loc, expr, self.parse_type())
            else:
                return expr

    def _parse_primary(self, struct_ok: bool) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokKind.INT:
            self.next()
            value, suffix = tok.value
            return ast.IntLit(tok.loc, value, suffix)
        if tok.kind is TokKind.FLOAT:
            self.next()
            value, suffix = tok.value
            return ast.FloatLit(tok.loc, value, suffix)
        if tok.is_keyword("true"):
            self.next()
            return ast.BoolLit(tok.loc, True)
        if tok.is_keyword("false"):
            self.next()
            return ast.BoolLit(tok.loc, False)
        if tok.kind is TokKind.IDENT:
            self.next()
            return ast.Name(tok.loc, tok.text)
        if tok.is_punct("("):
            self.next()
            if self.accept(")"):
                return ast.UnitLit(tok.loc)
            first = self.parse_expr()
            if self.accept(","):
                elems = [first]
                while not self.peek().is_punct(")"):
                    elems.append(self.parse_expr())
                    if not self.peek().is_punct(")"):
                        self.expect(",")
                self.expect(")")
                return ast.TupleLit(tok.loc, elems)
            self.expect(")")
            return first
        if tok.is_punct("["):
            self.next()
            if self.peek().is_punct("]"):
                raise ParseError("empty array literal has no type", tok.loc)
            first = self.parse_expr()
            if self.accept(";"):
                count_tok = self.next()
                if count_tok.kind is not TokKind.INT:
                    raise ParseError("array repeat count must be an integer "
                                     "literal", count_tok.loc)
                self.expect("]")
                return ast.ArrayLit(tok.loc, None, first, count_tok.value[0])
            elems = [first]
            while self.accept(","):
                if self.peek().is_punct("]"):
                    break
                elems.append(self.parse_expr())
            self.expect("]")
            return ast.ArrayLit(tok.loc, elems, None, None)
        if tok.is_punct("{"):
            return self.parse_block()
        raise ParseError(f"expected an expression, found {tok.text!r}", tok.loc)


def parse(source: str) -> ast.Module:
    return Parser(source).parse_module()

"""On-the-fly SSA construction into Thorin.

This is the paper's IR construction story (following Braun et al.,
CC'13, adapted to continuations): basic blocks are continuations,
phi functions are continuation *parameters*, and construction needs
neither a dominance tree nor dominance frontiers.

Per function, the builder tracks for every block:

* the current definition of each variable (``defs``),
* whether the block is *sealed* (all predecessors known),
* its direct-jump predecessors (``preds``) and the variable each of its
  phi parameters carries (``phi_vars``).

Reading a variable with no local definition recurses into the
predecessors; joins materialize as appended parameters; trivial
parameters (all incoming values equal) are removed again — yielding
minimal SSA on reducible control flow.  Blocks with a single
predecessor never receive parameters: the value is referenced
*directly* across blocks, which the graph IR allows because there is
no nesting to fight.

Invariant maintained throughout: **every predecessor's jump carries one
argument per parameter of its target.**  Creating a phi appends the
corresponding argument to all currently-known predecessors; a new jump
passes arguments for all currently-existing parameters; sealing only
runs the triviality check for phis created while the block was open.

Variables are identified by declaration objects (never by name), so
shadowing is a non-issue; the memory token is threaded through the very
same mechanism under the :data:`MEM_VAR` key — which is why join blocks
only carry a mem parameter when memory state actually merges.
"""

from __future__ import annotations

from ..core.defs import Continuation, Def, Param
from ..core.primops import EvalOp
from ..core.rewrite import rewrite_uses
from ..core.types import MEM, Type, fn_type
from ..core.world import World


class _MemVar:
    """Sentinel variable key for the memory token."""

    type = MEM
    name = "mem"

    def __repr__(self) -> str:  # pragma: no cover
        return "<mem-var>"


MEM_VAR = _MemVar()


class SSABuilder:
    """SSA-construction state for one function body."""

    def __init__(self, world: World, entry: Continuation):
        self.world = world
        self.entry = entry
        self.cur: Continuation | None = entry
        self._defs: dict[Continuation, dict[object, Def]] = {}
        self._sealed: set[Continuation] = set()
        self._preds: dict[Continuation, list[Continuation]] = {}
        self._phi_vars: dict[Continuation, list[object]] = {}
        self._open_phis: dict[Continuation, list[Param]] = {}
        # Forwarding pointers for removed phis: triviality cascades can
        # dissolve a param *after* some in-flight computation picked it
        # up; everyone resolves through this table before using a value.
        self._replacements: dict[Param, Def] = {}
        # Params that predate the builder (the entry's signature, a
        # branch target's mem param): phi params start after them.
        self._fixed: dict[Continuation, int] = {}
        self._register(entry)
        self._sealed.add(entry)

    # ------------------------------------------------------------------
    # block management
    # ------------------------------------------------------------------

    def _register(self, block: Continuation) -> None:
        self._defs[block] = {}
        self._preds[block] = []
        self._phi_vars[block] = []
        self._fixed[block] = block.num_params

    def new_block(self, name: str) -> Continuation:
        """A join block: starts with no params; phis appended on demand."""
        block = self.world.continuation(fn_type(()), name)
        self._register(block)
        return block

    def new_branch_target(self, name: str, pred: Continuation) -> Continuation:
        """An ``fn(mem)`` block used as a branch/match target.

        Branch targets have exactly one (virtual) predecessor — the
        branching block — and are sealed immediately; variable reads fall
        through to it, so they never grow parameters.
        """
        block = self.world.continuation(fn_type((MEM,)), name)
        block.params[0].name = "mem"
        self._register(block)
        self._preds[block] = [pred]
        self._sealed.add(block)
        self._defs[block][MEM_VAR] = block.params[0]
        return block

    def adopt_call_return(self, block: Continuation, pred: Continuation) -> None:
        """Adopt a freshly created return continuation of a call.

        Like a branch target: single known predecessor (the calling
        block), sealed, mem rebound to its first parameter.
        """
        self._register(block)
        self._preds[block] = [pred]
        self._sealed.add(block)
        self._defs[block][MEM_VAR] = block.params[0]

    def is_registered(self, block: Continuation) -> bool:
        return block in self._defs

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------

    def write(self, var: object, value: Def) -> None:
        assert self.cur is not None
        self._defs[self.cur][var] = value

    def read(self, var: object, type: Type) -> Def:
        assert self.cur is not None
        return self._read(self.cur, var, type)

    def read_mem(self) -> Def:
        return self.read(MEM_VAR, MEM)

    def write_mem(self, value: Def) -> None:
        self.write(MEM_VAR, value)

    def _resolve(self, d: Def) -> Def:
        while isinstance(d, Param):
            forwarded = self._replacements.get(d)
            if forwarded is None:
                break
            d = forwarded
        return d

    def resolve(self, d: Def) -> Def:
        """Public view of replacement forwarding (for the emitter).

        Any def held across a :meth:`read` must be passed through here
        before being baked into a jump: the read may have dissolved a
        phi the held def *is*.
        """
        return self._resolve(d)

    def _read(self, block: Continuation, var: object, type: Type) -> Def:
        local = self._defs[block].get(var)
        if local is not None:
            return self._resolve(local)
        value = self._resolve(self._read_nonlocal(block, var, type))
        self._defs[block][var] = value
        return value

    def _read_nonlocal(self, block: Continuation, var: object,
                       type: Type) -> Def:
        if block not in self._sealed:
            phi = self._new_phi(block, var, type)
            if isinstance(phi, Param) and phi.continuation is block:
                self._open_phis.setdefault(block, []).append(phi)
            return phi
        preds = self._preds[block]
        if len(preds) == 1:
            return self._read(preds[0], var, type)
        if not preds:
            return self.world.bottom(type)  # read before any write
        phi = self._new_phi(block, var, type)
        if isinstance(phi, Param) and phi.continuation is block:
            return self._try_remove_trivial(block, phi)
        return phi

    def _new_phi(self, block: Continuation, var: object, type: Type) -> Def:
        assert self._fixed[block] == 0, (
            f"phi on fixed-signature block {block.unique_name()}"
        )
        name = getattr(var, "name", None) or "phi"
        param = block.append_param(type, str(name))
        self._phi_vars[block].append(var)
        # Record the definition *before* reading predecessors: a loop in
        # the predecessor chain must resolve to this very phi instead of
        # recursing forever.
        self._defs[block][var] = param
        # Collect all operand values first: the reads may recursively
        # create and remove other phis, and must not observe this phi's
        # jump arguments half-appended.
        preds = list(self._preds[block])
        values = [self._read(pred, var, type) for pred in preds]
        # A triviality cascade during those reads may have dissolved
        # this very phi already (its env entry then points elsewhere).
        current = self._defs[block].get(var)
        if current is not param or param not in block.params:
            assert current is not None
            return current
        for pred, value in zip(preds, values):
            assert pred.has_body(), (
                f"predecessor {pred.unique_name()} has not jumped yet"
            )
            pred._set_ops(pred.ops + (self._resolve(value),))
        return param

    # ------------------------------------------------------------------
    # trivial-phi elimination (Braun et al.)
    # ------------------------------------------------------------------

    def _try_remove_trivial(self, block: Continuation, param: Param) -> Def:
        same: Def | None = None
        index = param.index
        for pred in self._preds[block]:
            if not pred.has_body() or index >= len(pred.args):
                # Operand appending for this phi is still in flight
                # higher up the call chain: not removable yet.  The
                # creator re-runs the check once the phi is complete.
                return param
            arg = pred.arg(index)
            if arg is param or arg is same:
                continue
            if same is not None:
                return param  # merges at least two distinct values
            same = arg
        if same is None:
            same = self.world.bottom(param.type)
        # Phis that might become trivial once this one dissolves: targets
        # of jumps that pass this param as an argument.
        candidates: list[tuple[Continuation, Param]] = []
        for user, index in param.uses:
            if isinstance(user, Continuation) and user.has_body():
                target = _peel(user.callee)
                if (isinstance(target, Continuation)
                        and target in self._defs
                        and self._fixed[target] == 0
                        and target is not block
                        and target in self._sealed):
                    arg_pos = index - 1
                    if 0 <= arg_pos < target.num_params:
                        candidates.append((target, target.params[arg_pos]))
        self._remove_param(block, param, same)
        for target, other in candidates:
            if other in target.params and other is not param:
                self._try_remove_trivial(target, other)
        # The cascade may have dissolved `same` itself in the meantime.
        return self._resolve(same)

    def _remove_param(self, block: Continuation, param: Param,
                      replacement: Def) -> None:
        index = param.index
        self._replacements[param] = replacement
        memo = rewrite_uses(self.world, {param: replacement})
        replacement = memo.get(replacement, replacement)
        # Drop the argument from every predecessor's jump (ops[0] is the
        # callee, hence the +1).
        for pred in self._preds[block]:
            ops = list(pred.ops)
            ops.pop(1 + index)
            pred._set_ops(tuple(ops))
        block.params.pop(index)
        for later in block.params[index:]:
            later.index -= 1
        param_types = [t for i, t in enumerate(block.fn_type.param_types)
                       if i != index]
        block.type = fn_type(tuple(param_types))
        self._phi_vars[block].pop(index - self._fixed[block])
        open_list = self._open_phis.get(block)
        if open_list and param in open_list:
            open_list.remove(param)
        # Fix env maps that still name the removed param.
        for defs in self._defs.values():
            for var, value in list(defs.items()):
                if value is param:
                    defs[var] = replacement

    # ------------------------------------------------------------------
    # jumps & sealing
    # ------------------------------------------------------------------

    def jump_to(self, target: Continuation) -> None:
        """Direct jump from the current block, passing all phi params."""
        assert self.cur is not None
        assert not self._fixed[target], (
            f"direct jump to fixed-signature block {target.unique_name()}"
        )
        assert target not in self._sealed, (
            f"new predecessor for sealed block {target.unique_name()}"
        )
        args = [self._read(self.cur, var, param.type)
                for var, param in zip(self._phi_vars[target], target.params)]
        # Reads for later args can dissolve params delivered by earlier
        # ones; resolve the whole list at the end.
        args = [self._resolve(a) for a in args]
        self._preds[target].append(self.cur)
        self.world.jump(self.cur, target, args)
        self.cur = None

    def seal(self, block: Continuation) -> None:
        """Declare that all predecessors of *block* are known."""
        assert block not in self._sealed, f"{block.name} sealed twice"
        self._sealed.add(block)
        for param in self._open_phis.pop(block, []):
            if param in block.params:
                self._try_remove_trivial(block, param)

    def enter(self, block: Continuation) -> None:
        """Make *block* the current insertion point."""
        self.cur = block

    def unreachable(self) -> None:
        self.cur = None

    @property
    def reachable(self) -> bool:
        return self.cur is not None


def _peel(d: Def) -> Def:
    while isinstance(d, EvalOp):
        d = d.value
    return d

"""Lowering the typed AST to Thorin.

Follows the paper's construction scheme:

* every function becomes a continuation ``fn(mem, params..., ret)``
  where ``ret`` is ``fn(mem)`` or ``fn(mem, R)``;
* control flow becomes jumps: ``if`` branches through the ``branch``
  intrinsic into fresh single-predecessor target blocks, loops become
  join blocks whose parameters are the loop-carried variables,
  function calls pass a freshly created return continuation;
* mutable scalar variables (and the memory token itself) are handled by
  the on-the-fly SSA construction in :mod:`repro.frontend.builder` — no
  stack slots, no later mem2reg needed;
* mutable aggregates live in stack slots (``enter``/``slot``) accessed
  via ``lea``/``load``/``store``;
* lambdas close over enclosing immutable bindings *by value* at their
  creation point: the lambda's body simply references the captured defs
  across function boundaries — exactly the graph-IR nesting story the
  paper tells (the scope of the enclosing function grows to include the
  lambda); closure elimination later makes it disappear.
"""

from __future__ import annotations

from ..core import types as ct
from ..core.defs import Continuation, Def
from ..core.primops import ArithKind, CmpRel, MathKind
from ..core.world import World
from . import ast
from .builder import SSABuilder
from .errors import CompileError
from .sema import BuiltinDecl, _MATH_BUILTINS

_ARITH_OPS = {
    "+": ArithKind.ADD, "-": ArithKind.SUB, "*": ArithKind.MUL,
    "/": ArithKind.DIV, "%": ArithKind.REM, "&": ArithKind.AND,
    "|": ArithKind.OR, "^": ArithKind.XOR, "<<": ArithKind.SHL,
    ">>": ArithKind.SHR,
}

_CMP_OPS = {
    "==": CmpRel.EQ, "!=": CmpRel.NE, "<": CmpRel.LT,
    "<=": CmpRel.LE, ">": CmpRel.GT, ">=": CmpRel.GE,
}

_MATH_KINDS = {name: MathKind(name) for name in _MATH_BUILTINS}


class ModuleEmitter:
    """Lowers a type-checked module into a world."""

    def __init__(self, module: ast.Module, world: World):
        self.module = module
        self.world = world
        self.fn_conts: dict[ast.FnDecl, Continuation] = {}

    def run(self) -> World:
        for fn in self.module.functions:
            cont = self.world.continuation(fn.type, fn.name)
            self.fn_conts[fn] = cont
            if fn.is_extern:
                self.world.make_external(cont)
        for fn in self.module.functions:
            FnEmitter(self, fn, self.fn_conts[fn], {}).run()
        return self.world


class _LoopContext:
    def __init__(self, continue_target: Continuation,
                 break_target: Continuation):
        self.continue_target = continue_target
        self.break_target = break_target


class FnEmitter:
    """Lowers one function (or lambda) body."""

    def __init__(self, module: ModuleEmitter, decl, cont: Continuation,
                 captured: dict[object, Def]):
        self.module = module
        self.world = module.world
        self.decl = decl  # ast.FnDecl | ast.Lambda
        self.cont = cont
        self.captured = captured
        self.b = SSABuilder(self.world, cont)
        self.ret_param = cont.params[-1]
        self.ret_type = decl.ret_type
        self.slots: dict[ast.LetStmt, Def] = {}
        self.frame: Def | None = None
        self.loops: list[_LoopContext] = []

    # ------------------------------------------------------------------

    def run(self) -> None:
        b = self.b
        b.write_mem(self.cont.params[0])
        for ast_param, ir_param in zip(self.decl.params, self.cont.params[1:]):
            ir_param.name = ast_param.name
            b.write(ast_param, ir_param)
        value = self.emit_block(self.decl.body)
        if b.reachable:
            self._emit_return(value, self.decl.body.loc)

    def _jump(self, block, callee: Def, args) -> None:
        """Emit a jump with all operands resolved through the builder.

        Values held across ``read`` calls may have been dissolved by a
        trivial-phi cascade in the meantime; resolving here keeps every
        emitted jump pointing at live defs.
        """
        b = self.b
        self.world.jump(block, b.resolve(callee),
                        [b.resolve(a) for a in args])

    def _emit_return(self, value: Def | None, loc) -> None:
        b = self.b
        mem = b.read_mem()
        if self.ret_type is None:
            self._jump(b.cur, self.ret_param, (mem,))
        else:
            if value is None:
                raise CompileError("missing return value", loc)
            self._jump(b.cur, self.ret_param, (mem, value))
        b.unreachable()

    def _ensure_frame(self) -> Def:
        if self.frame is None:
            b = self.b
            mem, frame = self.world.enter(b.read_mem())
            b.write_mem(mem)
            self.frame = frame
        return self.frame

    # ------------------------------------------------------------------
    # blocks & statements
    # ------------------------------------------------------------------

    def emit_block(self, block: ast.Block) -> Def | None:
        for stmt in block.stmts:
            if not self.b.reachable:
                return None  # dead code after return/break/continue
            self.emit_stmt(stmt)
        if block.result is not None and self.b.reachable:
            return self.emit_expr(block.result)
        return None

    def emit_stmt(self, stmt: ast.Stmt) -> None:
        b = self.b
        if isinstance(stmt, ast.LetStmt):
            value = self.emit_expr(stmt.init)
            if stmt.is_slot:
                frame = self._ensure_frame()
                ptr = self.world.slot(stmt.var_type, frame, stmt.name)
                self.slots[stmt] = ptr
                b.write_mem(self.world.store(b.read_mem(), ptr, value))
            else:
                b.write(stmt, value)
            return
        if isinstance(stmt, ast.AssignStmt):
            self._emit_assign(stmt)
            return
        if isinstance(stmt, ast.ExprStmt):
            self.emit_expr(stmt.expr)
            return
        if isinstance(stmt, ast.WhileStmt):
            self._emit_while(stmt)
            return
        if isinstance(stmt, ast.ForStmt):
            self._emit_for(stmt)
            return
        if isinstance(stmt, ast.BreakStmt):
            b.jump_to(self.loops[-1].break_target)
            return
        if isinstance(stmt, ast.ContinueStmt):
            b.jump_to(self.loops[-1].continue_target)
            return
        if isinstance(stmt, ast.ReturnStmt):
            value = self.emit_expr(stmt.value) if stmt.value is not None else None
            self._emit_return(value, stmt.loc)
            return
        raise AssertionError(f"unhandled stmt {stmt!r}")

    def _emit_assign(self, stmt: ast.AssignStmt) -> None:
        b = self.b
        target = stmt.target
        if isinstance(target, ast.Name):
            decl = target.decl
            assert isinstance(decl, ast.LetStmt)
            if decl.is_slot:
                ptr = self.slots[decl]
                new = self._assigned_value(
                    stmt, lambda: self._load(ptr), decl.var_type)
                b.write_mem(self.world.store(b.read_mem(), ptr, new))
            else:
                new = self._assigned_value(
                    stmt, lambda: b.read(decl, decl.var_type), decl.var_type)
                b.write(decl, new)
            return
        assert isinstance(target, ast.Index)
        ptr = self._emit_index_ptr(target)
        if ptr is not None:
            new = self._assigned_value(stmt, lambda: self._load(ptr),
                                       target.type)
            b.write_mem(self.world.store(b.read_mem(), ptr, new))
            return
        raise CompileError("cannot assign through an immutable aggregate",
                           target.loc)

    def _assigned_value(self, stmt: ast.AssignStmt, read_old, t) -> Def:
        if stmt.op is None:
            return self.emit_expr(stmt.value)
        old = read_old()
        rhs = self.emit_expr(stmt.value)
        return self.world.arithop(_ARITH_OPS[stmt.op], old, rhs)

    def _emit_while(self, stmt: ast.WhileStmt) -> None:
        b = self.b
        head = b.new_block("while_head")
        b.jump_to(head)
        b.enter(head)
        cond = self.emit_expr(stmt.cond)
        caller = b.cur
        mem = b.read_mem()
        body_t = b.new_branch_target("while_body", caller)
        exit_t = b.new_branch_target("while_exit", caller)
        self._jump(caller, self.world.branch(), (mem, cond, body_t, exit_t))
        b.unreachable()
        exit_join = b.new_block("while_join")
        self.loops.append(_LoopContext(head, exit_join))
        b.enter(body_t)
        self.emit_block(stmt.body)
        if b.reachable:
            b.jump_to(head)
        b.seal(head)
        self.loops.pop()
        b.enter(exit_t)
        b.jump_to(exit_join)
        b.seal(exit_join)
        b.enter(exit_join)

    def _emit_for(self, stmt: ast.ForStmt) -> None:
        b = self.b
        start = self.emit_expr(stmt.start)
        end = self.emit_expr(stmt.end)
        b.write(stmt, start)
        head = b.new_block("for_head")
        b.jump_to(head)
        b.enter(head)
        i = b.read(stmt, stmt.var_type)
        cond = self.world.lt(i, end)
        caller = b.cur
        mem = b.read_mem()
        body_t = b.new_branch_target("for_body", caller)
        exit_t = b.new_branch_target("for_exit", caller)
        self._jump(caller, self.world.branch(), (mem, cond, body_t, exit_t))
        b.unreachable()
        exit_join = b.new_block("for_join")
        incr = b.new_block("for_incr")
        self.loops.append(_LoopContext(incr, exit_join))
        b.enter(body_t)
        self.emit_block(stmt.body)
        if b.reachable:
            b.jump_to(incr)
        b.seal(incr)
        self.loops.pop()
        b.enter(incr)
        next_i = self.world.add(b.read(stmt, stmt.var_type),
                                self.world.one(stmt.var_type))
        b.write(stmt, next_i)
        b.jump_to(head)
        b.seal(head)
        b.enter(exit_t)
        b.jump_to(exit_join)
        b.seal(exit_join)
        b.enter(exit_join)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def emit_expr(self, expr: ast.Expr) -> Def | None:
        b = self.b
        w = self.world
        if isinstance(expr, ast.IntLit):
            return w.literal(expr.type, expr.value)
        if isinstance(expr, ast.FloatLit):
            return w.literal(expr.type, expr.value)
        if isinstance(expr, ast.BoolLit):
            return w.lit_bool(expr.value)
        if isinstance(expr, ast.UnitLit):
            return None
        if isinstance(expr, ast.Name):
            return self._emit_name(expr)
        if isinstance(expr, ast.Block):
            return self.emit_block(expr)
        if isinstance(expr, ast.TupleLit):
            return w.tuple_([self.emit_expr(e) for e in expr.elems])
        if isinstance(expr, ast.ArrayLit):
            return self._emit_array_lit(expr)
        if isinstance(expr, ast.Unary):
            operand = self.emit_expr(expr.operand)
            if expr.op == "!":
                t = operand.type
                assert isinstance(t, ct.PrimType)
                if t.is_bool:
                    return w.not_(operand)
                all_ones = w.literal(t, (1 << t.bitwidth) - 1)
                return w.xor(operand, all_ones)
            return w.neg(operand)
        if isinstance(expr, ast.Binary):
            return self._emit_binary(expr)
        if isinstance(expr, ast.CastExpr):
            return w.cast(expr.type, self.emit_expr(expr.value))
        if isinstance(expr, ast.IfExpr):
            return self._emit_if(expr)
        if isinstance(expr, ast.Call):
            return self._emit_call(expr)
        if isinstance(expr, ast.Index):
            ptr = self._emit_index_ptr(expr)
            if ptr is not None:
                return self._load(ptr)
            base = self.emit_expr(expr.base)
            index = w.cast(ct.I64, self.emit_expr(expr.index))
            return w.extract(base, index)
        if isinstance(expr, ast.TupleField):
            return w.extract(self.emit_expr(expr.base), expr.field)
        if isinstance(expr, ast.Lambda):
            return self._emit_lambda(expr)
        raise AssertionError(f"unhandled expr {expr!r}")

    def _emit_name(self, expr: ast.Name) -> Def:
        decl = expr.decl
        if isinstance(decl, ast.FnDecl):
            return self.module.fn_conts[decl]
        if decl in self.captured:
            return self.captured[decl]
        if isinstance(decl, ast.LetStmt):
            if decl.is_slot:
                return self._load(self.slots[decl])
            return self.b.read(decl, decl.var_type)
        if isinstance(decl, ast.ParamDecl):
            return self.b.read(decl, decl.type)
        if isinstance(decl, ast.ForStmt):
            return self.b.read(decl, decl.var_type)
        raise AssertionError(f"unhandled name decl {decl!r}")

    def _emit_array_lit(self, expr: ast.ArrayLit) -> Def:
        t = expr.type
        assert isinstance(t, ct.DefiniteArrayType)
        if expr.repeat is not None:
            value = self.emit_expr(expr.repeat)
            return self.world.definite_array(t.elem_type,
                                             [value] * expr.count)
        return self.world.definite_array(
            t.elem_type, [self.emit_expr(e) for e in expr.elems]
        )

    def _emit_binary(self, expr: ast.Binary) -> Def:
        w = self.world
        if expr.op in ("&&", "||"):
            return self._emit_shortcut(expr)
        lhs = self.emit_expr(expr.lhs)
        rhs = self.emit_expr(expr.rhs)
        if expr.op in _CMP_OPS:
            return w.cmp(_CMP_OPS[expr.op], lhs, rhs)
        return w.arithop(_ARITH_OPS[expr.op], lhs, rhs)

    def _emit_shortcut(self, expr: ast.Binary) -> Def:
        """``a && b`` / ``a || b`` via branching (b may have effects)."""
        b = self.b
        w = self.world
        cond = self.emit_expr(expr.lhs)
        caller = b.cur
        mem = b.read_mem()
        rhs_t = b.new_branch_target("shortcut_rhs", caller)
        skip_t = b.new_branch_target("shortcut_skip", caller)
        if expr.op == "&&":
            self._jump(caller, w.branch(), (mem, cond, rhs_t, skip_t))
            skip_value = w.false_()
        else:
            self._jump(caller, w.branch(), (mem, cond, skip_t, rhs_t))
            skip_value = w.true_()
        b.unreachable()
        join = b.new_block("shortcut_join")
        b.enter(rhs_t)
        rhs = self.emit_expr(expr.rhs)
        if b.reachable:
            b.write(expr, rhs)
            b.jump_to(join)
        b.enter(skip_t)
        b.write(expr, skip_value)
        b.jump_to(join)
        b.seal(join)
        b.enter(join)
        return b.read(expr, ct.BOOL)

    def _emit_if(self, expr: ast.IfExpr) -> Def | None:
        b = self.b
        w = self.world
        cond = self.emit_expr(expr.cond)
        caller = b.cur
        mem = b.read_mem()
        then_t = b.new_branch_target("if_then", caller)
        else_t = b.new_branch_target("if_else", caller)
        self._jump(caller, w.branch(), (mem, cond, then_t, else_t))
        b.unreachable()
        join = b.new_block("if_join")
        has_value = expr.type is not None

        b.enter(then_t)
        value = self.emit_block(expr.then_block)
        if b.reachable:
            if has_value:
                b.write(expr, value)
            b.jump_to(join)

        b.enter(else_t)
        if expr.else_block is not None:
            if isinstance(expr.else_block, ast.IfExpr):
                value = self._emit_if(expr.else_block)
            else:
                value = self.emit_block(expr.else_block)
        else:
            value = None
        if b.reachable:
            if has_value:
                b.write(expr, value)
            b.jump_to(join)

        b.seal(join)
        b.enter(join)
        if has_value:
            return b.read(expr, expr.type)
        return None

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def _emit_call(self, expr: ast.Call) -> Def | None:
        w = self.world
        b = self.b
        callee = expr.callee
        if isinstance(callee, ast.Name) and isinstance(callee.decl, BuiltinDecl):
            return self._emit_builtin_call(expr, callee.decl)
        callee_val = self.emit_expr(callee)
        args = [self.emit_expr(a) for a in expr.args]
        if expr.pe_mode == "run":
            callee_val = w.run(callee_val)
        elif expr.pe_mode == "hlt":
            callee_val = w.hlt(callee_val)
        if expr.type is None:
            ret_cont = w.continuation(ct.fn_type((ct.MEM,)), "ret")
        else:
            ret_cont = w.continuation(ct.fn_type((ct.MEM, expr.type)), "ret")
        caller = b.cur
        mem = b.read_mem()
        self._jump(caller, callee_val, (mem, *args, ret_cont))
        b.adopt_call_return(ret_cont, caller)
        b.enter(ret_cont)
        if expr.type is None:
            return None
        value = ret_cont.params[1]
        value.name = "res"
        return value

    def _emit_builtin_call(self, expr: ast.Call, decl: BuiltinDecl) -> Def | None:
        w = self.world
        b = self.b
        if decl.name in _MATH_KINDS:
            return w.mathop(_MATH_KINDS[decl.name], self.emit_expr(expr.args[0]))
        if decl.name.startswith("new_buf_"):
            count = self.emit_expr(expr.args[0])
            ret_t = decl.ret_type
            assert isinstance(ret_t, ct.PtrType)
            mem, ptr = w.alloc(b.read_mem(), ret_t.pointee, count)
            b.write_mem(mem)
            return ptr
        if decl.name.startswith("print_"):
            value = self.emit_expr(expr.args[0])
            intrinsic = {
                "print_i64": w.print_i64,
                "print_f64": w.print_f64,
                "print_char": w.print_char,
            }[decl.name]()
            ret_cont = w.continuation(ct.fn_type((ct.MEM,)), "ret")
            caller = b.cur
            mem = b.read_mem()
            self._jump(caller, intrinsic, (mem, value, ret_cont))
            b.adopt_call_return(ret_cont, caller)
            b.enter(ret_cont)
            return None
        raise AssertionError(f"unhandled builtin {decl.name}")

    # ------------------------------------------------------------------
    # memory access
    # ------------------------------------------------------------------

    def _load(self, ptr: Def) -> Def:
        mem, value = self.world.load(self.b.read_mem(), ptr)
        self.b.write_mem(mem)
        return value

    def _emit_index_ptr(self, expr: ast.Index) -> Def | None:
        """Pointer for ``base[i]`` when the base is addressable, else None."""
        w = self.world
        base = expr.base
        base_t = base.type
        if isinstance(base_t, ct.PtrType):
            ptr = self.emit_expr(base)
            index = w.cast(ct.I64, self.emit_expr(expr.index))
            return w.lea(ptr, index)
        if (isinstance(base, ast.Name) and isinstance(base.decl, ast.LetStmt)
                and base.decl.is_slot):
            ptr = self.slots[base.decl]
            index = w.cast(ct.I64, self.emit_expr(expr.index))
            return w.lea(ptr, index)
        return None

    # ------------------------------------------------------------------
    # lambdas
    # ------------------------------------------------------------------

    def _emit_lambda(self, expr: ast.Lambda) -> Def:
        captured: dict[object, Def] = {}
        for decl in _free_decls(expr):
            if isinstance(decl, ast.FnDecl):
                continue  # global, resolved directly
            if decl in self.captured:
                captured[decl] = self.captured[decl]
            elif isinstance(decl, ast.LetStmt):
                captured[decl] = self.b.read(decl, decl.var_type)
            elif isinstance(decl, ast.ParamDecl):
                captured[decl] = self.b.read(decl, decl.type)
            elif isinstance(decl, ast.ForStmt):
                captured[decl] = self.b.read(decl, decl.var_type)
        cont = self.world.continuation(expr.fn_type, "lambda")
        FnEmitter(self.module, expr, cont, captured).run()
        return cont


def _free_decls(lam: ast.Lambda) -> list[object]:
    """Declarations referenced by the lambda body but defined outside it."""
    local: set[object] = set(lam.params)
    for node in ast.walk(lam.body):
        if isinstance(node, (ast.LetStmt, ast.ForStmt)):
            local.add(node)
        elif isinstance(node, ast.Lambda):
            local.update(node.params)
    free: dict[object, None] = {}
    for node in ast.walk(lam.body):
        if isinstance(node, ast.Name) and node.decl is not None:
            if node.decl not in local and not isinstance(
                node.decl, (BuiltinDecl, ast.FnDecl)
            ):
                free.setdefault(node.decl, None)
    return list(free)


def emit_module(module: ast.Module, world: World) -> World:
    return ModuleEmitter(module, world).run()

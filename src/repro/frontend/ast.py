"""Abstract syntax tree of Impala-lite.

Nodes are plain data; the type checker (``sema.py``) annotates
expressions with their :mod:`repro.core.types` type in ``node.type`` and
resolves names to declarations, after which ``emit.py`` lowers the tree
to Thorin.
"""

from __future__ import annotations

from .errors import SourceLoc


class Node:
    __slots__ = ("loc",)

    def __init__(self, loc: SourceLoc):
        self.loc = loc


# ---------------------------------------------------------------------------
# surface types (resolved to core types during sema)
# ---------------------------------------------------------------------------


class TypeExpr(Node):
    __slots__ = ()


class PrimTypeExpr(TypeExpr):
    __slots__ = ("name",)

    def __init__(self, loc, name: str):
        super().__init__(loc)
        self.name = name


class UnitTypeExpr(TypeExpr):
    __slots__ = ()


class FnTypeExpr(TypeExpr):
    __slots__ = ("param_types", "ret_type")

    def __init__(self, loc, param_types: list[TypeExpr], ret_type: "TypeExpr | None"):
        super().__init__(loc)
        self.param_types = param_types
        self.ret_type = ret_type


class TupleTypeExpr(TypeExpr):
    __slots__ = ("elem_types",)

    def __init__(self, loc, elem_types: list[TypeExpr]):
        super().__init__(loc)
        self.elem_types = elem_types


class ArrayTypeExpr(TypeExpr):
    """``[T; N]`` — a definite array."""

    __slots__ = ("elem_type", "length")

    def __init__(self, loc, elem_type: TypeExpr, length: int):
        super().__init__(loc)
        self.elem_type = elem_type
        self.length = length


class BufTypeExpr(TypeExpr):
    """``&[T]`` — a pointer to a run-time-sized buffer."""

    __slots__ = ("elem_type",)

    def __init__(self, loc, elem_type: TypeExpr):
        super().__init__(loc)
        self.elem_type = elem_type


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


class Module(Node):
    __slots__ = ("functions",)

    def __init__(self, loc, functions: list["FnDecl"]):
        super().__init__(loc)
        self.functions = functions


class ParamDecl(Node):
    __slots__ = ("name", "type_expr", "type")

    def __init__(self, loc, name: str, type_expr: TypeExpr):
        super().__init__(loc)
        self.name = name
        self.type_expr = type_expr
        self.type = None  # core type, set by sema


class FnDecl(Node):
    __slots__ = ("name", "params", "ret_type_expr", "body", "type",
                 "ret_type", "is_extern")

    def __init__(self, loc, name: str, params: list[ParamDecl],
                 ret_type_expr: TypeExpr | None, body: "Block"):
        super().__init__(loc)
        self.name = name
        self.params = params
        self.ret_type_expr = ret_type_expr
        self.body = body
        self.type = None       # core FnType (CPS convention), set by sema
        self.ret_type = None   # core result type (None = unit)
        self.is_extern = False


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


class LetStmt(Stmt):
    __slots__ = ("name", "mutable", "type_expr", "init", "var_type", "is_slot")

    def __init__(self, loc, name: str, mutable: bool,
                 type_expr: TypeExpr | None, init: "Expr"):
        super().__init__(loc)
        self.name = name
        self.mutable = mutable
        self.type_expr = type_expr
        self.init = init
        self.var_type = None
        # Aggregate mutables live in stack slots; scalar mutables stay in
        # SSA form (sema decides).
        self.is_slot = False


class AssignStmt(Stmt):
    """``target = value`` or compound ``target op= value``."""

    __slots__ = ("target", "op", "value")

    def __init__(self, loc, target: "Expr", op: str | None, value: "Expr"):
        super().__init__(loc)
        self.target = target
        self.op = op  # None for plain '=', else '+', '-', ...
        self.value = value


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, loc, expr: "Expr"):
        super().__init__(loc)
        self.expr = expr


class WhileStmt(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, loc, cond: "Expr", body: "Block"):
        super().__init__(loc)
        self.cond = cond
        self.body = body


class ForStmt(Stmt):
    """``for name in start .. end { body }`` (half-open range)."""

    __slots__ = ("name", "start", "end", "body", "var_type")

    def __init__(self, loc, name: str, start: "Expr", end: "Expr", body: "Block"):
        super().__init__(loc)
        self.name = name
        self.start = start
        self.end = end
        self.body = body
        self.var_type = None


class BreakStmt(Stmt):
    __slots__ = ()


class ContinueStmt(Stmt):
    __slots__ = ()


class ReturnStmt(Stmt):
    __slots__ = ("value",)

    def __init__(self, loc, value: "Expr | None"):
        super().__init__(loc)
        self.value = value


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ("type",)

    def __init__(self, loc):
        super().__init__(loc)
        self.type = None  # core type, set by sema


class Block(Expr):
    """``{ stmts; expr? }`` — a block is an expression."""

    __slots__ = ("stmts", "result")

    def __init__(self, loc, stmts: list[Stmt], result: Expr | None):
        super().__init__(loc)
        self.stmts = stmts
        self.result = result


class IntLit(Expr):
    __slots__ = ("value", "suffix")

    def __init__(self, loc, value: int, suffix: str | None):
        super().__init__(loc)
        self.value = value
        self.suffix = suffix


class FloatLit(Expr):
    __slots__ = ("value", "suffix")

    def __init__(self, loc, value: float, suffix: str | None):
        super().__init__(loc)
        self.value = value
        self.suffix = suffix


class BoolLit(Expr):
    __slots__ = ("value",)

    def __init__(self, loc, value: bool):
        super().__init__(loc)
        self.value = value


class UnitLit(Expr):
    __slots__ = ()


class Name(Expr):
    __slots__ = ("ident", "decl")

    def __init__(self, loc, ident: str):
        super().__init__(loc)
        self.ident = ident
        self.decl = None  # LetStmt | ParamDecl | FnDecl | ForStmt, set by sema


class TupleLit(Expr):
    __slots__ = ("elems",)

    def __init__(self, loc, elems: list[Expr]):
        super().__init__(loc)
        self.elems = elems


class ArrayLit(Expr):
    """``[a, b, c]`` or ``[init; count]``."""

    __slots__ = ("elems", "repeat", "count")

    def __init__(self, loc, elems: list[Expr] | None, repeat: Expr | None,
                 count: int | None):
        super().__init__(loc)
        self.elems = elems
        self.repeat = repeat
        self.count = count


class Unary(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, loc, op: str, operand: Expr):
        super().__init__(loc)
        self.op = op
        self.operand = operand


class Binary(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, loc, op: str, lhs: Expr, rhs: Expr):
        super().__init__(loc)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class CastExpr(Expr):
    __slots__ = ("value", "type_expr")

    def __init__(self, loc, value: Expr, type_expr: TypeExpr):
        super().__init__(loc)
        self.value = value
        self.type_expr = type_expr


class IfExpr(Expr):
    __slots__ = ("cond", "then_block", "else_block")

    def __init__(self, loc, cond: Expr, then_block: Block,
                 else_block: "Block | IfExpr | None"):
        super().__init__(loc)
        self.cond = cond
        self.then_block = then_block
        self.else_block = else_block


class Call(Expr):
    __slots__ = ("callee", "args", "pe_mode")

    def __init__(self, loc, callee: Expr, args: list[Expr],
                 pe_mode: str | None = None):
        super().__init__(loc)
        self.callee = callee
        self.args = args
        self.pe_mode = pe_mode  # 'run' (@), 'hlt' ($) or None


class Index(Expr):
    __slots__ = ("base", "index")

    def __init__(self, loc, base: Expr, index: Expr):
        super().__init__(loc)
        self.base = base
        self.index = index


class TupleField(Expr):
    __slots__ = ("base", "field")

    def __init__(self, loc, base: Expr, field: int):
        super().__init__(loc)
        self.base = base
        self.field = field


class Lambda(Expr):
    __slots__ = ("params", "ret_type_expr", "body", "fn_type", "ret_type")

    def __init__(self, loc, params: list[ParamDecl],
                 ret_type_expr: TypeExpr | None, body: Block):
        super().__init__(loc)
        self.params = params
        self.ret_type_expr = ret_type_expr
        self.body = body
        self.fn_type = None
        self.ret_type = None


_CHILD_FIELDS: dict[type, tuple[str, ...]] = {
    Module: ("functions",),
    FnDecl: ("body",),
    LetStmt: ("init",),
    AssignStmt: ("target", "value"),
    ExprStmt: ("expr",),
    WhileStmt: ("cond", "body"),
    ForStmt: ("start", "end", "body"),
    ReturnStmt: ("value",),
    Block: ("stmts", "result"),
    TupleLit: ("elems",),
    ArrayLit: ("elems", "repeat"),
    Unary: ("operand",),
    Binary: ("lhs", "rhs"),
    CastExpr: ("value",),
    IfExpr: ("cond", "then_block", "else_block"),
    Call: ("callee", "args"),
    Index: ("base", "index"),
    TupleField: ("base",),
    Lambda: ("body",),
}


def iter_children(node: Node):
    """Yield the direct AST children of *node* (no type expressions)."""
    fields = _CHILD_FIELDS.get(type(node), ())
    for field in fields:
        value = getattr(node, field)
        if value is None:
            continue
        if isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield item
        elif isinstance(value, Node):
            yield value


def walk(node: Node):
    """Yield *node* and all descendants, preorder."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(iter_children(current))


"""Impala-lite: the surface language of this reproduction.

``compile_source`` is the one-stop entry: source text → type-checked
AST → Thorin world (optionally optimized by the standard pipeline).
"""

from __future__ import annotations

from ..core.world import World
from .emit import emit_module
from .parser import parse
from .sema import analyze


def compile_to_ast(source: str):
    """Parse and type-check, returning the annotated AST module."""
    return analyze(parse(source))


def compile_source(source: str, *, optimize: bool = True,
                   world_name: str = "module", folding: bool = True,
                   options=None) -> World:
    """Compile Impala-lite source text into a Thorin world.

    ``folding=False`` disables construction-time folding/simplification
    (ablation A1); value numbering itself stays on.  ``options`` is an
    :class:`~repro.transform.pipeline.OptimizeOptions` threaded through
    to the pipeline (e.g. ``verify_each_pass=True`` for checked builds).
    """
    module = compile_to_ast(source)
    world = World(world_name, folding=folding)
    emit_module(module, world)
    if optimize:
        from ..transform.pipeline import optimize as run_pipeline

        run_pipeline(world, options=options)
    else:
        from ..transform.cleanup import cleanup

        cleanup(world)
    return world


__all__ = ["compile_source", "compile_to_ast"]

"""Source-located diagnostics for the Impala-lite frontend."""

from __future__ import annotations


class SourceLoc:
    """A (line, column) position in the source text (1-based)."""

    __slots__ = ("line", "col")

    def __init__(self, line: int, col: int):
        self.line = line
        self.col = col

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"SourceLoc({self.line}, {self.col})"


class CompileError(Exception):
    """A diagnostic with a source location; str() renders both."""

    def __init__(self, message: str, loc: SourceLoc | None = None):
        self.message = message
        self.loc = loc
        super().__init__(f"{loc}: {message}" if loc else message)


class LexError(CompileError):
    pass


class ParseError(CompileError):
    pass


class TypeError_(CompileError):
    """Named with a trailing underscore to avoid clashing with the builtin."""

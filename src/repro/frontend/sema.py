"""Type checker and name resolution for Impala-lite.

Responsibilities:

* resolve surface type expressions to :mod:`repro.core.types` types;
  surface function types follow the CPS convention of the paper:
  ``fn(T...) -> R`` becomes ``fn(mem, T..., fn(mem, R))``;
* resolve names to declarations (params, lets, functions, builtins) and
  enforce the capture rule: lambdas and nested uses may capture
  immutable bindings by value, never mutable ones;
* bidirectional checking with literal adaptation (``let x: i32 = 0``
  types the literal at ``i32``);
* decide the storage class of every ``let``: mutable aggregates live in
  stack slots, everything else stays in SSA form (mutable scalars become
  continuation parameters during emission — the Braun-style on-the-fly
  SSA construction of the paper).
"""

from __future__ import annotations

from ..core import types as ct
from . import ast
from .errors import TypeError_

_MATH_BUILTINS = ("sqrt", "fabs", "floor", "sin", "cos", "exp", "log")


class BuiltinDecl:
    """A compiler-known function such as ``print_i64`` or ``sqrt``."""

    def __init__(self, name: str, param_types: tuple, ret_type):
        self.name = name
        self.param_types = param_types
        self.ret_type = ret_type  # None = unit


BUILTINS: dict[str, BuiltinDecl] = {
    "print_i64": BuiltinDecl("print_i64", (ct.I64,), None),
    "print_f64": BuiltinDecl("print_f64", (ct.F64,), None),
    "print_char": BuiltinDecl("print_char", (ct.U8,), None),
    "new_buf_i64": BuiltinDecl(
        "new_buf_i64", (ct.I64,), ct.ptr_type(ct.indefinite_array_type(ct.I64))
    ),
    "new_buf_i32": BuiltinDecl(
        "new_buf_i32", (ct.I64,), ct.ptr_type(ct.indefinite_array_type(ct.I32))
    ),
    "new_buf_f64": BuiltinDecl(
        "new_buf_f64", (ct.I64,), ct.ptr_type(ct.indefinite_array_type(ct.F64))
    ),
    "new_buf_u8": BuiltinDecl(
        "new_buf_u8", (ct.I64,), ct.ptr_type(ct.indefinite_array_type(ct.U8))
    ),
}
# Unary float math: polymorphic over f32/f64, checked specially.
for _name in _MATH_BUILTINS:
    BUILTINS[_name] = BuiltinDecl(_name, (ct.F64,), ct.F64)


class FnScope:
    """Per-function checking context."""

    def __init__(self, decl, parent: "FnScope | None"):
        self.decl = decl  # ast.FnDecl | ast.Lambda
        self.parent = parent
        self.loop_depth = 0
        # The function's declared result type (None = unit).  `return`
        # statements check against this, wherever they are nested.
        self.ret_type = None
        self.ret_declared = False


class Env:
    """Lexical environment mapping names to declarations.

    Each binding records the function scope it was created in, so reads
    from inner functions can be classified as captures.
    """

    def __init__(self, parent: "Env | None" = None):
        self.parent = parent
        self.bindings: dict[str, tuple[object, FnScope | None]] = {}

    def define(self, name: str, decl, fn_scope: FnScope | None) -> None:
        self.bindings[name] = (decl, fn_scope)

    def lookup(self, name: str):
        env: Env | None = self
        while env is not None:
            hit = env.bindings.get(name)
            if hit is not None:
                return hit
            env = env.parent
        return None


def value_fn_type(param_types, ret_type) -> ct.FnType:
    """CPS function type of a surface ``fn(params) -> ret``."""
    ret_params = (ct.MEM,) if ret_type is None else (ct.MEM, ret_type)
    return ct.fn_type((ct.MEM, *param_types, ct.fn_type(ret_params)))


class Sema:
    def __init__(self, module: ast.Module):
        self.module = module
        self.globals = Env()

    # ------------------------------------------------------------------

    def run(self) -> ast.Module:
        for fn in self.module.functions:
            if fn.name in BUILTINS:
                raise TypeError_(f"'{fn.name}' shadows a builtin", fn.loc)
            if self.globals.lookup(fn.name) is not None:
                raise TypeError_(f"duplicate function '{fn.name}'", fn.loc)
            self._declare_fn(fn)
            self.globals.define(fn.name, fn, None)
        for fn in self.module.functions:
            self._check_fn(fn)
        return self.module

    def _declare_fn(self, fn: ast.FnDecl) -> None:
        param_types = []
        for param in fn.params:
            param.type = self.resolve_type(param.type_expr)
            param_types.append(param.type)
        fn.ret_type = (self.resolve_type(fn.ret_type_expr)
                       if fn.ret_type_expr is not None else None)
        if fn.ret_type is ct.UNIT:
            fn.ret_type = None  # `-> ()` is the unit result
        fn.type = value_fn_type(tuple(param_types), fn.ret_type)

    def _check_fn(self, fn: ast.FnDecl) -> None:
        scope = FnScope(fn, None)
        scope.ret_type = fn.ret_type
        scope.ret_declared = True
        env = Env(self.globals)
        for param in fn.params:
            env.define(param.name, param, scope)
        self._check_fn_body(fn, fn.body, fn.ret_type, env, scope)

    def _check_fn_body(self, decl, body: ast.Block, ret_type, env: Env,
                       scope: FnScope) -> None:
        result = self.check_block(body, ret_type, env, scope,
                                  result_expected=ret_type)
        if ret_type is not None and not _diverges(body):
            if result is None:
                raise TypeError_(
                    f"function body must produce {ret_type}, found ()",
                    body.loc,
                )
            if result is not ret_type:
                raise TypeError_(
                    f"function body produces {result}, declared {ret_type}",
                    body.loc,
                )

    # ------------------------------------------------------------------
    # types
    # ------------------------------------------------------------------

    def resolve_type(self, expr: ast.TypeExpr) -> ct.Type:
        if isinstance(expr, ast.PrimTypeExpr):
            return ct.prim_type(expr.name)
        if isinstance(expr, ast.UnitTypeExpr):
            return ct.UNIT
        if isinstance(expr, ast.FnTypeExpr):
            params = tuple(self.resolve_type(t) for t in expr.param_types)
            ret = (self.resolve_type(expr.ret_type)
                   if expr.ret_type is not None else None)
            if ret is ct.UNIT:
                ret = None
            return value_fn_type(params, ret)
        if isinstance(expr, ast.TupleTypeExpr):
            return ct.tuple_type(tuple(self.resolve_type(t)
                                       for t in expr.elem_types))
        if isinstance(expr, ast.ArrayTypeExpr):
            return ct.definite_array_type(self.resolve_type(expr.elem_type),
                                          expr.length)
        if isinstance(expr, ast.BufTypeExpr):
            return ct.ptr_type(
                ct.indefinite_array_type(self.resolve_type(expr.elem_type))
            )
        raise AssertionError(f"unhandled type expr {expr!r}")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def check_block(self, block: ast.Block, ret_type, env: Env,
                    scope: FnScope, result_expected=None):
        """Returns the block's value type (None = unit)."""
        inner = Env(env)
        for stmt in block.stmts:
            self.check_stmt(stmt, ret_type, inner, scope)
        if block.result is not None:
            block.type = self.check_expr(block.result, result_expected,
                                         inner, scope)
        else:
            block.type = None
        return block.type

    def check_stmt(self, stmt: ast.Stmt, ret_type, env: Env,
                   scope: FnScope) -> None:
        if isinstance(stmt, ast.LetStmt):
            expected = (self.resolve_type(stmt.type_expr)
                        if stmt.type_expr is not None else None)
            actual = self.check_expr(stmt.init, expected, env, scope)
            if actual is None:
                raise TypeError_("cannot bind a unit value", stmt.loc)
            if expected is not None and actual is not expected:
                raise TypeError_(
                    f"let '{stmt.name}': declared {expected}, found {actual}",
                    stmt.loc,
                )
            stmt.var_type = actual
            stmt.is_slot = stmt.mutable and isinstance(
                actual, (ct.DefiniteArrayType, ct.TupleType, ct.StructType)
            )
            env.define(stmt.name, stmt, scope)
            return
        if isinstance(stmt, ast.AssignStmt):
            self._check_assign(stmt, env, scope)
            return
        if isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr, None, env, scope)
            return
        if isinstance(stmt, ast.WhileStmt):
            self._expect_bool(stmt.cond, env, scope)
            scope.loop_depth += 1
            self.check_block(stmt.body, ret_type, env, scope)
            scope.loop_depth -= 1
            return
        if isinstance(stmt, ast.ForStmt):
            start_t = self.check_expr(stmt.start, None, env, scope)
            if not (isinstance(start_t, ct.PrimType) and start_t.is_int):
                raise TypeError_("for-range bounds must be integers", stmt.loc)
            end_t = self.check_expr(stmt.end, start_t, env, scope)
            if end_t is not start_t:
                raise TypeError_(
                    f"range bounds disagree: {start_t} vs {end_t}", stmt.loc
                )
            stmt.var_type = start_t
            inner = Env(env)
            inner.define(stmt.name, stmt, scope)
            scope.loop_depth += 1
            self.check_block(stmt.body, ret_type, inner, scope)
            scope.loop_depth -= 1
            return
        if isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if scope.loop_depth == 0:
                kind = "break" if isinstance(stmt, ast.BreakStmt) else "continue"
                raise TypeError_(f"'{kind}' outside of a loop", stmt.loc)
            return
        if isinstance(stmt, ast.ReturnStmt):
            if not scope.ret_declared:
                raise TypeError_(
                    "'return' requires a declared result type "
                    "(annotate the lambda)", stmt.loc,
                )
            want = scope.ret_type
            if want is None:
                if stmt.value is not None:
                    raise TypeError_("returning a value from a unit function",
                                     stmt.loc)
                return
            if stmt.value is None:
                raise TypeError_(f"return needs a value of type {want}",
                                 stmt.loc)
            actual = self.check_expr(stmt.value, want, env, scope)
            if actual is not want:
                raise TypeError_(
                    f"return type mismatch: expected {want}, found {actual}",
                    stmt.loc,
                )
            return
        raise AssertionError(f"unhandled stmt {stmt!r}")

    def _check_assign(self, stmt: ast.AssignStmt, env: Env,
                      scope: FnScope) -> None:
        target = stmt.target
        target_t = self._check_assign_target(target, env, scope)
        value_t = self.check_expr(stmt.value, target_t, env, scope)
        if value_t is not target_t:
            raise TypeError_(
                f"assignment type mismatch: {target_t} vs {value_t}", stmt.loc
            )
        if stmt.op is not None:
            _binary_result(stmt.op, target_t, stmt.loc)

    def _check_assign_target(self, target: ast.Expr, env: Env,
                             scope: FnScope) -> ct.Type:
        if isinstance(target, ast.Name):
            decl, decl_scope = self._resolve_name(target, env, scope)
            if isinstance(decl, ast.LetStmt) and decl.mutable:
                if decl_scope is not scope:
                    raise TypeError_(
                        f"cannot assign captured variable '{target.ident}'",
                        target.loc,
                    )
                target.type = decl.var_type
                return decl.var_type
            raise TypeError_(
                f"'{target.ident}' is not a mutable variable", target.loc
            )
        if isinstance(target, ast.Index):
            base_t = self._check_index_base(target, env, scope)
            target.type = base_t
            return base_t
        raise TypeError_("unsupported assignment target", target.loc)

    def _check_index_base(self, index: ast.Index, env: Env,
                          scope: FnScope) -> ct.Type:
        """Checks ``base[i]`` and returns the element type."""
        base_t = self.check_expr(index.base, None, env, scope)
        index_t = self.check_expr(index.index, ct.I64, env, scope)
        if not (isinstance(index_t, ct.PrimType) and index_t.is_int):
            raise TypeError_("index must be an integer", index.loc)
        if isinstance(base_t, ct.PtrType) and isinstance(
            base_t.pointee, ct.IndefiniteArrayType
        ):
            return base_t.pointee.elem_type
        if isinstance(base_t, ct.DefiniteArrayType):
            return base_t.elem_type
        raise TypeError_(f"cannot index into {base_t}", index.loc)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def check_expr(self, expr: ast.Expr, expected, env: Env,
                   scope: FnScope):
        t = self._check_expr(expr, expected, env, scope)
        expr.type = t
        return t

    def _check_expr(self, expr: ast.Expr, expected, env: Env,
                    scope: FnScope):
        if isinstance(expr, ast.IntLit):
            if expr.suffix is not None:
                return ct.prim_type(expr.suffix)
            if (isinstance(expected, ct.PrimType) and expected.is_int):
                return expected
            return ct.I64
        if isinstance(expr, ast.FloatLit):
            if expr.suffix is not None:
                return ct.prim_type(expr.suffix)
            if isinstance(expected, ct.PrimType) and expected.is_float:
                return expected
            return ct.F64
        if isinstance(expr, ast.BoolLit):
            return ct.BOOL
        if isinstance(expr, ast.UnitLit):
            return None
        if isinstance(expr, ast.Name):
            decl, _scope = self._resolve_name(expr, env, scope)
            return _decl_type(decl, expr)
        if isinstance(expr, ast.Block):
            return self.check_block(expr, None, env, scope)
        if isinstance(expr, ast.TupleLit):
            expected_elems = (expected.elem_types
                              if isinstance(expected, ct.TupleType)
                              and len(expected.elem_types) == len(expr.elems)
                              else [None] * len(expr.elems))
            elems = [self.check_expr(e, et, env, scope)
                     for e, et in zip(expr.elems, expected_elems)]
            if any(t is None for t in elems):
                raise TypeError_("tuples cannot contain unit values", expr.loc)
            return ct.tuple_type(tuple(elems))
        if isinstance(expr, ast.ArrayLit):
            return self._check_array_lit(expr, expected, env, scope)
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr, expected, env, scope)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, expected, env, scope)
        if isinstance(expr, ast.CastExpr):
            to = self.resolve_type(expr.type_expr)
            frm = self.check_expr(expr.value, None, env, scope)
            if not (isinstance(to, ct.PrimType) and isinstance(frm, ct.PrimType)):
                raise TypeError_(f"cannot cast {frm} to {to}", expr.loc)
            return to
        if isinstance(expr, ast.IfExpr):
            return self._check_if(expr, expected, env, scope)
        if isinstance(expr, ast.Call):
            return self._check_call(expr, env, scope)
        if isinstance(expr, ast.Index):
            return self._check_index_base(expr, env, scope)
        if isinstance(expr, ast.TupleField):
            base_t = self.check_expr(expr.base, None, env, scope)
            if not isinstance(base_t, ct.TupleType):
                raise TypeError_(f"'.{expr.field}' on non-tuple {base_t}",
                                 expr.loc)
            if expr.field >= len(base_t.elem_types):
                raise TypeError_(
                    f"tuple field {expr.field} out of range", expr.loc
                )
            return base_t.elem_types[expr.field]
        if isinstance(expr, ast.Lambda):
            return self._check_lambda(expr, expected, env, scope)
        raise AssertionError(f"unhandled expr {expr!r}")

    def _check_array_lit(self, expr: ast.ArrayLit, expected, env, scope):
        elem_expected = (expected.elem_type
                         if isinstance(expected, ct.DefiniteArrayType) else None)
        if expr.repeat is not None:
            elem_t = self.check_expr(expr.repeat, elem_expected, env, scope)
            if elem_t is None:
                raise TypeError_("array of unit values", expr.loc)
            return ct.definite_array_type(elem_t, expr.count)
        assert expr.elems
        elem_t = self.check_expr(expr.elems[0], elem_expected, env, scope)
        for e in expr.elems[1:]:
            t = self.check_expr(e, elem_t, env, scope)
            if t is not elem_t:
                raise TypeError_(
                    f"array elements disagree: {elem_t} vs {t}", e.loc
                )
        return ct.definite_array_type(elem_t, len(expr.elems))

    def _check_unary(self, expr: ast.Unary, expected, env, scope):
        if expr.op == "!":
            # `!` is logical not on bool, bitwise not on integers.
            t = self.check_expr(expr.operand, expected, env, scope)
            if isinstance(t, ct.PrimType) and (t.is_bool or t.is_int):
                return t
            raise TypeError_(f"cannot apply '!' to {t}", expr.loc)
        assert expr.op == "-"
        t = self.check_expr(expr.operand, expected, env, scope)
        if not (isinstance(t, ct.PrimType) and (t.is_float or t.is_signed)):
            raise TypeError_(f"cannot negate {t}", expr.loc)
        return t

    def _check_binary(self, expr: ast.Binary, expected, env, scope):
        op = expr.op
        if op in ("&&", "||"):
            self._expect_bool(expr.lhs, env, scope)
            self._expect_bool(expr.rhs, env, scope)
            return ct.BOOL
        if op in ("==", "!=", "<", "<=", ">", ">="):
            lhs_t = self.check_expr(expr.lhs, None, env, scope)
            rhs_t = self.check_expr(expr.rhs, lhs_t, env, scope)
            if lhs_t is not rhs_t:
                # Literal on the left may need the right's type.
                lhs_t = self.check_expr(expr.lhs, rhs_t, env, scope)
            if lhs_t is not rhs_t or not isinstance(lhs_t, ct.PrimType):
                raise TypeError_(
                    f"cannot compare {lhs_t} with {rhs_t}", expr.loc
                )
            return ct.BOOL
        hint = expected if isinstance(expected, ct.PrimType) else None
        lhs_t = self.check_expr(expr.lhs, hint, env, scope)
        rhs_t = self.check_expr(expr.rhs, lhs_t, env, scope)
        if lhs_t is not rhs_t:
            lhs_t = self.check_expr(expr.lhs, rhs_t, env, scope)
        if lhs_t is not rhs_t:
            raise TypeError_(
                f"operand types disagree: {lhs_t} {op} {rhs_t}", expr.loc
            )
        return _binary_result(op, lhs_t, expr.loc)

    def _check_if(self, expr: ast.IfExpr, expected, env, scope):
        self._expect_bool(expr.cond, env, scope)
        then_t = self.check_block(expr.then_block, None, env, scope)
        if expr.else_block is None:
            if then_t is not None:
                raise TypeError_(
                    "if-expression without else cannot produce a value",
                    expr.loc,
                )
            return None
        if isinstance(expr.else_block, ast.IfExpr):
            else_t = self.check_expr(expr.else_block, then_t, env, scope)
        else:
            else_t = self.check_block(expr.else_block, None, env, scope)
        if then_t is not else_t:
            if _diverges(expr.then_block):
                return else_t
            if (isinstance(expr.else_block, ast.Block)
                    and _diverges(expr.else_block)):
                return then_t
            raise TypeError_(
                f"if branches disagree: {then_t} vs {else_t}", expr.loc
            )
        return then_t

    def _check_call(self, expr: ast.Call, env, scope):
        callee = expr.callee
        if isinstance(callee, ast.Name):
            hit = env.lookup(callee.ident) or (
                (BUILTINS[callee.ident], None)
                if callee.ident in BUILTINS else None
            )
            if hit is None:
                raise TypeError_(f"unknown function '{callee.ident}'",
                                 callee.loc)
            decl, decl_scope = hit
            callee.decl = decl
            if isinstance(decl, BuiltinDecl):
                return self._check_builtin_call(expr, decl, env, scope)
            self._check_capture(callee, decl, decl_scope, scope)
            callee.type = _decl_type(decl, callee)
        else:
            self.check_expr(callee, None, env, scope)
        fn_t = callee.type
        if not isinstance(fn_t, ct.FnType) or not fn_t.is_returning():
            raise TypeError_(f"cannot call a value of type {fn_t}", expr.loc)
        # CPS convention: (mem, params..., ret)
        param_types = fn_t.param_types[1:-1]
        ret_fn = fn_t.param_types[-1]
        assert isinstance(ret_fn, ct.FnType)
        if len(expr.args) != len(param_types):
            raise TypeError_(
                f"call expects {len(param_types)} arguments, got "
                f"{len(expr.args)}", expr.loc,
            )
        for arg, pt in zip(expr.args, param_types):
            at = self.check_expr(arg, pt, env, scope)
            if at is not pt:
                raise TypeError_(
                    f"argument type mismatch: expected {pt}, found {at}",
                    arg.loc,
                )
        if len(ret_fn.param_types) == 1:
            return None
        return ret_fn.param_types[1]

    def _check_builtin_call(self, expr: ast.Call, decl: BuiltinDecl,
                            env, scope):
        if decl.name in _MATH_BUILTINS:
            if len(expr.args) != 1:
                raise TypeError_(f"{decl.name} takes one argument", expr.loc)
            t = self.check_expr(expr.args[0], ct.F64, env, scope)
            if not (isinstance(t, ct.PrimType) and t.is_float):
                raise TypeError_(f"{decl.name} needs a float, found {t}",
                                 expr.loc)
            return t
        if len(expr.args) != len(decl.param_types):
            raise TypeError_(
                f"{decl.name} takes {len(decl.param_types)} arguments",
                expr.loc,
            )
        for arg, pt in zip(expr.args, decl.param_types):
            at = self.check_expr(arg, pt, env, scope)
            if at is not pt:
                raise TypeError_(
                    f"argument type mismatch: expected {pt}, found {at}",
                    arg.loc,
                )
        return decl.ret_type

    def _check_lambda(self, expr: ast.Lambda, expected, env, scope):
        param_types = []
        for param in expr.params:
            param.type = self.resolve_type(param.type_expr)
            param_types.append(param.type)
        ret_type = (self.resolve_type(expr.ret_type_expr)
                    if expr.ret_type_expr is not None else None)
        if ret_type is ct.UNIT:
            ret_type = None
        if ret_type is None and isinstance(expected, ct.FnType):
            # Infer the result from the expected type's return continuation.
            ret_fn = expected.param_types[-1]
            if isinstance(ret_fn, ct.FnType) and len(ret_fn.param_types) == 2:
                ret_type = ret_fn.param_types[1]
        inner_scope = FnScope(expr, scope)
        inner_scope.ret_type = ret_type
        inner_scope.ret_declared = ret_type is not None
        inner_env = Env(env)
        for param in expr.params:
            inner_env.define(param.name, param, inner_scope)
        body_t = self.check_block(expr.body, ret_type, inner_env, inner_scope,
                                  result_expected=ret_type)
        if ret_type is None and not _diverges(expr.body):
            ret_type = body_t
        elif (ret_type is not None and body_t is not ret_type
              and not _diverges(expr.body)):
            raise TypeError_(
                f"lambda body produces {body_t}, expected {ret_type}",
                expr.loc,
            )
        expr.ret_type = ret_type
        expr.fn_type = value_fn_type(tuple(param_types), ret_type)
        return expr.fn_type

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _resolve_name(self, expr: ast.Name, env: Env, scope: FnScope):
        hit = env.lookup(expr.ident)
        if hit is None:
            if expr.ident in BUILTINS:
                raise TypeError_(
                    f"builtin '{expr.ident}' can only be called", expr.loc
                )
            raise TypeError_(f"unknown name '{expr.ident}'", expr.loc)
        decl, decl_scope = hit
        expr.decl = decl
        self._check_capture(expr, decl, decl_scope, scope)
        return decl, decl_scope

    def _check_capture(self, expr: ast.Name, decl, decl_scope,
                       scope: FnScope) -> None:
        if decl_scope is None or decl_scope is scope:
            return  # global or same function
        # Reading across a function boundary: capture by value.
        if isinstance(decl, ast.LetStmt) and (decl.mutable or decl.is_slot):
            raise TypeError_(
                f"cannot capture mutable variable '{expr.ident}' "
                f"(capture is by value)", expr.loc,
            )
        if isinstance(decl, ast.ForStmt):
            raise TypeError_(
                f"cannot capture loop variable '{expr.ident}'", expr.loc
            )

    def _expect_bool(self, expr: ast.Expr, env: Env, scope: FnScope) -> None:
        t = self.check_expr(expr, ct.BOOL, env, scope)
        if t is not ct.BOOL:
            raise TypeError_(f"expected bool, found {t}", expr.loc)


def _decl_type(decl, expr: ast.Name):
    if isinstance(decl, ast.LetStmt):
        return decl.var_type
    if isinstance(decl, ast.ParamDecl):
        return decl.type
    if isinstance(decl, ast.FnDecl):
        return decl.type
    if isinstance(decl, ast.ForStmt):
        return decl.var_type
    if isinstance(decl, BuiltinDecl):
        raise TypeError_(
            f"builtin '{decl.name}' is not a first-class value", expr.loc
        )
    raise AssertionError(f"unhandled decl {decl!r}")


_INT_ONLY_OPS = frozenset({"%", "&", "|", "^", "<<", ">>"})


def _binary_result(op: str, t, loc) -> ct.Type:
    if not isinstance(t, ct.PrimType):
        raise TypeError_(f"operator '{op}' on non-scalar {t}", loc)
    if t.is_bool:
        if op in ("&", "|", "^"):
            return t
        raise TypeError_(f"operator '{op}' on bool", loc)
    if op in _INT_ONLY_OPS and not t.is_int:
        raise TypeError_(f"operator '{op}' needs integers, found {t}", loc)
    return t


def _diverges(block: ast.Block) -> bool:
    """Conservative: does the block end in return/break/continue?"""
    if block.result is not None:
        return False
    if not block.stmts:
        return False
    last = block.stmts[-1]
    return isinstance(last, (ast.ReturnStmt, ast.BreakStmt, ast.ContinueStmt))


def analyze(module: ast.Module) -> ast.Module:
    """Type check and annotate the module in place."""
    return Sema(module).run()

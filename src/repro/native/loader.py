"""ctypes loader/executor for native shared objects.

A :class:`NativeModule` wraps one ``dlopen``'d ``.so`` produced by
:func:`repro.native.driver.compile_shared` from a
:class:`~repro.native.runtime.NativeEmitter` emission.  Its
:meth:`~NativeModule.run` exposes the same observation contract as the
interpreter and the VM — ``(result, trap kind, print stream)`` — so the
differential oracle and the serve daemon can treat machine code as just
another engine.

Marshalling follows the fixed entry ABI: every argument and the result
travel as an i64 bit pattern (floats bitcast), the wrapper's return
value is a trap code.  Values are converted to/from the *public* value
convention the other engines use (signed Python ints for ``i*`` types,
canonical unsigned for ``u*``, Python floats for ``f*``).

Modules are never ``dlclose``'d — each is a few KiB and unloading C
code that might still be referenced is a classic source of crashes; a
process that loads thousands of fuzz programs pays megabytes, not more.
"""

from __future__ import annotations

import ctypes
import struct
from dataclasses import dataclass
from pathlib import Path

from ..core import fold

#: Wrapper return codes -> the trap kinds the other engines report.
#: Keep in sync with the enum in runtime.RUNTIME_H.
TRAP_KINDS = {1: "div-by-zero", 2: "step-limit", 3: "oom"}

#: Default per-call fuel (block/function entries).  Generated and suite
#: programs burn orders of magnitude less; callers with tighter latency
#: needs pass their own budget.
DEFAULT_FUEL = 1 << 40


class NativeRunError(Exception):
    """The module/entry could not be loaded or called (not a trap)."""


@dataclass(frozen=True)
class NativeRun:
    """One native execution: public result, trap kind, print stream."""

    result: object
    trap: str | None
    output: str


def _pack(kind: str, value) -> int:
    """Public value -> signed 64-bit payload for the argv array."""
    if kind in ("f64", "f32"):
        return struct.unpack("<q", struct.pack("<d", float(value)))[0]
    if kind == "bool":
        return 1 if value else 0
    return fold.to_signed(int(value) & ((1 << 64) - 1), 64)


def _unpack(kind: str, bits: int):
    """Signed 64-bit out payload -> public value."""
    if kind == "void":
        return None
    if kind in ("f64", "f32"):
        return struct.unpack("<d", struct.pack("<q", bits))[0]
    if kind == "bool":
        return bool(bits)
    width = int(kind[1:])
    canonical = bits & ((1 << width) - 1)
    if kind.startswith("u"):
        return canonical
    return fold.to_signed(canonical, width)


class NativeModule:
    """One loaded ``.so`` with its entry metadata."""

    def __init__(self, so_path: str | Path, entry_meta: dict):
        self.so_path = Path(so_path)
        self.entry_meta = dict(entry_meta)
        try:
            self._lib = ctypes.CDLL(str(self.so_path))
        except OSError as exc:
            raise NativeRunError(f"dlopen failed: {exc}") from exc
        self._lib.repro_set_fuel.argtypes = [ctypes.c_int64]
        self._lib.repro_set_fuel.restype = None
        self._lib.repro_out_data.restype = ctypes.c_void_p
        self._lib.repro_out_size.restype = ctypes.c_int64
        self._entries: dict[str, ctypes.CFUNCTYPE] = {}

    def _entry(self, name: str):
        fn = self._entries.get(name)
        if fn is None:
            if name not in self.entry_meta:
                raise NativeRunError(
                    f"entry {name!r} has no native wrapper (non-scalar "
                    f"signature?); wrapped: {sorted(self.entry_meta)}")
            symbol = self.entry_meta[name].get("symbol",
                                               f"repro_run_{name}")
            try:
                fn = getattr(self._lib, symbol)
            except AttributeError as exc:
                raise NativeRunError(
                    f"symbol {symbol} missing from "
                    f"{self.so_path}") from exc
            fn.argtypes = [ctypes.POINTER(ctypes.c_int64),
                           ctypes.POINTER(ctypes.c_int64)]
            fn.restype = ctypes.c_int32
            self._entries[name] = fn
        return fn

    def run(self, entry: str, args=(), *,
            fuel: int = DEFAULT_FUEL) -> NativeRun:
        """Execute one entry call; traps come back as ``NativeRun.trap``."""
        fn = self._entry(entry)
        meta = self.entry_meta[entry]
        kinds = meta["params"]
        if len(args) != len(kinds):
            raise NativeRunError(
                f"{entry} takes {len(kinds)} arguments, got {len(args)}")
        packed = [_pack(kind, value) for kind, value in zip(kinds, args)]
        argv = (ctypes.c_int64 * max(1, len(packed)))(*packed)
        out = ctypes.c_int64(0)
        self._lib.repro_set_fuel(ctypes.c_int64(fuel))
        code = fn(argv, ctypes.byref(out))
        size = self._lib.repro_out_size()
        data = ctypes.string_at(self._lib.repro_out_data(), size) \
            if size else b""
        output = data.decode("utf-8", "replace")
        if code != 0:
            return NativeRun(None, TRAP_KINDS.get(code, f"trap-{code}"),
                             output)
        return NativeRun(_unpack(meta["result"], out.value), None, output)

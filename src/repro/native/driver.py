"""The native compiler driver: system ``cc`` -> content-addressed ``.so``.

Discovery honours ``REPRO_CC`` then falls back to ``cc``/``gcc``/
``clang`` on PATH; :func:`native_available` is the single gate the
oracle, tests and the serve daemon all use.

Flag choices are semantic, not stylistic:

* ``-fwrapv`` — the IR's integers wrap (two's complement);
* ``-fno-builtin`` — keep the compiler from pattern-matching our
  arithmetic into library calls with different edge-case behaviour;
* ``-ffp-contract=off`` — gcc defaults to contracting ``a*b+c`` into
  fused multiply-add at ``-O2``, which changes f64 results by an ulp
  and would break bit-identity with the interpreter/VM (IEEE doubles,
  one rounding per operation).

:class:`NativeStore` mirrors the serve artifact cache's layout
(``objects/<k[:2]>/<k>.so``, atomic tmp+rename, shared-nothing-safe):
the key is a sha256 over the emitted C, the exact flag vector and the
``cc --version`` banner, so upgrading the system compiler or changing
flags can never serve a stale object.
"""

from __future__ import annotations

import functools
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

from ..core.snapshot import canonical_json

STORE_FORMAT = 1

DEFAULT_CC_FLAGS = ("-O2", "-fPIC", "-shared", "-fwrapv", "-fno-builtin",
                    "-ffp-contract=off")

DEFAULT_CC_TIMEOUT = 60.0


class NativeBuildError(Exception):
    """A failed native build, with structured diagnostics."""

    def __init__(self, stage: str, message: str, *, command=None,
                 returncode=None, stderr: str = ""):
        self.stage = stage          # "no-cc" | "compile" | "timeout"
        self.command = list(command) if command else None
        self.returncode = returncode
        self.stderr = stderr
        super().__init__(message)

    def as_dict(self) -> dict:
        return {"stage": self.stage, "message": str(self),
                "command": self.command, "returncode": self.returncode,
                "stderr": self.stderr[:2000]}


def find_cc() -> str | None:
    """The C compiler to use, or ``None`` when the host has none."""
    env = os.environ.get("REPRO_CC")
    if env:
        return env if shutil.which(env) else None
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return name
    return None


def native_available() -> bool:
    return find_cc() is not None


@functools.lru_cache(maxsize=8)
def cc_version(cc: str) -> str:
    """First line of ``cc --version`` (part of the store key)."""
    try:
        probe = subprocess.run([cc, "--version"], capture_output=True,
                               text=True, timeout=10.0)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return (probe.stdout or probe.stderr).splitlines()[0] \
        if (probe.stdout or probe.stderr) else "unknown"


def compile_shared(c_source: str, out_path: str | Path, *,
                   cc: str | None = None,
                   flags: tuple = DEFAULT_CC_FLAGS,
                   timeout: float = DEFAULT_CC_TIMEOUT) -> Path:
    """Compile *c_source* into the shared object *out_path*.

    Raises :class:`NativeBuildError` with the compiler's stderr on any
    failure; the write is atomic (tmp + rename) so a concurrent builder
    of the same object can only race to identical bytes.
    """
    cc = cc or find_cc()
    if cc is None:
        raise NativeBuildError("no-cc", "no C compiler on PATH "
                               "(set REPRO_CC or install cc/gcc/clang)")
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(prefix="repro-native-",
                                     dir=out_path.parent) as tmp:
        cfile = Path(tmp) / "unit.c"
        sofile = Path(tmp) / "unit.so"
        cfile.write_text(c_source)
        command = [cc, *flags, str(cfile), "-o", str(sofile), "-lm"]
        try:
            built = subprocess.run(command, capture_output=True, text=True,
                                   timeout=timeout)
        except subprocess.TimeoutExpired as exc:
            raise NativeBuildError(
                "timeout", f"{cc} exceeded the {timeout}s build budget",
                command=command) from exc
        except OSError as exc:
            raise NativeBuildError("compile", f"could not run {cc}: {exc}",
                                   command=command) from exc
        if built.returncode != 0:
            raise NativeBuildError(
                "compile",
                f"{cc} rejected the emission (exit {built.returncode}): "
                f"{built.stderr[:500]}",
                command=command, returncode=built.returncode,
                stderr=built.stderr)
        os.replace(sofile, out_path)
    return out_path


class NativeStore:
    """Content-addressed ``.so`` store beside the serve object store.

    Immutable once written: two builders of the same key race to
    identical bytes, so no locking is needed.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def key(self, c_source: str, *, cc: str,
            flags: tuple = DEFAULT_CC_FLAGS) -> str:
        material = {
            "format": STORE_FORMAT,
            "c_sha256": hashlib.sha256(
                c_source.encode("utf-8")).hexdigest(),
            "flags": list(flags),
            "cc_version": cc_version(cc),
        }
        return hashlib.sha256(
            canonical_json(material).encode("utf-8")).hexdigest()

    def object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.so"

    def get_or_build(self, c_source: str, *, cc: str | None = None,
                     flags: tuple = DEFAULT_CC_FLAGS,
                     timeout: float = DEFAULT_CC_TIMEOUT
                     ) -> tuple[Path, str, bool]:
        """``(so_path, key, cached)`` — building only on a store miss."""
        cc = cc or find_cc()
        if cc is None:
            raise NativeBuildError("no-cc", "no C compiler on PATH")
        key = self.key(c_source, cc=cc, flags=flags)
        path = self.object_path(key)
        if path.exists():
            return path, key, True
        compile_shared(c_source, path, cc=cc, flags=flags, timeout=timeout)
        return path, key, False

"""The native runtime preamble and the hardened C emitter.

:data:`RUNTIME_H` is the ``repro_rt.h``-style header prepended to every
native translation unit.  It supplies everything the plain C emission
lacks to *run* with the IR's semantics:

* **traps** — a ``setjmp``-based abort channel.  Guarded division
  helpers report division by zero as a structured trap code instead of
  a SIGFPE, and ``INT_MIN / -1`` wraps (two's complement) exactly like
  :func:`repro.core.fold._int_arith`.  Shift helpers mask the amount by
  ``width - 1`` and use arithmetic shift for signed ``>>``.
* **fuel** — a step budget decremented at every function and block
  entry.  A miscompile that manufactures an infinite loop surfaces as a
  ``step-limit`` trap (mirroring the VM's ``max_steps``) instead of
  hanging the host process, which matters because the loader runs the
  code *in-process* where no deadline can interrupt it.
* **print capture** — ``print_i64/f64/char`` append to a growable
  buffer rather than stdout, so the loader can return the print stream
  byte-for-byte.  The float formatter reproduces CPython's ``repr``
  (shortest round-tripping digits, fixed notation for ``-4 <= exp10 <
  16``, trailing ``.0`` on integral values) because that is what the
  VM's ``PRINT_F64`` emits.
* **a fixed entry ABI** — for every function with an all-scalar
  signature the emitter appends an ``extern`` wrapper::

      int32_t repro_run_<name>(const int64_t *argv, int64_t *out);

  Arguments and the result travel as i64 bit patterns (floats bitcast
  via ``memcpy``); the return value is ``0`` or a trap code.

:class:`NativeEmitter` subclasses the plain
:class:`~repro.backend.c_emitter.CEmitter`, overriding only the
documented hook surface; the control-flow and scheduling logic is
shared with the human-readable emission.
"""

from __future__ import annotations

import math

from ..backend.c_emitter import CEmitter, c_type, _is_mem, _peel
from ..core.defs import Continuation, Def, Intrinsic
from ..core.primops import ArithKind, ArithOp, Bitcast, Cast
from ..core.types import FnType, PrimType
from ..core.world import World

#: Trap codes returned by the entry wrappers; keep in sync with the
#: enum in RUNTIME_H and TRAP_KINDS in loader.py.
TRAP_OK = 0
TRAP_DIV = 1
TRAP_FUEL = 2
TRAP_OOM = 3

RUNTIME_H = r"""/* repro_rt: runtime preamble for native execution (see DESIGN.md 4f) */
#include <stdint.h>
#include <stdbool.h>
#include <stdlib.h>
#include <string.h>
#include <stdio.h>
#include <setjmp.h>
#include <math.h>

/* flat aggregate-by-value fallback */
typedef struct { int64_t w[8]; } word_block;

enum {
    REPRO_TRAP_DIV  = 1,  /* integer division by zero */
    REPRO_TRAP_FUEL = 2,  /* block-entry budget exhausted (step-limit) */
    REPRO_TRAP_OOM  = 3   /* print buffer allocation failed */
};

static struct {
    jmp_buf jb;
    int32_t trap;
    int64_t fuel;
    char   *out;
    size_t  out_len;
    size_t  out_cap;
} repro_rt = { .fuel = INT64_MAX };

static void repro_trap(int32_t code) {
    repro_rt.trap = code;
    longjmp(repro_rt.jb, 1);
}

#define REPRO_FUEL() \
    do { if (--repro_rt.fuel < 0) repro_trap(REPRO_TRAP_FUEL); } while (0)

/* -- print capture ---------------------------------------------------- */

static void repro_out_write(const char *data, size_t n) {
    if (repro_rt.out_len + n > repro_rt.out_cap) {
        size_t cap = repro_rt.out_cap ? repro_rt.out_cap : 256;
        while (cap < repro_rt.out_len + n) cap *= 2;
        char *grown = (char *)realloc(repro_rt.out, cap);
        if (!grown) repro_trap(REPRO_TRAP_OOM);
        repro_rt.out = grown;
        repro_rt.out_cap = cap;
    }
    memcpy(repro_rt.out + repro_rt.out_len, data, n);
    repro_rt.out_len += n;
}

static void repro_print_i64(int64_t v) {
    char buf[32];
    int n = snprintf(buf, sizeof buf, "%lld", (long long)v);
    repro_out_write(buf, (size_t)n);
}

/* CPython repr(float): shortest digit string that round-trips, fixed
   notation iff -4 <= exp10 < 16, integral values keep a ".0". */
static void repro_print_f64(double v) {
    char buf[64];
    if (isnan(v)) {
        repro_out_write("nan", 3);
        return;
    }
    if (isinf(v)) {
        if (v < 0) repro_out_write("-inf", 4);
        else repro_out_write("inf", 3);
        return;
    }
    int prec = 17;
    for (int p = 1; p <= 17; p++) {
        snprintf(buf, sizeof buf, "%.*e", p - 1, v);
        if (strtod(buf, NULL) == v) { prec = p; break; }
    }
    /* buf now holds "d.ddd...e(+|-)XX" with prec significant digits */
    const char *e = strchr(buf, 'e');
    int exp10 = (int)strtol(e + 1, NULL, 10);
    if (exp10 < -4 || exp10 >= 16) {
        /* scientific, as C prints it (>= 2 exponent digits, like
           CPython); drop nothing — prec is already minimal. */
        repro_out_write(buf, strlen(buf));
        return;
    }
    int decimals = prec - 1 - exp10;
    if (decimals < 0) decimals = 0;
    snprintf(buf, sizeof buf, "%.*f", decimals, v);
    repro_out_write(buf, strlen(buf));
    if (decimals == 0) repro_out_write(".0", 2);
}

/* PRINT_CHAR carries a unicode codepoint (the VM does chr(v)): encode
   it as UTF-8; invalid codepoints become U+FFFD like Python's
   errors="replace". */
static void repro_print_char(int64_t cp) {
    char buf[4];
    if (cp < 0 || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF))
        cp = 0xFFFD;
    if (cp < 0x80) {
        buf[0] = (char)cp;
        repro_out_write(buf, 1);
    } else if (cp < 0x800) {
        buf[0] = (char)(0xC0 | (cp >> 6));
        buf[1] = (char)(0x80 | (cp & 0x3F));
        repro_out_write(buf, 2);
    } else if (cp < 0x10000) {
        buf[0] = (char)(0xE0 | (cp >> 12));
        buf[1] = (char)(0x80 | ((cp >> 6) & 0x3F));
        buf[2] = (char)(0x80 | (cp & 0x3F));
        repro_out_write(buf, 3);
    } else {
        buf[0] = (char)(0xF0 | (cp >> 18));
        buf[1] = (char)(0x80 | ((cp >> 12) & 0x3F));
        buf[2] = (char)(0x80 | ((cp >> 6) & 0x3F));
        buf[3] = (char)(0x80 | (cp & 0x3F));
        repro_out_write(buf, 4);
    }
}

/* -- guarded integer arithmetic (fold.py semantics) ------------------- */

#define REPRO_DEF_SINT(NAME, T, UT, W) \
static T repro_div_##NAME(T a, T b) { \
    if (b == 0) repro_trap(REPRO_TRAP_DIV); \
    if (b == (T)-1) return (T)(0u - (UT)a); /* INT_MIN/-1 wraps */ \
    return (T)(a / b); \
} \
static T repro_rem_##NAME(T a, T b) { \
    if (b == 0) repro_trap(REPRO_TRAP_DIV); \
    if (b == (T)-1) return 0; \
    return (T)(a % b); \
} \
static T repro_shl_##NAME(T a, T b) { \
    return (T)((UT)a << ((UT)b & (W - 1))); \
} \
static T repro_shr_##NAME(T a, T b) { \
    return (T)(a >> ((UT)b & (W - 1))); /* arithmetic: T is signed */ \
}

#define REPRO_DEF_UINT(NAME, T, W) \
static T repro_div_##NAME(T a, T b) { \
    if (b == 0) repro_trap(REPRO_TRAP_DIV); \
    return (T)(a / b); \
} \
static T repro_rem_##NAME(T a, T b) { \
    if (b == 0) repro_trap(REPRO_TRAP_DIV); \
    return (T)(a % b); \
} \
static T repro_shl_##NAME(T a, T b) { \
    return (T)(a << (b & (W - 1))); \
} \
static T repro_shr_##NAME(T a, T b) { \
    return (T)(a >> (b & (W - 1))); \
}

REPRO_DEF_SINT(s8,  int8_t,  uint8_t,  8)
REPRO_DEF_SINT(s16, int16_t, uint16_t, 16)
REPRO_DEF_SINT(s32, int32_t, uint32_t, 32)
REPRO_DEF_SINT(s64, int64_t, uint64_t, 64)
REPRO_DEF_UINT(u8,  uint8_t,  8)
REPRO_DEF_UINT(u16, uint16_t, 16)
REPRO_DEF_UINT(u32, uint32_t, 32)
REPRO_DEF_UINT(u64, uint64_t, 64)

/* float -> int cast with fold.py semantics: truncate toward zero, wrap
   mod 2^64 (narrower targets truncate the low bits); NaN and the
   infinities map to 0. */
static uint64_t repro_cast_f2i(double x) {
    if (!isfinite(x)) return 0;
    double t = trunc(x);
    double m = fmod(t, 18446744073709551616.0);          /* 2^64; exact */
    /* |m| < 2^64, so the double->uint64 conversions below are exact.
       The negative branch must wrap in *integer* arithmetic: adding
       2^64 in double rounds to a multiple of 4096 (the ulp at 2^64). */
    if (m < 0)
        return (uint64_t)0 - (uint64_t)-m;               /* mod-2^64 wrap */
    if (m >= 9223372036854775808.0)                      /* 2^63 */
        return (uint64_t)(m - 9223372036854775808.0)
               | 0x8000000000000000ULL;
    return (uint64_t)m;
}

/* -- exported control surface ----------------------------------------- */

void repro_set_fuel(int64_t fuel) { repro_rt.fuel = fuel; }
const char *repro_out_data(void) {
    return repro_rt.out ? repro_rt.out : "";
}
int64_t repro_out_size(void) { return (int64_t)repro_rt.out_len; }
"""


def _abi_kind(t) -> str | None:
    """The wire kind of a scalar type, or ``None`` if not marshallable."""
    if isinstance(t, PrimType):
        return str(t)
    return None


class NativeEmitter(CEmitter):
    """C emission hardened for actual compilation and execution.

    Differences from the plain emitter, all via the hook surface:

    * the prelude is :data:`RUNTIME_H` plus forward declarations for
      every function (the shared emitter writes bodies in scope order,
      so calls to later functions need prototypes);
    * integer ``/ % << >>`` go through the guarded ``repro_*`` helpers,
      float ``%`` becomes ``fmod`` (C has no float ``%``);
    * float -> int casts go through ``repro_cast_f2i``;
    * ``INT64_MIN``/``INT32_MIN`` literals avoid the C "negate a too-big
      constant" pitfall; non-finite float literals become expressions;
    * prints append to the capture buffer;
    * every function and block entry burns one unit of fuel;
    * after the bodies, an ``extern`` ABI wrapper is emitted per
      all-scalar function, recorded in :attr:`entry_meta` as
      ``{name: {"params": [kind...], "result": kind}}``.
    """

    def __init__(self, world: World, fuel_checks: bool = True):
        super().__init__(world)
        self.entry_meta: dict[str, dict] = {}
        self._fuel_checks = fuel_checks
        self._fn_named: dict[Continuation, str] = {}
        self._fn_names_taken: set[str] = set()

    # -- naming: definitions and calls must agree; two top-level
    # -- functions may share a source-level name after specialization;
    # -- and user names must not collide with libc/libm declarations
    # -- pulled in by the runtime header (a program defining ``pow``
    # -- must still compile).  The ``rp_`` prefix sidesteps all three.

    def _fn_name(self, fn: Continuation) -> str:
        name = self._fn_named.get(fn)
        if name is None:
            base = f"rp_{super()._fn_name(fn)}"
            name = base
            n = 2
            while name in self._fn_names_taken:
                name = f"{base}__{n}"
                n += 1
            self._fn_names_taken.add(name)
            self._fn_named[fn] = name
        return name

    # -- hook overrides -------------------------------------------------

    def _prelude(self, functions: list[Continuation]) -> str:
        # Claim external (entry) names first so a later internal
        # function with the same source name gets the suffix, not the
        # entry the loader will look up.
        ordered = ([f for f in functions if f.is_external]
                   + [f for f in functions if not f.is_external])
        decls = []
        for fn in ordered:
            _ret, ret_c, params = self._fn_signature(fn)
            sig = ", ".join(c_type(p.type) for p in params) or "void"
            decls.append(f"{ret_c} {self._fn_name(fn)}({sig});")
        return RUNTIME_H + "\n" + "\n".join(decls) + "\n"

    def _function_entry(self, fn: Continuation) -> None:
        if self._fuel_checks:
            self.out.write("    REPRO_FUEL();\n")

    def _block_entry(self, block: Continuation) -> None:
        if self._fuel_checks:
            self.out.write("    REPRO_FUEL();\n")

    def _float_lit(self, prim: PrimType, value: float) -> str:
        if math.isnan(value):
            return "(0.0/0.0)"
        if math.isinf(value):
            return "(1.0/0.0)" if value > 0 else "(-1.0/0.0)"
        text = repr(float(value))
        return f"{text}f" if prim.bitwidth == 32 else text

    def _int_lit(self, prim: PrimType, value: int) -> str:
        # -9223372036854775808ll parses as -(9223372036854775808ll): the
        # magnitude overflows int64 before negation.
        if not prim.is_unsigned and value == -(1 << (prim.bitwidth - 1)):
            if prim.bitwidth == 64:
                return "(-9223372036854775807ll - 1)"
            if prim.bitwidth == 32:
                return "(-2147483647 - 1)"
        return super()._int_lit(prim, value)

    def _arith_expr(self, op: ArithOp) -> str:
        t = op.type
        lhs, rhs = self._ref(op.lhs), self._ref(op.rhs)
        if isinstance(t, PrimType) and t.is_int:
            w = t.bitwidth
            sign = "u" if t.is_unsigned else "s"
            if op.kind is ArithKind.DIV:
                return f"repro_div_{sign}{w}({lhs}, {rhs})"
            if op.kind is ArithKind.REM:
                return f"repro_rem_{sign}{w}({lhs}, {rhs})"
            if op.kind is ArithKind.SHL:
                return f"repro_shl_{sign}{w}({lhs}, {rhs})"
            if op.kind is ArithKind.SHR:
                return f"repro_shr_{sign}{w}({lhs}, {rhs})"
        if isinstance(t, PrimType) and t.is_float:
            if op.kind is ArithKind.REM:
                return f"fmod({lhs}, {rhs})"
        return super()._arith_expr(op)

    def _cast_expr(self, op: Cast | Bitcast) -> str:
        if isinstance(op, Cast):
            src = _peel(op.op(0)).type
            to = op.type
            if (isinstance(src, PrimType) and src.is_float
                    and isinstance(to, PrimType) and to.is_int):
                w = to.bitwidth
                return (f"({c_type(to)})(uint{w}_t)"
                        f"repro_cast_f2i({self._ref(op.op(0))})")
        return super()._cast_expr(op)

    def _trap_expr(self, d, trap: Exception) -> str:
        # A constant expression folding kept for its trap (always a
        # division in practice); raise the structured trap exactly when
        # the referencing block executes.  repro_trap longjmps, so the
        # comma-expression's value is never produced.
        t = d.type
        zero = (f"({c_type(t)})0" if isinstance(t, PrimType)
                else "(word_block){ .w = {0} }")
        return f"(repro_trap(REPRO_TRAP_DIV), {zero})"

    def _emit_print(self, intrinsic: Intrinsic, value: Def) -> None:
        fn = {Intrinsic.PRINT_I64: "repro_print_i64",
              Intrinsic.PRINT_F64: "repro_print_f64",
              Intrinsic.PRINT_CHAR: "repro_print_char"}[intrinsic]
        self.out.write(f"    {fn}({self._ref(value)});\n")

    # -- the entry ABI --------------------------------------------------

    def _postlude(self, functions: list[Continuation]) -> None:
        # Externals first: on a public-name tie the entry the loader
        # will actually look up wins the wrapper.
        for fn in sorted(functions, key=lambda f: not f.is_external):
            self._emit_wrapper(fn)

    def _emit_wrapper(self, fn: Continuation) -> None:
        public = fn.name
        if not public or public in self.entry_meta:
            return
        ret, _ret_c, params = self._fn_signature(fn)
        assert isinstance(ret.type, FnType)
        ret_types = [t for t in ret.type.param_types if not _is_mem(t)]
        if len(ret_types) > 1:
            return
        kinds = [_abi_kind(p.type) for p in params]
        result = _abi_kind(ret_types[0]) if ret_types else "void"
        if any(k is None for k in kinds) or result is None:
            return
        name = self._fn_name(fn)
        symbol = "repro_run_" + "".join(
            ch if ch.isalnum() else "_" for ch in public)
        self.entry_meta[public] = {"params": kinds, "result": result,
                                   "symbol": symbol}
        w = self.out
        w.write(f"\nint32_t {symbol}(const int64_t *argv, "
                f"int64_t *out) {{\n")
        w.write("    repro_rt.trap = 0;\n")
        w.write("    repro_rt.out_len = 0;\n")
        w.write("    if (setjmp(repro_rt.jb)) return repro_rt.trap;\n")
        args = []
        for index, (param, kind) in enumerate(zip(params, kinds)):
            ctype = c_type(param.type)
            if kind in ("f64", "f32"):
                w.write(f"    double d{index};\n")
                w.write(f"    memcpy(&d{index}, &argv[{index}], 8);\n")
                args.append(f"({ctype})d{index}" if kind == "f32"
                            else f"d{index}")
            elif kind == "bool":
                args.append(f"(argv[{index}] != 0)")
            else:
                args.append(f"({ctype})argv[{index}]")
        call = f"{name}({', '.join(args)})"
        if result == "void":
            w.write(f"    {call};\n")
            w.write("    *out = 0;\n")
        elif result in ("f64", "f32"):
            w.write(f"    double r = (double){call};\n")
            w.write("    memcpy(out, &r, 8);\n")
        elif result == "bool":
            w.write(f"    *out = {call} ? 1 : 0;\n")
        else:
            w.write(f"    *out = (int64_t){call};\n")
        w.write("    return 0;\n}\n")


def emit_native_c(world: World, *,
                  fuel_checks: bool = True) -> tuple[str, dict]:
    """Render *world* as a compilable TU; returns ``(source, entry_meta)``."""
    emitter = NativeEmitter(world, fuel_checks=fuel_checks)
    source = emitter.emit()
    return source, emitter.entry_meta

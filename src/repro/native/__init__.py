"""The native execution tier: emitted C -> ``cc`` -> ``.so`` -> ctypes.

The paper's pipeline ends in LLVM-generated machine code; this package
closes the corresponding loop for the reproduction.  It hardens the C
emitter's output into compilable translation units
(:mod:`~repro.native.runtime`), drives the system C compiler with a
content-addressed object store (:mod:`~repro.native.driver`), executes
the result in-process under the engines' common observation contract
(:mod:`~repro.native.loader`), and tiers the serve daemon from
interpreter to VM to machine code (:mod:`~repro.native.tiering`).

The helpers here are the one-call conveniences the oracle and the
tests use::

    module = compile_native_world(world)          # temp .so, loaded
    run = module.run("main", (3, 4))              # NativeRun
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from ..core.world import World
from .driver import (DEFAULT_CC_FLAGS, DEFAULT_CC_TIMEOUT, NativeBuildError,
                     NativeStore, cc_version, compile_shared, find_cc,
                     native_available)
from .loader import (DEFAULT_FUEL, TRAP_KINDS, NativeModule, NativeRun,
                     NativeRunError)
from .runtime import RUNTIME_H, NativeEmitter, emit_native_c
from .tiering import TierDecision, TieringManager, TieringPolicy

__all__ = [
    "DEFAULT_CC_FLAGS", "DEFAULT_CC_TIMEOUT", "DEFAULT_FUEL", "RUNTIME_H",
    "TRAP_KINDS", "NativeBuildError", "NativeEmitter", "NativeModule",
    "NativeRun", "NativeRunError", "NativeStore", "TierDecision",
    "TieringManager", "TieringPolicy", "cc_version", "compile_native_world",
    "compile_shared", "emit_native_c", "find_cc", "native_available",
]


def compile_native_world(world: World, *, cc: str | None = None,
                         flags: tuple = DEFAULT_CC_FLAGS,
                         timeout: float = DEFAULT_CC_TIMEOUT,
                         store: NativeStore | None = None,
                         fuel_checks: bool = True) -> NativeModule:
    """Emit, compile and load *world*; returns a ready NativeModule.

    With a *store*, the ``.so`` is content-addressed and reused across
    calls (``module.cached`` says whether this was a hit).  Without
    one, the object lands in a temp directory — since the module holds
    the ``dlopen`` mapping, the file itself may vanish afterwards.
    """
    c_source, entry_meta = emit_native_c(world, fuel_checks=fuel_checks)
    if store is not None:
        so_path, _key, cached = store.get_or_build(
            c_source, cc=cc, flags=flags, timeout=timeout)
        module = NativeModule(so_path, entry_meta)
        module.cached = cached
        return module
    with tempfile.TemporaryDirectory(prefix="repro-native-") as tmp:
        so_path = compile_shared(c_source, Path(tmp) / "unit.so", cc=cc,
                                 flags=flags, timeout=timeout)
        module = NativeModule(so_path, entry_meta)
    module.cached = False
    return module

"""Tiered-execution policy for the serve daemon.

Each *key* (one ``run``-request program: source × entry × options) owns
a tiny state machine::

    interp --(warm)--> vm --(hot + compile ok)--> native
                        \\--(compile/run failure)--> quarantined (vm)

The first ``interp_runs`` requests execute on the graph interpreter —
zero compilation latency, the daemon answers immediately.  After that
the VM serves (one static compile, amortized by the worker-side cache).
Hotness is judged from two profile signals: the request count and the
cumulative VM step count (``VM.executed`` — the same counter PR 1's
PGO profiles aggregate).  A hot key triggers one background native
compile through the crash-isolated pool; until it lands the VM keeps
serving.  The VM tier runs instrumented, and each run's profile is
accumulated per key (:meth:`TieringManager.note_profile`, summed via
``Profile.merge``); the promotion job carries the accumulated profile,
so the native world the daemon tiers up to is specialized around the
hot paths the key's own requests exercised.  Any native failure — compiler error, build timeout, worker
crash while running the ``.so`` — quarantines the key back to the VM
permanently (PR 3's discipline: broken fast paths are dropped, not
retried in a loop).

The manager is event-loop-confined: the server calls it only from the
asyncio thread, so there is no locking.  :meth:`snapshot` feeds the
``stats`` op's per-tier counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TieringPolicy:
    enabled: bool = True
    #: Requests per key served by the graph interpreter before the VM
    #: takes over.
    interp_runs: int = 2
    #: Requests per key after which the key is hot (native compile).
    hot_requests: int = 4
    #: ... or cumulative VM steps, whichever trips first.
    hot_steps: int = 100_000


@dataclass
class _KeyState:
    requests: int = 0
    steps: int = 0
    #: None | "pending" | "ready" | "quarantined"
    native: str | None = None
    so_path: str | None = None
    entry_meta: dict | None = None
    quarantine_reason: str | None = None
    #: Accumulated VM-tier training data (serialized Profile), merged
    #: across requests; attached to the promotion job so the native
    #: compile is profile-guided.
    profile: dict | None = None
    #: Whether the ready ``.so`` was built with that profile.
    pgo: bool = False


@dataclass
class TierDecision:
    tier: str                     # "interp" | "vm" | "native"
    promote: bool                 # start a background native compile now
    so_path: str | None = None
    entry_meta: dict | None = None
    native_state: str = "none"


@dataclass
class TieringManager:
    policy: TieringPolicy = field(default_factory=TieringPolicy)

    def __post_init__(self) -> None:
        self._states: dict[str, _KeyState] = {}
        self.counters: dict[str, int] = {
            "run_requests": 0,
            "served_interp": 0,
            "served_vm": 0,
            "served_native": 0,
            "native_compiles": 0,
            "native_cache_hits": 0,
            "native_fallbacks": 0,
            "native_quarantined": 0,
            "profiles_noted": 0,
            "native_pgo_compiles": 0,
        }

    def _state(self, key: str) -> _KeyState:
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _KeyState()
        return state

    # -- the request path ----------------------------------------------

    def decide(self, key: str) -> TierDecision:
        """Pick the tier for one incoming request and count it."""
        state = self._state(key)
        state.requests += 1
        self.counters["run_requests"] += 1
        if state.native == "ready":
            self.counters["served_native"] += 1
            return TierDecision("native", False, so_path=state.so_path,
                                entry_meta=state.entry_meta,
                                native_state="ready")
        if state.requests <= self.policy.interp_runs:
            tier = "interp"
            self.counters["served_interp"] += 1
        else:
            tier = "vm"
            self.counters["served_vm"] += 1
        promote = (self.policy.enabled
                   and state.native is None
                   and (state.requests >= self.policy.hot_requests
                        or state.steps >= self.policy.hot_steps))
        if promote:
            state.native = "pending"
        return TierDecision(tier, promote,
                            native_state=state.native or "none")

    def note_steps(self, key: str, steps: int) -> None:
        """Feed VM step counts into the hotness signal."""
        self._state(key).steps += int(steps)

    def note_profile(self, key: str, profile: dict | None) -> None:
        """Accumulate one VM-tier run's profile into the key's
        training data (summed site counts across requests)."""
        if not profile:
            return
        state = self._state(key)
        if state.profile is None:
            state.profile = profile
        else:
            from ..profile.model import Profile

            state.profile = Profile.from_dict(state.profile).merge(
                Profile.from_dict(profile)).to_dict()
        self.counters["profiles_noted"] += 1

    def profile_of(self, key: str) -> dict | None:
        state = self._states.get(key)
        return state.profile if state is not None else None

    # -- promotion outcomes --------------------------------------------

    def native_ready(self, key: str, so_path: str, entry_meta: dict,
                     cached: bool, pgo: bool = False) -> None:
        state = self._state(key)
        state.native = "ready"
        state.so_path = so_path
        state.entry_meta = entry_meta
        state.pgo = pgo
        self.counters["native_compiles"] += 1
        if cached:
            self.counters["native_cache_hits"] += 1
        if pgo:
            self.counters["native_pgo_compiles"] += 1

    def quarantine(self, key: str, reason: str) -> None:
        state = self._state(key)
        state.native = "quarantined"
        state.so_path = None
        state.entry_meta = None
        state.pgo = False
        state.quarantine_reason = reason
        self.counters["native_quarantined"] += 1

    def fallback(self, key: str, reason: str) -> None:
        """A native *execution* failed: quarantine and count the event."""
        self.counters["native_fallbacks"] += 1
        self.quarantine(key, reason)

    # -- introspection --------------------------------------------------

    def state_of(self, key: str) -> str:
        return self._states[key].native or "none" \
            if key in self._states else "none"

    def snapshot(self) -> dict:
        tally = {"none": 0, "pending": 0, "ready": 0, "quarantined": 0}
        for state in self._states.values():
            tally[state.native or "none"] += 1
        return {
            "enabled": self.policy.enabled,
            "keys": len(self._states),
            "native_states": tally,
            **self.counters,
        }

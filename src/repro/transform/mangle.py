"""Lambda mangling — the paper's central transformation.

Mangling takes the scope of a continuation and produces a *specialized
copy* of it.  Two orthogonal ingredients:

* **drop** — substitute concrete values for some of the entry's
  parameters; the new entry no longer has those parameters.
* **lift** — introduce fresh parameters for chosen free defs; the new
  entry abstracts over them.

Because scopes are implicit and the graph is globally value numbered,
mangling is *just* a scope copy through the world's smart factories:

* defs outside the scope are shared, never copied;
* copied primops are rebuilt through the world, so folding re-fires with
  the substituted values — this is where specialization power comes
  from (``pow(x, 5)`` unrolls by itself once the exponent is dropped);
* there are no binders to rearrange, no phis to repair, no variables to
  rename.  The bookkeeping experiment (T3) counts exactly these
  non-events against the SSA and nested-CPS baselines.

Recursion: a jump to the old entry from inside the scope whose arguments
at all dropped positions are *identical* to the dropped values is
retargeted to the new entry (so specializing a tail-recursive loop over
an invariant argument ties the knot instead of unrolling forever).  Any
other recursive reference keeps pointing at the old, generic entry.

Classic transformations are one-liners on top (see the helpers at the
bottom): inlining = drop all params + jump; loop unrolling = clone;
lambda lifting/dropping = lift/drop of free defs.
"""

from __future__ import annotations

from ..core.defs import Continuation, Def, Param
from ..core.primops import EvalOp, PrimOp
from ..core.scope import Scope, scope_of
from ..core.types import fn_type
from ..core.world import World


class MangleStats:
    """What one mangle did — consumed by the bookkeeping experiment T3."""

    def __init__(self) -> None:
        self.continuations_copied = 0
        self.primops_rebuilt = 0
        self.defs_shared = 0
        # Structural repair work that graph-based mangling never needs;
        # kept explicitly at zero so T3 can report it side by side with
        # the baselines' non-zero counters.
        self.phis_repaired = 0
        self.binders_rearranged = 0
        self.alpha_renames = 0


class Mangler:
    """One mangling of ``scope`` with drop substitutions and lifted defs.

    ``spec`` maps entry parameters to their specialization values (the
    dropped ones); parameters absent from ``spec`` are kept.  ``lift``
    lists defs (normally free defs of the scope) that become fresh
    parameters of the new entry.
    """

    def __init__(self, scope: Scope, spec: dict[Param, Def],
                 lift: tuple[Def, ...] = ()):
        self.scope = scope
        self.world: World = scope.entry.world
        self.spec = dict(spec)
        self.lift = tuple(lift)
        self.stats = MangleStats()
        self.old_entry = scope.entry
        for param in self.spec:
            assert param.continuation is self.old_entry, (
                f"can only drop params of the entry, not {param.unique_name()}"
            )

        self.kept_params = [p for p in self.old_entry.params if p not in self.spec]
        new_param_types = [p.type for p in self.kept_params]
        new_param_types += [d.type for d in self.lift]
        self.new_entry = self.world.continuation(
            fn_type(tuple(new_param_types)), f"{self.old_entry.name}.m"
        )
        self.stats.continuations_copied += 1

        self._old2new: dict[Def, Def] = {}
        for old, new in zip(self.kept_params, self.new_entry.params):
            new.name = old.name
            self._old2new[old] = new
        for param, value in self.spec.items():
            self._old2new[param] = value
        for lifted, new in zip(self.lift, self.new_entry.params[len(self.kept_params):]):
            new.name = lifted.name or "lifted"
            self._old2new[lifted] = new

    # ------------------------------------------------------------------

    def mangle(self) -> Continuation:
        self._mangle_body(self.old_entry, self.new_entry)
        return self.new_entry

    def _mangle_body(self, old: Continuation, new: Continuation) -> None:
        if not old.has_body():
            return
        callee, args = old.callee, old.args
        target = _peel(callee)
        if target is self.old_entry and self._is_self_specializing(args):
            new_args = [self._mangle(a) for i, a in enumerate(args)
                        if self.old_entry.params[i] not in self.spec]
            new_args += [self._old2new[d] for d in self.lift]
            self.world.jump(new, self._rewrap(callee, self.new_entry), new_args)
            return
        self.world.jump(new, self._mangle(callee), [self._mangle(a) for a in args])

    def _is_self_specializing(self, args: tuple[Def, ...]) -> bool:
        """Does this recursive call pass exactly the dropped values?"""
        for param, value in self.spec.items():
            if self._mangle(args[param.index]) is not value:
                return False
        return True

    def _rewrap(self, original_callee: Def, new_target: Def) -> Def:
        """Transfer run/hlt markers from the old callee to the new target."""
        wrappers = []
        d = original_callee
        while isinstance(d, EvalOp):
            wrappers.append(type(d).__name__)
            d = d.value
        for w in reversed(wrappers):
            new_target = (self.world.run(new_target) if w == "Run"
                          else self.world.hlt(new_target))
        return new_target

    def _mangle(self, d: Def) -> Def:
        mapped = self._old2new.get(d)
        if mapped is not None:
            return mapped
        if d not in self.scope:
            self.stats.defs_shared += 1
            self._old2new[d] = d
            return d
        if isinstance(d, Continuation):
            if d is self.old_entry:
                # First-class recursive reference: keep the generic entry.
                self._old2new[d] = d
                return d
            new = self.world.continuation(d.fn_type, d.name)
            new.filter = d.filter
            self.stats.continuations_copied += 1
            self._old2new[d] = new
            for old_param, new_param in zip(d.params, new.params):
                new_param.name = old_param.name
                self._old2new[old_param] = new_param
            self._mangle_body(d, new)
            return new
        if isinstance(d, Param):
            # Parameter of an in-scope continuation: mangling that
            # continuation populates the mapping.
            self._mangle(d.continuation)
            return self._old2new[d]
        assert isinstance(d, PrimOp), f"unexpected def {d!r}"
        new_ops = tuple(self._mangle(op) for op in d.ops)
        if new_ops == d.ops:
            new = d
            self.stats.defs_shared += 1
        else:
            new = self.world.rebuild(d, new_ops)
            self.stats.primops_rebuilt += 1
        self._old2new[d] = new
        return new


# ---------------------------------------------------------------------------
# The classic transformations, as one-liners over the mangler.
# ---------------------------------------------------------------------------


def mangle(scope: Scope, spec: dict[Param, Def], lift: tuple[Def, ...] = (),
           stats_out: list | None = None) -> Continuation:
    """Mangle ``scope``; returns the new entry."""
    mangler = Mangler(scope, spec, lift)
    result = mangler.mangle()
    if stats_out is not None:
        stats_out.append(mangler.stats)
    return result


def drop(scope: Scope, args: dict[Param, Def] | list[Def | None],
         stats_out: list | None = None) -> Continuation:
    """Specialize the entry by substituting the given arguments.

    ``args`` is either a param→value dict or a list aligned with the
    entry's parameters where ``None`` means "keep".
    """
    if isinstance(args, list):
        spec = {p: a for p, a in zip(scope.entry.params, args) if a is not None}
    else:
        spec = args
    return mangle(scope, spec, (), stats_out)


def clone(scope: Scope, stats_out: list | None = None) -> Continuation:
    """A fresh copy of the scope (used e.g. for loop unrolling/peeling)."""
    return mangle(scope, {}, (), stats_out)


class PeelMangler(Mangler):
    """A mangler whose copy *never* ties the recursive knot.

    The base mangler redirects self-specializing recursive jumps to the
    new entry.  For loop peeling we want the opposite: the copy executes
    the *first* iteration (with the specialized/rewritten values) and
    every back-edge falls through to the old, generic entry.  Used by the
    PGO hot-loop specializer (:mod:`repro.transform.pgo`).
    """

    def _is_self_specializing(self, args: tuple[Def, ...]) -> bool:
        return False


def peel(scope: Scope, spec: dict[Param, Def] | None = None,
         stats_out: list | None = None) -> Continuation:
    """Peel one iteration of the scope (optionally specializing params).

    Returns a new entry that runs the entry's body once — with ``spec``
    substituted, so folding re-fires in the copy — and then continues to
    the *original* entry on any recursive jump.
    """
    mangler = PeelMangler(scope, spec or {})
    result = mangler.mangle()
    if stats_out is not None:
        stats_out.append(mangler.stats)
    return result


def lift(scope: Scope, defs: tuple[Def, ...],
         stats_out: list | None = None) -> Continuation:
    """Abstract the scope over ``defs``: they become new parameters."""
    return mangle(scope, {}, defs, stats_out)


def inline_call(caller: Continuation, stats_out: list | None = None) -> bool:
    """Inline the call in ``caller``'s body, if the callee is known.

    ``caller: jump f(a_1, ..., a_n)`` becomes ``caller: jump f'()`` where
    ``f'`` is the scope of ``f`` with all parameters dropped to the
    ``a_i`` — beta reduction as a degenerate mangle.  Returns ``True`` if
    something was inlined.
    """
    if not caller.has_body():
        return False
    callee = _peel(caller.callee)
    if not isinstance(callee, Continuation) or not callee.has_body():
        return False
    if callee is caller:
        return False
    scope = scope_of(callee)
    if caller in scope:
        return False  # would duplicate the caller into itself
    specialized = drop(scope, list(caller.args), stats_out)
    caller.world.jump(caller, specialized, ())
    return True


def _peel(d: Def) -> Def:
    while isinstance(d, EvalOp):
        d = d.value
    return d

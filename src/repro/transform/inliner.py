"""The inliner: a thin heuristic layer over lambda mangling.

Inlining in Thorin is a degenerate mangle (drop *all* parameters, jump
to the copy) — see :func:`repro.transform.mangle.inline_call`.  This
pass only decides *where*:

* functions with exactly one call site and no other uses are always
  inlined (the copy replaces the original, which becomes garbage);
* small functions (scope size below a threshold) are inlined at every
  call site, within a budget;
* recursive targets and sites inside the target's own scope are left
  alone — specialization of recursion is the partial evaluator's job.
"""

from __future__ import annotations

from ..core.defs import Continuation, Def
from ..core.primops import EvalOp
from ..core.scope import Scope, scope_of
from ..core.world import World
from .mangle import MangleStats, inline_call


def _peel(d: Def) -> Def:
    while isinstance(d, EvalOp):
        d = d.value
    return d


def _call_sites(cont: Continuation) -> tuple[list[Continuation], int]:
    """(callers that jump directly to *cont*, #first-class uses)."""
    sites: list[Continuation] = []
    first_class = 0
    for user, index in cont.uses:
        if isinstance(user, Continuation) and index == 0:
            sites.append(user)
        elif isinstance(user, EvalOp):
            for wrapper_user, wrapped_index in user.uses:
                if isinstance(wrapper_user, Continuation) and wrapped_index == 0:
                    sites.append(wrapper_user)
                else:
                    first_class += 1
        else:
            first_class += 1
    return sites, first_class


def _is_recursive(cont: Continuation, scope: Scope) -> bool:
    for user, _ in cont.uses:
        if user in scope:
            return True
    return False


def inline_small_functions(world: World, *, size_threshold: int = 40,
                           budget: int = 256) -> dict[str, int]:
    """Inline once-called and small functions; returns activity counters."""
    inlined = 0
    once_called = 0
    stats_sink: list[MangleStats] = []
    for cont in world.continuations():
        if budget <= 0:
            break
        if cont.is_external or cont.is_intrinsic() or not cont.has_body():
            continue
        if not cont.params:
            # A parameterless target binds nothing: "inlining" it would
            # clone an isomorphic copy (and re-trigger every round — no
            # fixed point).  It is already just a block of its caller.
            continue
        sites, first_class = _call_sites(cont)
        if not sites or first_class:
            continue
        scope = scope_of(cont)
        if _is_recursive(cont, scope):
            continue
        is_once = len(sites) == 1
        is_small = len(scope) <= size_threshold
        if not (is_once or is_small):
            continue
        for site in sites:
            if budget <= 0:
                break
            if site in scope or not site.has_body():
                continue
            if _peel(site.callee) is not cont:
                continue  # rewritten by an earlier inline this round
            if inline_call(site, stats_sink):
                inlined += 1
                once_called += 1 if is_once else 0
                budget -= 1
    return {
        "inlined": inlined,
        "once_called": once_called,
        "budget_left": budget,
        "primops_rebuilt": sum(s.primops_rebuilt for s in stats_sink),
    }

"""Lambda dropping: remove parameters that are invariant across callers.

Danvy & Schultz's lambda dropping, phrased as a mangle (the paper lists
it among the transformations that collapse into scope-copying):

A parameter ``p`` of continuation ``f`` can be dropped when every
caller passes the *same* value ``v`` (recursive calls may pass ``p``
itself through — the analogue of a trivial phi), provided

* ``f`` is only ever used in callee position (its signature is about to
  change),
* ``f`` is not external (the ABI is fixed), and
* ``v`` is not defined inside ``f``'s own scope.

Dropping ``v`` into ``f`` narrows interfaces and *grows scopes*: if
``v`` is a parameter of an enclosing function ``g``, then ``f`` sinks
into ``g``'s scope.  For tail-recursive loops this is what turns a
loop-invariant argument into a plain free use — the paper's
tail-recursion story.  The inverse direction is lambda *lifting*
(:func:`repro.transform.mangle.lift`).
"""

from __future__ import annotations

from ..core.defs import Continuation, Def, Param
from ..core.primops import EvalOp
from ..core.scope import Scope, scope_of
from ..core.world import World
from .mangle import Mangler


def _peel(d: Def) -> Def:
    while isinstance(d, EvalOp):
        d = d.value
    return d


def _direct_call_sites(cont: Continuation) -> list[Continuation] | None:
    """Callers jumping straight to *cont*; None if it escapes."""
    sites: list[Continuation] = []
    for user, index in cont.uses:
        if isinstance(user, Continuation) and index == 0:
            sites.append(user)
        else:
            return None  # first-class use (incl. run/hlt wraps): leave it
    return sites


def _invariant_args(cont: Continuation,
                    sites: list[Continuation]) -> dict[Param, Def]:
    """Params where all sites agree on one value (self-passes allowed)."""
    invariant: dict[Param, Def] = {}
    for param in cont.params:
        value: Def | None = None
        ok = True
        for site in sites:
            arg = site.arg(param.index)
            if arg is param:
                continue  # recursive pass-through
            if value is None:
                value = arg
            elif arg is not value:
                ok = False
                break
        if ok and value is not None:
            invariant[param] = value
    return invariant


def _is_closed(v: Def, _cache: dict | None = None) -> bool:
    """Does *v* avoid any transitive parameter dependence?"""
    from ..core.defs import Continuation
    from ..core.primops import Literal, Bottom, PrimOp

    if isinstance(v, (Literal, Bottom)):
        return True
    if isinstance(v, Param):
        return False
    if isinstance(v, Continuation):
        return not v.is_intrinsic() and not scope_of(v).has_free_params()
    assert isinstance(v, PrimOp)
    return all(_is_closed(op) for op in v.ops)


def drop_invariant_params(world: World, *, budget: int = 256) -> dict[str, int]:
    """One round of lambda dropping across the world."""
    dropped = 0
    params_removed = 0
    for cont in world.continuations():
        if budget <= 0:
            break
        if cont.is_external or cont.is_intrinsic() or not cont.has_body():
            continue
        sites = _direct_call_sites(cont)
        if not sites:
            continue
        invariant = _invariant_args(cont, sites)
        if not invariant:
            continue
        scope = scope_of(cont)
        spec = {p: v for p, v in invariant.items() if v not in scope}
        if cont.is_returning():
            # Dropping a caller-dependent value into a *function* would
            # nest it inside the caller (it becomes a closure) — the
            # exact opposite of what closure elimination then has to
            # undo.  Functions only absorb closed values; basic blocks
            # (loop headers etc.) may absorb anything, they stay inside
            # their function either way.
            spec = {p: v for p, v in spec.items() if _is_closed(v)}
        if not spec:
            continue
        new_cont = Mangler(scope, spec).mangle()
        new_cont.name = cont.name
        for site in sites:
            if site in scope:
                continue  # handled by the mangler's self-redirect
            if not site.has_body() or _peel(site.callee) is not cont:
                continue
            remaining = [a for p, a in zip(cont.params, site.args)
                         if p not in spec]
            world.jump(site, new_cont, remaining)
        dropped += 1
        params_removed += len(spec)
        budget -= 1
    return {
        "dropped": dropped,
        "params_removed": params_removed,
        "budget_left": budget,
    }

"""Transformations over the Thorin graph.

The star is :mod:`~repro.transform.mangle` (lambda mangling); everything
else — inlining, partial evaluation, closure elimination, lambda
dropping — is built on top of it, plus the supporting cleanup passes.
"""

from .cleanup import cleanup
from .mangle import Mangler, clone, drop, inline_call, lift, mangle

__all__ = [
    "Mangler",
    "cleanup",
    "clone",
    "drop",
    "inline_call",
    "lift",
    "mangle",
]

"""Effect-aware memory optimization over split effect threads.

The alias lattice (:mod:`repro.core.alias`) tells us which accesses can
possibly observe each other; this pass family pairs it with a backwards
walk over the ``mem`` chain to do what the single thread otherwise
forbids:

* **store-to-load forwarding** — a load whose chain reaches a
  Must-aliasing store (hopping over Not-aliasing stores, other loads,
  ``enter``/``alloc``) is replaced by the stored value;
* **redundant-load CSE** — a load whose chain reaches an earlier
  Must-aliasing load is replaced by that load's value (loads never
  write, so the hop is unconditional);
* **dead-store elimination** — a store that is Must-overwritten further
  down a linear chain with no possibly-aliasing read in between is
  unlinked from the thread.

The chain walk is the flow-sensitive half of the story: it stops at
mem-typed *parameters* (loop headers, call returns, branch joins — any
point where control flow merges or leaves the segment), so every
verdict is justified by data dependence alone.  A call therefore
clobbers everything (its return continuation's mem parameter is a wall)
and a value merged across a branch join is never forwarded — exactly
the conservative semantics the oracle's ``memopt(static)`` stage checks
differentially.

Trap discipline (same contract as the construction-time folds):

* Forwarding never *removes* an effect — the forwarded-from store/load
  stays on the thread, executes first, and performs the identical
  access, so an out-of-bounds trap fires exactly where it used to.
  Chains contain no prints (prints are calls), so the print stream
  cannot move relative to a trap.
* DSE removes an effect, so it is gated three ways: the dead store's
  access must be provably in bounds (its own trap cannot be the
  program's), its value and address must be discardable
  (``World.may_trap``), and every thread node between it and the
  overwriting store must be that node's only use — otherwise some other
  consumer of the thread still observes the doomed value.
"""

from __future__ import annotations

from ..core.alias import MUST, NOT, AliasAnalysis, world_memory_ops
from ..core.defs import Def
from ..core.primops import (
    Alloc,
    ArithKind,
    ArithOp,
    Enter,
    EvalOp,
    Extract,
    Global,
    Lea,
    Literal,
    Load,
    Slot,
    Store,
)
from ..core.rewrite import rewrite_uses
from ..core.types import (
    DefiniteArrayType,
    IndefiniteArrayType,
    PtrType,
    StructType,
    TupleType,
)
from ..core.world import World

# A chain segment between two merge points is short; walking further
# mostly re-visits dead ends.
CHAIN_HOPS = 64


def _peel(d: Def) -> Def:
    while isinstance(d, EvalOp):
        d = d.value
    return d


def _mem_extract(d: Def) -> tuple[Def, int] | None:
    """``(agg, index)`` when *d* is a literal-index extract of a memory
    op's result pair, else ``None``."""
    d = _peel(d)
    if (isinstance(d, Extract) and isinstance(d.index, Literal)
            and isinstance(d.agg, (Load, Enter, Alloc))):
        return d.agg, d.index.value
    return None


def _analysis(world: World) -> AliasAnalysis:
    manager = getattr(world, "_analyses", None)
    if manager is not None and manager.enabled:
        return world.analyses.alias()
    return AliasAnalysis(world)


# ---------------------------------------------------------------------------
# load forwarding / CSE
# ---------------------------------------------------------------------------

def _forward_load(world: World, load: Load, aa: AliasAnalysis,
                  stats: dict) -> Def | None:
    """The value this load must observe, or ``None``."""
    cur = load.mem
    for _ in range(CHAIN_HOPS):
        if isinstance(cur, Store):
            verdict = aa.alias(cur.ptr, load.ptr)
            if verdict == MUST:
                if cur.value.type is load.type.elements[1]:
                    stats["forwarded"] += 1
                    return cur.value
                return None
            if verdict == NOT:
                cur = cur.mem
                continue
            return None  # a may-aliasing write is a wall
        pair = _mem_extract(cur)
        if pair is None:
            return None  # mem parameter / bottom: segment boundary
        agg, index = pair
        if index != 0:
            return None
        if isinstance(agg, Load):
            if aa.alias(agg.ptr, load.ptr) == MUST:
                stats["load_cse"] += 1
                return world.extract(agg, 1)
            cur = agg.mem  # loads never write: hop unconditionally
            continue
        cur = agg.mem  # enter/alloc create cells, never touch existing ones
    return None


def _load_extracts(load: Load) -> tuple[Def | None, Def | None] | None:
    """The load's ``(mem, value)`` extracts; ``None`` if it has any
    other kind of use (consumed whole as a tuple — leave it alone)."""
    ext_mem = ext_val = None
    for user, _ in load.uses:
        if (isinstance(user, Extract) and user.agg is load
                and isinstance(user.index, Literal)):
            if user.index.value == 0:
                ext_mem = user
            else:
                ext_val = user
        else:
            return None
    return ext_mem, ext_val


def _forward_loads(world: World, aa: AliasAnalysis, budget: int,
                   stats: dict) -> dict[Def, Def]:
    mapping: dict[Def, Def] = {}
    for op in world_memory_ops(world):
        if len(mapping) >= budget:
            break
        if not isinstance(op, Load):
            continue
        extracts = _load_extracts(op)
        if extracts is None:
            continue
        ext_mem, ext_val = extracts
        if ext_val is None:
            # The value was forwarded away (this or an earlier round):
            # the load is a pure pass-through of its token.  Retire it,
            # unless its access could trap — that trap is behaviour.
            if (ext_mem is not None and ext_mem not in mapping
                    and _in_bounds(op.ptr)):
                stats["dead_loads"] += 1
                mapping[ext_mem] = op.mem
            continue
        if ext_val in mapping:
            continue
        value = _forward_load(world, op, aa, stats)
        if value is None:
            continue
        # Retire the whole load: its value is *value*, its mem token
        # was a pass-through of the input anyway.
        mapping[ext_val] = value
        if ext_mem is not None:
            mapping[ext_mem] = op.mem
    # Path-compress chained forwards (load B forwarded from load A whose
    # own value extract is also being replaced) so one rewrite settles
    # everything instead of leaving work for the next round.
    for key, value in list(mapping.items()):
        seen = {key}
        while value in mapping and value not in seen:
            seen.add(value)
            value = mapping[value]
        mapping[key] = value
    return {k: v for k, v in mapping.items() if k is not v}


# ---------------------------------------------------------------------------
# dead-store elimination
# ---------------------------------------------------------------------------

def _in_bounds(ptr: Def) -> bool:
    """Can this access be proven never to trap at run time?"""
    ptr = _peel(ptr)
    if isinstance(ptr, (Slot, Global)):
        return True
    if _mem_extract(ptr) is not None:
        return True  # the alloc's own cell pointer
    if not isinstance(ptr, Lea):
        return False
    if not _in_bounds(ptr.ptr):
        return False
    base_type = ptr.ptr.type
    assert isinstance(base_type, PtrType)
    length = _length_of(base_type.pointee, _peel(ptr.ptr))
    if length is None:
        return False
    index = ptr.index
    if isinstance(index, Literal):
        return 0 <= index.value < length
    # The fuzz frontend masks every index: x & m stays in [0, m].
    if (isinstance(index, ArithOp) and index.kind is ArithKind.AND):
        for side in index.ops:
            if isinstance(side, Literal) and 0 <= side.value < length:
                return True
    return False


def _length_of(pointee, base: Def) -> int | None:
    if isinstance(pointee, DefiniteArrayType):
        return pointee.length
    if isinstance(pointee, (TupleType, StructType)):
        return len(pointee.elements)
    if isinstance(pointee, IndefiniteArrayType):
        pair = _mem_extract(base)
        if pair is not None and isinstance(pair[0], Alloc):
            extra = pair[0].extra
            if isinstance(extra, Literal):
                return extra.value
    return None


def _sole_mem_user(op: Def) -> Def | None:
    """The unique consumer of a memory op's outgoing token, or ``None``.

    For a ``Store`` the token is the op itself; for ``Load``/``Enter``/
    ``Alloc`` it is the index-0 extract of the result pair (the other
    extract is a value/frame/pointer, not part of the thread).  ``None``
    when the token fans out, is consumed by something other than the
    next memory op, or is unused.
    """
    if isinstance(op, Store):
        if op.num_uses != 1:
            return None
        ((user, _),) = op.uses
        return user
    ext_mem = None
    for user, _ in op.uses:
        if (isinstance(user, Extract) and user.agg is op
                and isinstance(user.index, Literal)):
            if user.index.value == 0:
                ext_mem = user
        else:
            return None
    if ext_mem is None or ext_mem.num_uses != 1:
        return None
    ((user, _),) = ext_mem.uses
    return user


def _dead_store(world: World, store: Store, aa: AliasAnalysis) -> bool:
    """Is *store* Must-overwritten down a private, read-free chain?"""
    if not _in_bounds(store.ptr):
        return False  # its own trap might be the program's behaviour
    if world.may_trap(store.value) or world.may_trap(store.ptr):
        return False
    cur = _sole_mem_user(store)
    for _ in range(CHAIN_HOPS):
        if cur is None:
            return False  # fan-out, jump argument, dangling, ...: observed
        if isinstance(cur, Store):
            if aa.alias(cur.ptr, store.ptr) == MUST:
                return True
            # An intervening write never *observes* the doomed value.
        elif isinstance(cur, Load):
            if aa.alias(cur.ptr, store.ptr) != NOT:
                return False  # a read that may see the stored value
        elif not isinstance(cur, (Enter, Alloc)):
            return False  # the token escaped the segment
        cur = _sole_mem_user(cur)
    return False


def _eliminate_dead_stores(world: World, aa: AliasAnalysis, budget: int,
                           stats: dict) -> dict[Def, Def]:
    mapping: dict[Def, Def] = {}
    for op in world_memory_ops(world):
        if len(mapping) >= budget:
            break
        if not isinstance(op, Store) or op in mapping or op.mem in mapping:
            continue
        if _dead_store(world, op, aa):
            stats["dead_stores"] += 1
            mapping[op] = op.mem
    for key, value in list(mapping.items()):
        seen = {key}
        while value in mapping and value not in seen:
            seen.add(value)
            value = mapping[value]
        mapping[key] = value
    return mapping


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------

def optimize_memory(world: World, budget: int = 2048) -> dict:
    """Run forwarding + CSE, then DSE; returns pipeline-style stats.

    Two batches, each one ``rewrite_uses`` flood: forwarding first (it
    only adds value edges, making more stores single-use), then DSE over
    the rewritten graph.  ``rewrites`` is the pipeline's convergence
    key.
    """
    stats = {"forwarded": 0, "load_cse": 0, "dead_loads": 0,
             "dead_stores": 0, "rewrites": 0}
    aa = _analysis(world)

    mapping = _forward_loads(world, aa, budget, stats)
    if mapping:
        rewrite_uses(world, mapping)
        stats["rewrites"] += len(mapping)
        aa = _analysis(world)  # generation moved

    remaining = budget - stats["rewrites"]
    if remaining > 0:
        mapping = _eliminate_dead_stores(world, aa, remaining, stats)
        if mapping:
            rewrite_uses(world, mapping)
            stats["rewrites"] += len(mapping)

    return stats

"""Online partial evaluation of ``run``-marked calls.

The paper equips the IR with two markers: ``run(f)`` asks the evaluator
to specialize calls to ``f``; ``hlt(f)`` forbids it.  The evaluator here
is the mangling-based online specializer:

* a call ``jump run(f)(args)`` is specialized by *dropping* every
  static argument (literals, statically known continuations without
  free parameters, and aggregates of such) — folding then re-fires
  inside the copy, which is where computation happens at compile time;
* ``run`` *propagates*: the residual call sites inside the specialized
  copy that target known functions are re-marked ``run``, so evaluation
  continues into callees (until a ``hlt`` marker or a fully dynamic
  call stops it);
* termination: a **memo cache** keyed on (callee, dropped values) makes
  repeated states hit the cache (the tail-recursive case is handled
  structurally by the mangler's self-specializing redirect), and a
  **budget** bounds pathological programs — when it runs out, remaining
  ``run`` markers are simply stripped, leaving a correct residual
  program.  This is the "predictable termination policy" trade-off the
  follow-up work (GPCE'15) discusses; we document the budget in
  EXPERIMENTS.md.
"""

from __future__ import annotations

from ..core.defs import Continuation, Def, Intrinsic, Param
from ..core.primops import (
    Aggregate,
    Bottom,
    EvalOp,
    Hlt,
    Literal,
    Run,
)
from ..core.scope import Scope, scope_of
from ..core.world import World
from .mangle import Mangler


def is_static(arg: Def, scope_cache: dict | None = None) -> bool:
    """May this argument be burned into a specialized copy?

    Literals, bottoms and aggregates thereof, plus *closed* continuations
    (no free parameters — typically top-level functions).  Caller-local
    return continuations are deliberately dynamic: specializing on them
    would fork a fresh variant per call site and defeat the memo cache;
    collapsing call chains is the inliner's job, and dissolving genuine
    closures is closure elimination's.
    """
    if isinstance(arg, (Literal, Bottom)):
        return True
    if isinstance(arg, Hlt):
        return False
    if isinstance(arg, Run):
        return is_static(arg.value, scope_cache)
    if isinstance(arg, Continuation):
        if arg.is_intrinsic():
            return False
        if scope_cache is not None and arg in scope_cache:
            return scope_cache[arg]
        closed = not scope_of(arg).has_free_params()
        if scope_cache is not None:
            scope_cache[arg] = closed
        return closed
    if isinstance(arg, Aggregate):
        return all(is_static(op, scope_cache) for op in arg.ops)
    return False


def _peel(d: Def) -> Def:
    while isinstance(d, EvalOp):
        d = d.value
    return d


class PartialEvaluator:
    def __init__(self, world: World, budget: int = 512):
        self.world = world
        self.budget = budget
        self.cache: dict[tuple, Continuation] = {}
        self.specialized = 0
        self.cache_hits = 0
        self._static_cache: dict = {}
        self._discovered: list[Continuation] = []

    # ------------------------------------------------------------------

    def run(self) -> dict[str, int]:
        # Only a continuation whose callee is a ``run`` marker can make
        # progress, so sweep a worklist of those sites instead of the
        # whole world per round (the old full sweep was quadratic: one
        # world scan per specialization).  Sites are processed in
        # creation (gid) order, new sites minted by a specialization are
        # deferred to the next round — the same visit order as the full
        # sweep, at a fraction of the scanning cost.
        pending = [c for c in self.world.continuations()
                   if c.has_body() and isinstance(c.callee, Run)]
        while pending and self.budget > 0:
            batch = pending
            pending = []
            self._discovered = pending
            for cont in batch:
                if self.budget <= 0:
                    break
                if not cont.has_body():
                    continue
                if not self._eval_site(cont):
                    continue  # unsuitable target: permanently dynamic
                # Jump folding can splice a fresh ``run``-headed body
                # into the site; keep it live in that case.
                if cont.has_body() and isinstance(cont.callee, Run):
                    pending.append(cont)
        stripped = self._strip_markers()
        return {
            "specialized": self.specialized,
            "cache_hits": self.cache_hits,
            "markers_stripped": stripped,
            "budget_left": self.budget,
        }

    def _eval_site(self, cont: Continuation) -> bool:
        callee = cont.callee
        if not isinstance(callee, Run):
            return False
        target = _peel(callee)
        if not isinstance(target, Continuation) or not target.has_body() \
                or target.is_intrinsic():
            return False
        args = cont.args
        scope = scope_of(target)
        if cont in scope:
            # Specializing would copy the caller into itself; strip.
            cont.update_callee(target)
            return True
        spec: dict[Param, Def] = {}
        for param, arg in zip(target.params, args):
            if is_static(arg, self._static_cache):
                value = _peel(arg) if isinstance(arg, EvalOp) else arg
                if value not in scope:
                    spec[param] = value
        if not spec:
            # Nothing static: drop the marker, this call stays dynamic.
            cont.update_callee(target)
            return True
        key = (target.gid,
               tuple(sorted((p.index, a.gid) for p, a in spec.items())))
        new_target = self.cache.get(key)
        if new_target is None:
            mangler = Mangler(scope, spec)
            new_target = mangler.mangle()
            self.cache[key] = new_target
            self.specialized += 1
            self.budget -= 1
            self._propagate_run(new_target)
        else:
            self.cache_hits += 1
        remaining = [a for p, a in zip(target.params, args) if p not in spec]
        self.world.jump(cont, new_target, remaining)
        return True

    def _propagate_run(self, new_entry: Continuation) -> None:
        """Re-mark residual *calls* inside the fresh copy.

        Only out-of-scope targets (genuine calls to other functions) are
        re-marked.  Intra-scope jumps — loop heads in particular — are
        left alone: unrolling a dynamically bounded loop would only burn
        the budget.  This is the predictable-termination compromise.
        """
        scope = scope_of(new_entry)
        discovered = self._discovered
        for cont in scope.continuations():
            if not cont.has_body():
                continue
            callee = cont.callee
            if isinstance(callee, Run):
                # A copied run site inside the fresh body: keep it live.
                discovered.append(cont)
                continue
            if isinstance(callee, Hlt):
                continue
            target = _peel(callee)
            if (isinstance(target, Continuation) and target.has_body()
                    and not target.is_intrinsic() and target not in scope
                    and target is not new_entry):
                cont.update_callee(self.world.run(callee))
                discovered.append(cont)

    def _strip_markers(self) -> int:
        stripped = 0
        for cont in self.world.continuations():
            if not cont.has_body():
                continue
            if isinstance(cont.callee, EvalOp):
                cont.update_callee(_peel(cont.callee))
                stripped += 1
        return stripped


def partial_eval(world: World, budget: int = 512) -> dict[str, int]:
    """Specialize all ``run``-marked calls; returns activity counters."""
    return PartialEvaluator(world, budget).run()

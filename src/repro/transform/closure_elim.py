"""Closure elimination: lambda mangling to control-flow form.

Higher-order programs pass continuations around as values.  A classical
backend cannot lower that — it needs *control-flow form* (CFF): every
continuation either a basic block or a top-level second-order function
(see ``core.verify``).  The paper's recipe is to mangle higher-order
call sites until no first-class continuation travel remains:

* a call passing a **statically known** continuation to a fn-typed
  parameter in a non-return position is rewritten to call a copy of the
  callee with that parameter *dropped* — the higher-order function is
  specialized for its functional argument;
* a call to an **inner** function (one with free parameters — a
  closure) or to a function of order > 2 is specialized on *all* its
  continuation arguments, turning the copy into plain blocks of the
  caller's scope.

Specializations are cached per (callee, dropped arguments); a budget
bounds the (rare) divergent cases — non-tail-recursive closures can
require unboundedly many variants, a limitation the paper's system
shares.  Anything not eliminated is reported by ``core.verify``'s CFF
checker and counted in experiment T2.
"""

from __future__ import annotations

from ..core.defs import Continuation, Def, Intrinsic, Param
from ..core.primops import EvalOp, Hlt, Run
from ..core.scope import Scope, scope_of
from ..core.types import FnType
from ..core.world import World
from .mangle import Mangler


def _peel(d: Def) -> Def:
    while isinstance(d, EvalOp):
        d = d.value
    return d


def _ret_param(cont: Continuation) -> Param | None:
    """The conventional return parameter: the last fn-typed one."""
    for param in reversed(cont.params):
        if isinstance(param.type, FnType):
            return param
    return None


class ClosureEliminator:
    def __init__(self, world: World, budget: int = 512):
        self.world = world
        self.budget = budget
        self.cache: dict[tuple, Continuation] = {}
        self.mangled = 0
        self.cache_hits = 0

    def run(self) -> dict[str, int]:
        progress = True
        while progress and self.budget > 0:
            progress = False
            for cont in self.world.continuations():
                if self.budget <= 0:
                    break
                if cont.has_body() and self._lower_site(cont):
                    progress = True
        return {
            "mangled": self.mangled,
            "cache_hits": self.cache_hits,
            "budget_left": self.budget,
        }

    # ------------------------------------------------------------------

    def _scope(self, cont: Continuation) -> Scope:
        # The world's analysis manager replaced the ad-hoc per-round
        # cache this pass used to keep: mangles invalidate through the
        # world's mutation notes, so a scope computed before a mangle
        # can never be served stale after it.
        return scope_of(cont)

    def _lower_site(self, site: Continuation) -> bool:
        callee = site.callee
        target = _peel(callee)
        if not isinstance(target, Continuation) or not target.has_body() \
                or target.is_intrinsic():
            return False
        if target.fn_type.order() <= 1:
            # A basic-block-like continuation: jumps to it are plain CFG
            # edges, CFF-compatible whatever its free uses are.
            return False
        scope = self._scope(target)
        if site in scope:
            return False  # direct intra-scope jump (a block edge)
        has_free = scope.has_free_params()
        if has_free and self._is_recursive(target, scope):
            # A *recursive* closure cannot be dissolved by per-return
            # specialization (every recursion level has a fresh return
            # continuation).  Lambda-lift its free defs into parameters
            # instead: the result is a closed top-level function.
            return self._lift_closure(target, scope)
        aggressive = has_free or target.order() > 2
        ret = _ret_param(target)
        spec: dict[Param, Def] = {}
        for param, arg in zip(target.params, site.args):
            if not isinstance(param.type, FnType):
                continue
            if param is ret and not aggressive:
                continue
            value = _peel(arg)
            if isinstance(value, Continuation) and value not in scope:
                spec[param] = value
            elif aggressive and isinstance(value, Param) and value not in scope:
                # A closure call forwarding e.g. the caller's return
                # continuation: burning the param in is what dissolves
                # the closure into the caller's scope.
                spec[param] = value
        if not spec:
            return False
        key = (target.gid,
               tuple(sorted((p.index, a.gid) for p, a in spec.items())))
        new_target = self.cache.get(key)
        if new_target is None:
            new_target = Mangler(scope, spec).mangle()
            self.cache[key] = new_target
            self.mangled += 1
            self.budget -= 1
        else:
            self.cache_hits += 1
        remaining = [a for p, a in zip(target.params, site.args)
                     if p not in spec]
        new_callee: Def = new_target
        if isinstance(callee, Run):
            new_callee = self.world.run(new_target)
        elif isinstance(callee, Hlt):
            new_callee = self.world.hlt(new_target)
        self.world.jump(site, new_callee, remaining)
        return True


    @staticmethod
    def _is_recursive(target: Continuation, scope: Scope) -> bool:
        return any(user in scope for user, _ in target.uses)

    def _lift_closure(self, target: Continuation, scope: Scope) -> bool:
        from ..core.types import FrameType, MemType

        sites: list[Continuation] = []
        for user, index in target.uses:
            if user in scope:
                continue  # internal recursion: the mangler redirects it
            if not (isinstance(user, Continuation) and index == 0):
                return False  # escapes as a value: cannot change signature
            sites.append(user)
        lift: list[Def] = []
        for d in scope.free_defs():
            if isinstance(d, Continuation):
                # References to closed functions are globally available;
                # references to other *closures* cannot be fixed here.
                if not d.is_intrinsic() and scope_of(d).has_free_params():
                    return False
                continue
            if isinstance(d.type, (MemType, FrameType)):
                return False  # cannot abstract over memory state
            lift.append(d)
        if not lift:
            return False
        key = (target.gid, "lift", tuple(d.gid for d in lift))
        if key in self.cache:
            return False  # already lifted once; avoid ping-pong
        new_target = Mangler(scope, {}, tuple(lift)).mangle()
        new_target.name = target.name
        self.cache[key] = new_target
        self.mangled += 1
        self.budget -= 1
        for site in sites:
            if not site.has_body() or _peel(site.callee) is not target:
                continue
            callee: Def = new_target
            if isinstance(site.callee, Run):
                callee = self.world.run(new_target)
            elif isinstance(site.callee, Hlt):
                callee = self.world.hlt(new_target)
            self.world.jump(site, callee, tuple(site.args) + tuple(lift))
        return True


def eliminate_closures(world: World, budget: int = 512) -> dict[str, int]:
    """Mangle higher-order call sites toward control-flow form."""
    return ClosureEliminator(world, budget).run()

"""Profile-guided transformations: hot-loop peeling and hot-site inlining.

Both passes are thin heuristic layers over lambda mangling — exactly
like the static inliner, but steered by *observed* counts from a
:class:`repro.profile.model.Profile` instead of static size thresholds:

* :func:`specialize_hot_loops` peels one iteration of each hot loop
  whose entry arguments are partially static, by mangling the header's
  scope with a :class:`~repro.transform.mangle.PeelMangler` — back-edges
  keep targeting the generic header, so the peeled copy runs once with
  the entry values burned in and folding re-fired.  Loops with no static
  entry arguments are skipped (peeling them is pure code growth).
* :func:`pgo_inline` inlines call sites whose execution count clears the
  hotness thresholds, *regardless* of the callee's static size, and
  leaves cold sites alone.

Profiles speak in stable site IDs (continuation ``unique_name()``s);
the passes resolve them against the live world and silently skip labels
that no longer resolve or whose call shape has changed — a profile is
advice, never an obligation.
"""

from __future__ import annotations

from ..core.defs import Continuation, Def, Param
from ..core.primops import EvalOp
from ..core.scope import Scope, scope_of
from ..core.world import World
from .mangle import MangleStats, inline_call, peel
from .partial_eval import is_static


def _peel_markers(d: Def) -> Def:
    while isinstance(d, EvalOp):
        d = d.value
    return d


def _label_map(world: World) -> dict[str, Continuation]:
    return {c.unique_name(): c for c in world.continuations()}


def _is_recursive(cont: Continuation, scope: Scope) -> bool:
    return any(user in scope for user, _ in cont.uses)


# ---------------------------------------------------------------------------
# hot-loop specialization
# ---------------------------------------------------------------------------


def specialize_hot_loops(world: World, profile, *, min_count: int = 32,
                         budget: int = 16) -> dict[str, int]:
    """Peel+specialize loops whose back-edge counts dominate.

    For every profiled loop header with at least *min_count* back-edge
    executions, every out-of-loop entry site that passes at least one
    static argument is retargeted to a peeled copy of the loop with
    those arguments dropped.  Returns activity counters.
    """
    labels = _label_map(world)
    peeled = 0
    skipped_no_static = 0
    skipped_stale = 0
    stats_sink: list[MangleStats] = []
    static_cache: dict = {}
    for loop in profile.hot_loops(min_count=min_count):
        if budget <= 0:
            break
        header = labels.get(loop.header)
        if header is None or not header.has_body():
            skipped_stale += 1
            continue
        scope = scope_of(header)
        # Entry sites: direct jumps to the header from outside the loop.
        sites = [user for user, index in header.uses
                 if index == 0 and isinstance(user, Continuation)
                 and user not in scope and user.has_body()]
        for site in sites:
            if budget <= 0:
                break
            if _peel_markers(site.callee) is not header:
                continue
            spec: dict[Param, Def] = {}
            for param, arg in zip(header.params, site.args):
                if is_static(arg, static_cache):
                    value = (_peel_markers(arg) if isinstance(arg, EvalOp)
                             else arg)
                    if value not in scope:
                        spec[param] = value
            if not spec:
                skipped_no_static += 1
                continue
            new_header = peel(scope, spec, stats_sink)
            remaining = [a for p, a in zip(header.params, site.args)
                         if p not in spec]
            world.jump(site, new_header, remaining)
            peeled += 1
            budget -= 1
    return {
        "loops_peeled": peeled,
        "loops_skipped_no_static": skipped_no_static,
        "loops_skipped_stale": skipped_stale,
        "budget_left": budget,
        "primops_rebuilt": sum(s.primops_rebuilt for s in stats_sink),
    }


# ---------------------------------------------------------------------------
# PGO inlining
# ---------------------------------------------------------------------------


def pgo_inline(world: World, profile, *, min_count: int = 4,
               min_fraction: float = 0.05,
               budget: int = 32) -> dict[str, int]:
    """Inline hot call sites regardless of static size; skip cold ones.

    A site is hot when its executed count is at least *min_count* and at
    least *min_fraction* of all profiled call executions.  Returns
    activity counters.
    """
    labels = _label_map(world)
    inlined = 0
    skipped_stale = 0
    cold = sum(1 for s in profile.call_sites) \
        - len(profile.hot_call_sites(min_count=min_count,
                                     min_fraction=min_fraction))
    stats_sink: list[MangleStats] = []
    for site_profile in profile.hot_call_sites(min_count=min_count,
                                               min_fraction=min_fraction):
        if budget <= 0:
            break
        site = labels.get(site_profile.block)
        callee = labels.get(site_profile.callee)
        if (site is None or callee is None or not site.has_body()
                or not callee.has_body() or callee.is_intrinsic()):
            skipped_stale += 1
            continue
        if _peel_markers(site.callee) is not callee:
            skipped_stale += 1  # rewritten since the profile was taken
            continue
        if _is_recursive(callee, scope_of(callee)):
            continue  # specializing recursion is the evaluator's job
        if inline_call(site, stats_sink):
            inlined += 1
            budget -= 1
    return {
        "pgo_inlined": inlined,
        "cold_skipped": cold,
        "sites_stale": skipped_stale,
        "budget_left": budget,
        "primops_rebuilt": sum(s.primops_rebuilt for s in stats_sink),
    }

"""The standard optimization pipeline.

Mirrors the order the paper's compiler uses:

1. construction-time folding already happened in the world;
2. **partial evaluation** of ``run``-marked calls (specialization by
   lambda mangling);
3. **closure elimination**: mangle higher-order call sites until the
   program is in control-flow form;
4. **inlining** of small/once-called functions (also mangling);
5. **lambda dropping** of scope-invariant parameters;
6. cleanup (jump threading, eta reduction, garbage collection) after
   every step.
"""

from __future__ import annotations

from ..core.world import World
from .cleanup import cleanup


class PipelineStats:
    def __init__(self) -> None:
        self.rounds = 0
        self.details: list[tuple[str, dict]] = []

    def record(self, phase: str, stats: dict) -> None:
        self.details.append((phase, dict(stats)))


def optimize(world: World, *, max_rounds: int = 8) -> PipelineStats:
    """Run the full pipeline to a fixed point (bounded by *max_rounds*)."""
    from .closure_elim import eliminate_closures
    from .inliner import inline_small_functions
    from .lambda_dropping import drop_invariant_params
    from .partial_eval import partial_eval

    stats = PipelineStats()
    stats.record("cleanup", cleanup(world))
    for _ in range(max_rounds):
        stats.rounds += 1
        changed = 0

        pe_stats = partial_eval(world)
        stats.record("partial_eval", pe_stats)
        changed += pe_stats.get("specialized", 0)
        stats.record("cleanup", cleanup(world))

        ce_stats = eliminate_closures(world)
        stats.record("closure_elim", ce_stats)
        changed += ce_stats.get("mangled", 0)
        stats.record("cleanup", cleanup(world))

        inline_stats = inline_small_functions(world)
        stats.record("inline", inline_stats)
        changed += inline_stats.get("inlined", 0)
        stats.record("cleanup", cleanup(world))

        ld_stats = drop_invariant_params(world)
        stats.record("lambda_drop", ld_stats)
        changed += ld_stats.get("dropped", 0)
        stats.record("cleanup", cleanup(world))

        if not changed:
            break
    return stats

"""The standard optimization pipeline.

Mirrors the order the paper's compiler uses:

1. construction-time folding already happened in the world;
2. **partial evaluation** of ``run``-marked calls (specialization by
   lambda mangling);
3. **closure elimination**: mangle higher-order call sites until the
   program is in control-flow form;
4. **inlining** of small/once-called functions (also mangling);
5. **lambda dropping** of scope-invariant parameters;
6. cleanup (jump threading, eta reduction, garbage collection) after
   every step.

All knobs live on :class:`OptimizeOptions`; ``optimize(world,
options=...)`` threads them through to the individual passes.

Pass-level checking (``OptimizeOptions(verify_each_pass=True)``): the
full IR verifier (structural + use-list + scope invariants) runs after
every phase, and the first broken invariant is attributed — via
:class:`PassVerifyError` — to the pass that introduced it.  At pipeline
exit the control-flow-form criterion is asserted and any residual
violations (e.g. first-class callees closure elimination failed to
remove) are reported in ``PipelineStats.cff_residual``.

Profile-guided mode (experiment F4): ``optimize(world, profile=...)``
first runs the static rounds to a fixed point, then applies the PGO
passes (:mod:`repro.transform.pgo`) — hot-loop peeling *before* PGO
inlining, so peeled loops inside hot callees are carried along by the
inline copy — and finally re-runs the static rounds to clean up and
exploit what specialization exposed.  The profile is normally collected
by :func:`repro.profile.driver.compile_profiled`, the two-phase
instrument → run → recompile driver.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.world import World
from .cleanup import cleanup


@dataclass
class OptimizeOptions:
    """Every pipeline knob in one place (shared with the PGO driver)."""

    # static rounds
    max_rounds: int = 8
    inline_size_threshold: int = 40
    inline_budget: int = 256
    pe_budget: int = 512
    closure_budget: int = 512
    drop_budget: int = 256
    # PGO thresholds (used only when a profile is supplied)
    pgo_call_min_count: int = 4
    pgo_hot_call_fraction: float = 0.05
    pgo_inline_budget: int = 32
    pgo_loop_min_count: int = 32
    pgo_loop_budget: int = 16
    # Pass-level checking: run the full IR verifier (structural checks,
    # use-list consistency, scope containment) after every phase, and
    # assert control-flow form at pipeline exit.  A failure raises
    # :class:`PassVerifyError` naming the pass that broke the invariant.
    verify_each_pass: bool = False


class PassVerifyError(Exception):
    """A pipeline pass broke an IR invariant.

    Wraps the underlying :class:`~repro.core.verify.VerifyError` and
    attributes it: ``phase`` is the pass that ran immediately before the
    first failed check, ``round`` the static round it ran in (0 for the
    leading cleanup and the PGO phases).
    """

    def __init__(self, phase: str, round_: int, cause: Exception):
        super().__init__(
            f"IR invariant broken after pass {phase!r} (round {round_}): "
            f"{cause}"
        )
        self.phase = phase
        self.round = round_
        self.cause = cause


class PipelineStats:
    def __init__(self) -> None:
        self.rounds = 0
        self.details: list[tuple[str, dict]] = []
        # Residual control-flow-form violations at pipeline exit
        # (populated only under ``verify_each_pass``; empty = CFF).
        self.cff_residual: list[str] = []

    def record(self, phase: str, stats: dict) -> None:
        self.details.append((phase, dict(stats)))

    def phases(self) -> list[str]:
        return [phase for phase, _ in self.details]


def _check_pass(world: World, options: OptimizeOptions,
                stats: PipelineStats, phase: str) -> None:
    """Under ``verify_each_pass``, verify the world after *phase*.

    The first broken invariant is attributed to the pass that just ran —
    the phases before it all verified clean.
    """
    if not options.verify_each_pass:
        return
    from ..core.verify import VerifyError, verify

    try:
        verify(world, full=True)
    except VerifyError as exc:
        raise PassVerifyError(phase, stats.rounds, exc) from exc


def _run_static_rounds(world: World, options: OptimizeOptions,
                       stats: PipelineStats) -> None:
    """The classic fixed-point loop (bounded by ``options.max_rounds``)."""
    from .closure_elim import eliminate_closures
    from .inliner import inline_small_functions
    from .lambda_dropping import drop_invariant_params
    from .partial_eval import partial_eval

    for _ in range(options.max_rounds):
        stats.rounds += 1
        changed = 0

        pe_stats = partial_eval(world, budget=options.pe_budget)
        stats.record("partial_eval", pe_stats)
        changed += pe_stats.get("specialized", 0)
        _check_pass(world, options, stats, "partial_eval")
        stats.record("cleanup", cleanup(world))
        _check_pass(world, options, stats, "cleanup(partial_eval)")

        ce_stats = eliminate_closures(world, budget=options.closure_budget)
        stats.record("closure_elim", ce_stats)
        changed += ce_stats.get("mangled", 0)
        _check_pass(world, options, stats, "closure_elim")
        stats.record("cleanup", cleanup(world))
        _check_pass(world, options, stats, "cleanup(closure_elim)")

        inline_stats = inline_small_functions(
            world, size_threshold=options.inline_size_threshold,
            budget=options.inline_budget)
        stats.record("inline", inline_stats)
        changed += inline_stats.get("inlined", 0)
        _check_pass(world, options, stats, "inline")
        stats.record("cleanup", cleanup(world))
        _check_pass(world, options, stats, "cleanup(inline)")

        ld_stats = drop_invariant_params(world, budget=options.drop_budget)
        stats.record("lambda_drop", ld_stats)
        changed += ld_stats.get("dropped", 0)
        _check_pass(world, options, stats, "lambda_drop")
        stats.record("cleanup", cleanup(world))
        _check_pass(world, options, stats, "cleanup(lambda_drop)")

        if not changed:
            break


def optimize(world: World, *, options: OptimizeOptions | None = None,
             profile=None, max_rounds: int | None = None) -> PipelineStats:
    """Run the full pipeline to a fixed point.

    ``options`` bundles every knob; ``max_rounds`` is kept as a direct
    keyword for convenience and overrides the option of the same name.
    Passing a :class:`repro.profile.model.Profile` as ``profile``
    appends the profile-guided phase (see module docstring).
    """
    options = options if options is not None else OptimizeOptions()
    if max_rounds is not None:
        from dataclasses import replace
        options = replace(options, max_rounds=max_rounds)

    stats = PipelineStats()
    stats.record("cleanup", cleanup(world))
    _check_pass(world, options, stats, "cleanup(initial)")
    _run_static_rounds(world, options, stats)

    if profile is not None:
        from .pgo import pgo_inline, specialize_hot_loops

        loop_stats = specialize_hot_loops(
            world, profile,
            min_count=options.pgo_loop_min_count,
            budget=options.pgo_loop_budget)
        stats.record("pgo_loops", loop_stats)
        _check_pass(world, options, stats, "pgo_loops")
        stats.record("cleanup", cleanup(world))
        _check_pass(world, options, stats, "cleanup(pgo_loops)")

        inline_stats = pgo_inline(
            world, profile,
            min_count=options.pgo_call_min_count,
            min_fraction=options.pgo_hot_call_fraction,
            budget=options.pgo_inline_budget)
        stats.record("pgo_inline", inline_stats)
        _check_pass(world, options, stats, "pgo_inline")
        stats.record("cleanup", cleanup(world))
        _check_pass(world, options, stats, "cleanup(pgo_inline)")

        if (loop_stats.get("loops_peeled", 0)
                or inline_stats.get("pgo_inlined", 0)):
            _run_static_rounds(world, options, stats)

    if options.verify_each_pass:
        # Control-flow form is the pipeline's exit contract: closure
        # elimination promises that a CFG+SSA backend can lower the
        # residual program.  Record what is left over and fail loudly if
        # anything (in particular a first-class callee) survived.
        from ..core.verify import VerifyError, cff_violations

        stats.cff_residual = cff_violations(world)
        if stats.cff_residual:
            summary = "; ".join(stats.cff_residual[:4])
            raise PassVerifyError(
                "pipeline-exit(cff)", stats.rounds,
                VerifyError(
                    f"{len(stats.cff_residual)} control-flow-form "
                    f"violation(s) at pipeline exit: {summary}"
                ),
            )
    return stats

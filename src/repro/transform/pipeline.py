"""The standard optimization pipeline.

Mirrors the order the paper's compiler uses:

1. construction-time folding already happened in the world;
2. **partial evaluation** of ``run``-marked calls (specialization by
   lambda mangling);
3. **closure elimination**: mangle higher-order call sites until the
   program is in control-flow form;
4. **inlining** of small/once-called functions (also mangling);
5. **lambda dropping** of scope-invariant parameters;
6. cleanup (jump threading, eta reduction, garbage collection) after
   every step.

All knobs live on :class:`OptimizeOptions`; ``optimize(world,
options=...)`` threads them through to the individual passes.

Fault isolation (the default, ``strict=False``): every phase runs
inside a checkpoint/rollback guard built on :mod:`repro.core.snapshot`.
If a pass raises, breaks an IR invariant (under ``verify_each_pass``),
overruns its wall-clock ``pass_deadline``, or blows the world-growth
budget, the pipeline **rolls back** to the last checkpoint,
**quarantines** that pass for the rest of this ``optimize`` call,
records a :class:`PassIncident` in :class:`PipelineStats`, and keeps
going — a buggy pass degrades one compilation to "less optimized", it
does not take the compiler down.  If recovery itself fails, a crash
bundle (pre-pipeline IR, pass trace, options, context) is written via
:mod:`repro.transform.crashreport` and :class:`PipelineCrash` is
raised.

``OptimizeOptions(strict=True)`` restores fail-fast behaviour: no
checkpoints, no quarantine, the first error propagates to the caller.
The differential fuzz oracle runs strict so that a miscompiling or
crashing pass is *reported*, not silently optimized around.

Pass-level checking (``OptimizeOptions(verify_each_pass=True)``): the
full IR verifier (structural + use-list + scope invariants) runs after
every phase, and the first broken invariant is attributed — via
:class:`PassVerifyError` — to the pass that introduced it.  In strict
mode the error is raised; in non-strict mode it triggers rollback and
quarantine like any other pass failure.  At pipeline exit the
control-flow-form criterion is asserted and any residual violations
(e.g. first-class callees closure elimination failed to remove) are
reported in ``PipelineStats.cff_residual`` (raised only under strict).

Profile-guided mode (experiment F4): ``optimize(world, profile=...)``
first runs the static rounds to a fixed point, then applies the PGO
passes (:mod:`repro.transform.pgo`) — hot-loop peeling *before* PGO
inlining, so peeled loops inside hot callees are carried along by the
inline copy — and finally re-runs the static rounds to clean up and
exploit what specialization exposed.  The PGO phases run under the same
fault isolation as the static ones.  The profile is normally collected
by :func:`repro.profile.driver.compile_profiled`, the two-phase
instrument → run → recompile driver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..core.limits import DeadlineExceeded, ResourceLimitError, deadline
from ..core.world import World
from .cleanup import cleanup


@dataclass
class OptimizeOptions:
    """Every pipeline knob in one place (shared with the PGO driver)."""

    # static rounds
    max_rounds: int = 8
    inline_size_threshold: int = 40
    inline_budget: int = 256
    pe_budget: int = 512
    closure_budget: int = 512
    drop_budget: int = 256
    # PGO thresholds (used only when a profile is supplied)
    pgo_call_min_count: int = 4
    pgo_hot_call_fraction: float = 0.05
    pgo_inline_budget: int = 32
    pgo_loop_min_count: int = 32
    pgo_loop_budget: int = 16
    # Effect-aware memory optimization (store-to-load forwarding,
    # redundant-load CSE, dead-store elimination over the alias
    # lattice).  The fuzz oracle's ``memopt(static)`` stage checks the
    # on/off behaviour differentially.
    mem_opt: bool = True
    mem_opt_budget: int = 2048
    # Pass-level checking: run the full IR verifier (structural checks,
    # use-list consistency, scope containment) after every phase, and
    # assert control-flow form at pipeline exit.  A failure raises
    # :class:`PassVerifyError` (strict) or quarantines the offending
    # pass (non-strict).
    verify_each_pass: bool = False
    # Fault isolation.  strict=True restores fail-fast: no checkpoints,
    # no rollback, the first pass failure propagates.
    strict: bool = False
    # Per-pass wall-clock deadline in seconds (None disables).  Enforced
    # preemptively via SIGALRM on the Unix main thread, post hoc (after
    # the pass returns) elsewhere.
    pass_deadline: float | None = None
    # World-growth budget: a pass that leaves more than
    # ``max(growth_cap_floor, growth_cap_factor * size-at-entry)``
    # continuations behind is treated as blown up and rolled back.
    growth_cap_factor: float = 64.0
    growth_cap_floor: int = 4096
    # Memoize scopes/CFGs/schedules in the world's AnalysisManager and
    # invalidate them by mutation generation + touched sets.  Off must
    # be bit-identical (the fuzz oracle differentially checks this);
    # off also disables checkpoint reuse, restoring the exact uncached
    # snapshot cadence.
    cache_analyses: bool = True
    # Patch cached scopes/CFGs in place (grow floods, revalidate dirty
    # successor lists) instead of dropping any entry whose member was
    # touched.  Off restores drop-on-touch invalidation — the
    # differential baseline the fuzz oracle's ``incremental`` stage
    # compares against; both must be bit-identical.
    incremental: bool = True
    # "phase": checkpoint before every pass (precise rollback);
    # "round": checkpoint once per static round (fewer snapshots, a
    # failing pass loses the whole round's progress).
    checkpoint_granularity: str = "phase"
    # Where crash bundles go on unrecoverable failure (None disables).
    crash_dir: str | None = "crash_reports"
    # Caller-provided provenance recorded in crash bundles.  JSON-safe
    # values only, plus optionally "program": a fuzz AST the bundle
    # writer minimizes with the shrinker.
    crash_context: dict | None = None
    # Test/fault-injection hook, called as ``pass_hook(phase, world)``
    # inside the isolated region right after each phase body.
    pass_hook: Callable[[str, World], None] | None = None


class PassVerifyError(Exception):
    """A pipeline pass broke an IR invariant.

    Wraps the underlying :class:`~repro.core.verify.VerifyError` and
    attributes it: ``phase`` is the pass that ran immediately before the
    first failed check, ``round`` the static round it ran in (0 for the
    leading cleanup and the PGO phases).
    """

    def __init__(self, phase: str, round_: int, cause: Exception):
        super().__init__(
            f"IR invariant broken after pass {phase!r} (round {round_}): "
            f"{cause}"
        )
        self.phase = phase
        self.round = round_
        self.cause = cause


class PassGrowthError(ResourceLimitError):
    """A pass exceeded the pipeline's world-growth budget."""

    def __init__(self, phase: str, size: int, cap: int):
        self.phase = phase
        self.size = size
        super().__init__(
            "continuations", cap, "pipeline",
            f"pass {phase!r} grew the world to {size} continuations "
            f"(cap {cap})",
        )


class PipelineCrash(Exception):
    """Non-strict ``optimize`` failed unrecoverably.

    Raised after the crash bundle (if enabled) has been written;
    ``report_path`` points at it and ``__cause__`` is the original
    error.
    """

    def __init__(self, message: str, report_path=None):
        if report_path is not None:
            message = f"{message} (crash report: {report_path})"
        super().__init__(message)
        self.report_path = report_path


@dataclass
class PassIncident:
    """One recovered pass failure: what failed, when, and why."""

    phase: str
    round: int
    kind: str   # "exception" | "verify" | "deadline" | "growth"
    error: str

    def as_dict(self) -> dict:
        return {"phase": self.phase, "round": self.round,
                "kind": self.kind, "error": self.error}


class PipelineStats:
    def __init__(self) -> None:
        self.rounds = 0
        self.details: list[tuple[str, dict]] = []
        # Residual control-flow-form violations at pipeline exit
        # (populated only under ``verify_each_pass``; empty = CFF).
        self.cff_residual: list[str] = []
        # Fault-isolation accounting (all empty/zero on a clean run).
        self.incidents: list[PassIncident] = []
        self.quarantined: list[str] = []
        self.skipped: list[str] = []
        self.checkpoints = 0
        # Checkpoints satisfied by the previous snapshot because the
        # world's mutation generation (and stats) had not moved.
        self.checkpoints_reused = 0
        self.rollbacks = 0
        # Aggregate analysis-cache counters for this optimize() call
        # (per-pass deltas live in the ``details`` records).
        self.analysis_cache: dict[str, int] = {}
        # Wall-clock seconds per pass *kind* (cleanup(inline) counts
        # toward "cleanup"), summed over every invocation.  Per-phase
        # elapsed times live in the ``details`` records as "elapsed_s".
        self.timings: dict[str, float] = {}

    def record(self, phase: str, stats: dict) -> None:
        self.details.append((phase, dict(stats)))

    def record_time(self, phase: str, elapsed: float) -> None:
        key = _quarantine_key(phase)
        self.timings[key] = self.timings.get(key, 0.0) + elapsed

    def phases(self) -> list[str]:
        return [phase for phase, _ in self.details]

    def as_dict(self) -> dict:
        """JSON-safe image of the whole run, for artifacts and servers.

        Everything in here is plain data; ``json.dumps`` accepts it
        directly.  The compile service ships this as the ``stats``
        artifact, so keep keys append-only.
        """
        return {
            "rounds": self.rounds,
            "details": [[phase, dict(stats)] for phase, stats in self.details],
            "cff_residual": list(self.cff_residual),
            "incidents": [i.as_dict() for i in self.incidents],
            "quarantined": list(self.quarantined),
            "skipped": list(self.skipped),
            "checkpoints": self.checkpoints,
            "checkpoints_reused": self.checkpoints_reused,
            "rollbacks": self.rollbacks,
            "analysis_cache": dict(self.analysis_cache),
            "timings": {k: round(v, 6) for k, v in self.timings.items()},
        }


def _quarantine_key(phase: str) -> str:
    """Quarantine is per *pass*: ``cleanup(inline)`` counts as ``cleanup``."""
    return phase.split("(", 1)[0]


class _PhaseRunner:
    """Runs one phase at a time, fault-isolated unless strict.

    Non-strict protocol per phase: skip if quarantined; otherwise
    checkpoint (per ``checkpoint_granularity``), run the body (and the
    fault-injection hook) under the deadline, then enforce the growth
    cap and — under ``verify_each_pass`` — the full verifier.  Any
    failure rolls the world back to the checkpoint and quarantines the
    pass.  A failure *of the rollback itself* propagates; ``optimize``
    turns it into a crash bundle.
    """

    def __init__(self, world: World, options: OptimizeOptions,
                 stats: PipelineStats):
        self.world = world
        self.options = options
        self.stats = stats
        self.quarantine: set[str] = set()
        self.checkpoint = None
        self._checkpoint_generation: int | None = None
        # Generation observed right after the last completed cleanup;
        # while it stands, further cleanups are provably no-ops.
        self._clean_generation: int | None = None
        # Per-pass generation at which the pass last completed without
        # mutating anything (generation unmoved across its run); while
        # it stands, rerunning that pass is provably a no-op.
        self._pass_noop: dict[str, int] = {}
        baseline = max(1, len(world._continuations))
        self.growth_cap = max(options.growth_cap_floor,
                              int(options.growth_cap_factor * baseline))
        # The manager is world-owned (PGO optimizes the same world
        # twice); this runner flips it to the requested mode and tracks
        # its counters as deltas from here.
        self.analyses = world.analyses
        self.analyses.set_enabled(options.cache_analyses)
        self.analyses.incremental = options.incremental
        self._analysis_base = self._analysis_counters()

    # -- analysis-cache telemetry -------------------------------------------

    def _analysis_counters(self) -> tuple[int, int, int]:
        counters = self.analyses.stats
        return (counters.hits, counters.misses, counters.invalidations)

    def _with_analysis_delta(self, result: dict,
                             before: tuple[int, int, int]) -> dict:
        if not self.options.cache_analyses:
            return result
        now = self._analysis_counters()
        result = dict(result)
        result["analysis_hits"] = now[0] - before[0]
        result["analysis_misses"] = now[1] - before[1]
        result["analysis_invalidations"] = now[2] - before[2]
        return result

    def finish(self) -> None:
        now = self._analysis_counters()
        base = self._analysis_base
        counters = self.analyses.stats
        self.stats.analysis_cache = {
            "enabled": int(self.options.cache_analyses),
            "incremental": int(self.options.incremental),
            "hits": now[0] - base[0],
            "misses": now[1] - base[1],
            "invalidations": now[2] - base[2],
            "scope_patches": counters.scope_patches,
            "scope_refloods": counters.scope_refloods,
            "scope_survivals": counters.scope_survivals,
            "cfg_patches": counters.cfg_patches,
            "cfg_survivals": counters.cfg_survivals,
        }

    # -- checkpoints --------------------------------------------------------

    def _take_checkpoint(self) -> None:
        from ..core.undo import UndoLog

        if (self.options.cache_analyses and self.checkpoint is not None
                and self._checkpoint_generation == self.world.generation
                and (not isinstance(self.checkpoint, UndoLog)
                     or self.checkpoint.armed)):
            # The generation covers every snapshot-visible mutation (def
            # creation, use-edge rewiring, registry surgery), so an
            # unchanged generation means the previous checkpoint is still
            # an exact image of the graph: re-establish it for free.
            # Read-only churn (GVN hit counters) may have advanced; a
            # rollback through the reused checkpoint rewinds it to the
            # checkpoint's values, which is the rollback contract anyway.
            self.stats.checkpoints += 1
            self.stats.checkpoints_reused += 1
            return
        if self.options.cache_analyses and self.options.incremental:
            # Cheap checkpoint: shallow registry copies plus a
            # first-touch undo log fed by the same mutation notes the
            # analysis manager listens to.  Deep snapshots remain the
            # entry/crash-bundle mechanism only.
            if isinstance(self.checkpoint, UndoLog) and self.checkpoint.armed:
                self.checkpoint.arm()
            else:
                self.checkpoint = UndoLog(self.world)
        else:
            from ..core.snapshot import snapshot_world

            self.checkpoint = snapshot_world(self.world)
        self._checkpoint_generation = self.world.generation
        self.stats.checkpoints += 1

    def run_cleanup(self, label: str) -> dict:
        """Run (or provably skip) one cleanup phase.

        Cleanup is deterministic and idempotent: on a world that has not
        mutated since the previous cleanup completed, it rewrites
        nothing.  Under ``cache_analyses`` the mutation generation
        witnesses exactly that, so the phase is skipped outright —
        bit-identical to running it, minus the full-graph sweeps.  A
        rollback cannot fake this: ``restore_world`` always advances the
        generation.
        """
        if (self.options.cache_analyses
                and self._clean_generation == self.world.generation):
            return {"noop": 1}
        result = self.run(label, lambda: cleanup(self.world))
        if "rolled_back" not in result and "quarantined" not in result:
            self._clean_generation = self.world.generation
        return result

    def new_round(self) -> None:
        """Round boundary: refresh the checkpoint in "round" granularity."""
        if (not self.options.strict
                and self.options.checkpoint_granularity == "round"):
            self._take_checkpoint()

    # -- the guarded region -------------------------------------------------

    def run(self, phase: str, body: Callable[[], dict]) -> dict:
        options = self.options
        if (options.cache_analyses and options.pass_hook is None
                and self._pass_noop.get(phase) == self.world.generation):
            # This pass last completed as a *pure* no-op — zero reported
            # changes and zero generation movement — and the world has
            # not mutated since.  Passes are deterministic, so rerunning
            # it would sweep the identical world and do nothing again:
            # skip it outright, checkpoint included (a no-op cannot need
            # rolling back).  Bit-identical to running it; the fuzz
            # oracle's cache(static) stage differentially checks this.
            return {"noop": 1}
        if options.strict:
            before = self._analysis_counters()
            generation_before = self.world.generation
            started = time.perf_counter()
            result = body()
            if options.pass_hook is not None:
                options.pass_hook(phase, self.world)
            self._verify(phase)
            return self._finish_phase(phase, result, before, started,
                                      generation_before)

        if _quarantine_key(phase) in self.quarantine:
            self.stats.skipped.append(phase)
            return {"quarantined": 1}

        if options.checkpoint_granularity != "round" or self.checkpoint is None:
            self._take_checkpoint()
        before = self._analysis_counters()
        generation_before = self.world.generation
        started = time.perf_counter()
        try:
            with deadline(options.pass_deadline, what=f"pass {phase}"):
                result = body()
                if options.pass_hook is not None:
                    options.pass_hook(phase, self.world)
            if options.pass_deadline is not None:
                # Post-hoc fallback for environments where the signal-
                # based guard cannot preempt (threads, non-Unix).
                elapsed = time.perf_counter() - started
                if elapsed > options.pass_deadline:
                    raise DeadlineExceeded(options.pass_deadline,
                                           f"pass {phase}")
            size = len(self.world._continuations)
            if size > self.growth_cap:
                raise PassGrowthError(phase, size, self.growth_cap)
            self._verify(phase)
            return self._finish_phase(phase, result, before, started,
                                      generation_before)
        except Exception as exc:
            self.stats.record_time(phase, time.perf_counter() - started)
            self._rollback(phase, exc)
            return {"rolled_back": 1}

    def _finish_phase(self, phase: str, result: dict,
                      before: tuple[int, int, int], started: float,
                      generation_before: int) -> dict:
        generation = self.world.generation
        if generation == generation_before:
            self._pass_noop[phase] = generation
        else:
            self._pass_noop.pop(phase, None)
        elapsed = time.perf_counter() - started
        self.stats.record_time(phase, elapsed)
        result = self._with_analysis_delta(result, before)
        result = dict(result)
        result["elapsed_s"] = round(elapsed, 6)
        return result

    def _verify(self, phase: str) -> None:
        if not self.options.verify_each_pass:
            return
        from ..core.verify import VerifyError, verify

        try:
            verify(self.world, full=True)
        except VerifyError as exc:
            raise PassVerifyError(phase, self.stats.rounds, exc) from exc

    def _rollback(self, phase: str, exc: Exception) -> None:
        from ..core.undo import UndoLog

        if isinstance(exc, PassVerifyError):
            kind = "verify"
        elif isinstance(exc, DeadlineExceeded):
            kind = "deadline"
        elif isinstance(exc, PassGrowthError):
            kind = "growth"
        else:
            kind = "exception"
        if isinstance(self.checkpoint, UndoLog):
            self.checkpoint.restore()
        else:
            from ..core.snapshot import restore_world

            restore_world(self.checkpoint, into=self.world)
        self.stats.rollbacks += 1
        key = _quarantine_key(phase)
        if key not in self.quarantine:
            self.quarantine.add(key)
            self.stats.quarantined.append(key)
        self.stats.incidents.append(
            PassIncident(phase, self.stats.rounds, kind, repr(exc)))


def _run_static_rounds(world: World, options: OptimizeOptions,
                       stats: PipelineStats, runner: _PhaseRunner) -> None:
    """The classic fixed-point loop (bounded by ``options.max_rounds``)."""
    from .closure_elim import eliminate_closures
    from .inliner import inline_small_functions
    from .lambda_dropping import drop_invariant_params
    from .mem_opt import optimize_memory
    from .partial_eval import partial_eval

    passes = (
        ("partial_eval", "specialized",
         lambda: partial_eval(world, budget=options.pe_budget)),
        ("closure_elim", "mangled",
         lambda: eliminate_closures(world, budget=options.closure_budget)),
        ("inline", "inlined",
         lambda: inline_small_functions(
             world, size_threshold=options.inline_size_threshold,
             budget=options.inline_budget)),
        ("lambda_drop", "dropped",
         lambda: drop_invariant_params(world, budget=options.drop_budget)),
    )
    if options.mem_opt:
        # After the mangling passes: inlining/closure elimination merge
        # chain segments (a call boundary in round N is a straight-line
        # segment in round N+1), so memory optimization keeps finding
        # new forwardable loads as the rounds specialize.
        passes = passes + (
            ("mem_opt", "rewrites",
             lambda: optimize_memory(world, budget=options.mem_opt_budget)),
        )

    for _ in range(options.max_rounds):
        stats.rounds += 1
        runner.new_round()
        changed = 0
        for phase, changed_key, body in passes:
            result = runner.run(phase, body)
            stats.record(phase, result)
            changed += result.get(changed_key, 0)
            stats.record("cleanup", runner.run_cleanup(f"cleanup({phase})"))
        if not changed:
            break


def _optimize_guarded(world: World, options: OptimizeOptions,
                      profile, stats: PipelineStats,
                      runner: _PhaseRunner) -> PipelineStats:
    stats.record("cleanup", runner.run_cleanup("cleanup(initial)"))
    _run_static_rounds(world, options, stats, runner)

    if profile is not None:
        from .pgo import pgo_inline, specialize_hot_loops

        loop_stats = runner.run(
            "pgo_loops",
            lambda: specialize_hot_loops(
                world, profile,
                min_count=options.pgo_loop_min_count,
                budget=options.pgo_loop_budget))
        stats.record("pgo_loops", loop_stats)
        stats.record("cleanup", runner.run_cleanup("cleanup(pgo_loops)"))

        inline_stats = runner.run(
            "pgo_inline",
            lambda: pgo_inline(
                world, profile,
                min_count=options.pgo_call_min_count,
                min_fraction=options.pgo_hot_call_fraction,
                budget=options.pgo_inline_budget))
        stats.record("pgo_inline", inline_stats)
        stats.record("cleanup", runner.run_cleanup("cleanup(pgo_inline)"))

        if (loop_stats.get("loops_peeled", 0)
                or inline_stats.get("pgo_inlined", 0)):
            _run_static_rounds(world, options, stats, runner)

    if options.verify_each_pass:
        # Control-flow form is the pipeline's exit contract: closure
        # elimination promises that a CFG+SSA backend can lower the
        # residual program.  Record what is left over; fail loudly
        # (strict only) if anything — in particular a first-class
        # callee — survived.
        from ..core.verify import VerifyError, cff_violations

        stats.cff_residual = cff_violations(world)
        if stats.cff_residual:
            summary = "; ".join(stats.cff_residual[:4])
            error = PassVerifyError(
                "pipeline-exit(cff)", stats.rounds,
                VerifyError(
                    f"{len(stats.cff_residual)} control-flow-form "
                    f"violation(s) at pipeline exit: {summary}"
                ),
            )
            if options.strict:
                raise error
            stats.incidents.append(
                PassIncident("pipeline-exit(cff)", stats.rounds, "verify",
                             repr(error)))
    runner.finish()
    return stats


def optimize(world: World, *, options: OptimizeOptions | None = None,
             profile=None, max_rounds: int | None = None) -> PipelineStats:
    """Run the full pipeline to a fixed point.

    ``options`` bundles every knob; ``max_rounds`` is kept as a direct
    keyword for convenience and overrides the option of the same name.
    Passing a :class:`repro.profile.model.Profile` as ``profile``
    appends the profile-guided phase (see module docstring).

    By default the pipeline is fault-isolated (see module docstring):
    a failing pass is rolled back and quarantined, and the incident
    recorded in the returned :class:`PipelineStats`.  Under
    ``OptimizeOptions(strict=True)`` the first failure propagates.
    """
    options = options if options is not None else OptimizeOptions()
    if max_rounds is not None:
        from dataclasses import replace
        options = replace(options, max_rounds=max_rounds)

    # The IR graph is cyclic by construction (use-lists point back at
    # users), and during optimization everything is reachable from the
    # world, so the cyclic collector can never free anything here — it
    # only re-traces an ever-growing heap on every threshold crossing.
    # Pause it for the duration; dead IR is reclaimed after we return.
    import gc

    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _optimize_paused(world, options, profile)
    finally:
        # Disarm any checkpoint undo log: outside the pipeline nothing
        # can roll back, so first-touch logging would only accumulate.
        world._undo = None
        if gc_was_enabled:
            gc.enable()


def _optimize_paused(world: World, options: OptimizeOptions,
                     profile) -> PipelineStats:
    stats = PipelineStats()
    runner = _PhaseRunner(world, options, stats)
    if options.strict:
        return _optimize_guarded(world, options, profile, stats, runner)

    from ..core.snapshot import snapshot_world

    entry_snapshot = snapshot_world(world)
    if options.cache_analyses:
        # The first phase checkpoint would re-capture this exact world;
        # hand it the entry snapshot so generation-based reuse applies.
        runner.checkpoint = entry_snapshot
        runner._checkpoint_generation = world.generation
        stats.checkpoints += 1
    try:
        return _optimize_guarded(world, options, profile, stats, runner)
    except Exception as exc:
        report_path = None
        if options.crash_dir is not None:
            from .crashreport import write_crash_report

            try:
                report_path = write_crash_report(
                    directory=options.crash_dir,
                    entry_snapshot=entry_snapshot,
                    error=exc,
                    stats=stats,
                    options=options,
                    context=options.crash_context,
                )
            except Exception:  # pragma: no cover - reporting best-effort
                report_path = None
        raise PipelineCrash(
            f"optimization pipeline failed unrecoverably: {exc!r}",
            report_path) from exc

"""Crash-report bundles for unrecoverable pipeline failures.

When non-strict ``optimize`` cannot recover — the rollback itself
failed, or the fault-isolation machinery hit a bug — the pipeline calls
:func:`write_crash_report` before raising
:class:`~repro.transform.pipeline.PipelineCrash`.  The bundle is one
directory under ``crash_reports/`` holding everything needed to replay
the failure offline:

* ``world.json`` — the pre-pipeline IR, as a
  :mod:`repro.core.snapshot` capture (restore with
  ``Snapshot.from_json(...).restore()``);
* ``report.json`` — the error (with traceback), the pass trace
  (recorded phases, incidents, quarantine, rollback counts), the
  ``OptimizeOptions`` used, and any caller-supplied context such as the
  fuzz seed;
* ``repro.impala`` — present when the context carries a fuzz-generated
  ``"program"``: the program minimized by the AST shrinker
  (:mod:`repro.fuzz.shrink`) against the predicate "optimizing the
  candidate still fails", rendered as compilable source.

Bundle directories are named ``crash-NNNN-<ErrorClass>`` with the
smallest free index, so repeated failures never overwrite each other.
"""

from __future__ import annotations

import json
import traceback
from dataclasses import asdict
from pathlib import Path

SHRINK_MAX_ATTEMPTS = 400


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def _bundle_dir(directory: str | Path, error: Exception) -> Path:
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    label = type(error).__name__
    index = 0
    while True:
        candidate = root / f"crash-{index:04d}-{label}"
        if not candidate.exists():
            candidate.mkdir()
            return candidate
        index += 1


def _still_fails(program, options) -> bool:
    """Does optimizing *program* from scratch still raise?

    Used as the shrinker predicate; crash reporting is disabled for the
    probe so a reproducing candidate does not recursively spawn bundles.
    """
    from dataclasses import replace

    from .. import compile_source
    from .pipeline import optimize

    try:
        world = compile_source(program.render(), optimize=False)
        optimize(world, options=replace(options, crash_dir=None))
    except Exception:
        return True
    return False


def _minimize(program, options):
    from ..fuzz.shrink import shrink

    return shrink(program, lambda cand: _still_fails(cand, options),
                  max_attempts=SHRINK_MAX_ATTEMPTS)


def write_crash_report(*, directory, entry_snapshot, error, stats,
                       options, context=None) -> Path:
    """Write one crash bundle; returns the bundle directory."""
    bundle = _bundle_dir(directory, error)
    (bundle / "world.json").write_text(entry_snapshot.to_json())

    option_fields = asdict(options)
    option_fields["pass_hook"] = (
        None if options.pass_hook is None else repr(options.pass_hook))

    context = dict(context or {})
    program = context.pop("program", None)

    report = {
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "traceback": traceback.format_exception(
                type(error), error, error.__traceback__),
        },
        "pass_trace": {
            "rounds": stats.rounds,
            "phases": stats.phases(),
            "incidents": [i.as_dict() for i in stats.incidents],
            "quarantined": list(stats.quarantined),
            "skipped": list(stats.skipped),
            "checkpoints": stats.checkpoints,
            "rollbacks": stats.rollbacks,
        },
        "options": _jsonable(option_fields),
        "context": _jsonable(context),
    }

    if program is not None:
        try:
            minimized = _minimize(program, options)
            source = minimized.render()
            header = [f"// crash repro (seed {context.get('seed', '?')}), "
                      f"shrinker-minimized", f"// error: {error!r}", ""]
            (bundle / "repro.impala").write_text(
                "\n".join(header) + source + "\n")
            report["repro"] = {"file": "repro.impala",
                               "entry": minimized.entry}
        except Exception as exc:  # shrinking is best-effort
            report["repro"] = {"error": repr(exc)}

    (bundle / "report.json").write_text(json.dumps(report, indent=2))
    return bundle


def write_worker_crash_report(*, directory, error, request,
                              context=None) -> Path:
    """Write a bundle for a compile *worker* that died mid-job.

    The pipeline's own :func:`write_crash_report` runs inside the
    failing process and holds the live world; here the process is
    already gone (segfault, ``SIGKILL`` fault injection, OOM kill) and
    the parent only has the request it submitted.  The bundle therefore
    records the request verbatim — source, options, entry — which is
    exactly enough to replay the compile offline, plus how the death
    was observed (exit code, deadline).
    """
    bundle = _bundle_dir(directory, error)
    report = {
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "exitcode": getattr(error, "exitcode", None),
        },
        "request": _jsonable(request),
        "context": _jsonable(dict(context or {})),
    }
    source = None
    if isinstance(request, dict):
        source = request.get("source")
    if isinstance(source, str):
        (bundle / "repro.impala").write_text(source + "\n")
        report["repro"] = {"file": "repro.impala"}
    (bundle / "report.json").write_text(json.dumps(report, indent=2))
    return bundle

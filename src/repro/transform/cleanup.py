"""Cleanup: garbage collection and jump simplification.

In a graph IR, "dead code elimination" is mostly *non-work*: anything
not reachable from the external continuations is garbage by definition.
This pass:

* collects garbage (continuations and primops unreachable from the
  externals through operand edges),
* simplifies jumps: re-folds branches whose condition became a literal,
  eta-reduces forwarder continuations (``f(x...) = g(x...)`` makes every
  use of ``f`` a use of ``g``), and threads jumps through empty
  forwarders — the graph-IR counterpart of SimplifyCFG, with **no phi
  repair** anywhere.
"""

from __future__ import annotations

from ..core.defs import Continuation, Def, Intrinsic
from ..core.primops import EvalOp
from ..core.rewrite import rewrite_uses
from ..core.scope import scope_of
from ..core.world import World


def reachable_defs(world: World) -> set[Def]:
    """All defs reachable from the external continuations."""
    live: set[Def] = set()
    queue: list[Def] = list(world.externals())
    while queue:
        d = queue.pop()
        if d in live:
            continue
        live.add(d)
        queue.extend(op for op in d.ops if op not in live)
        if isinstance(d, Continuation):
            queue.extend(p for p in d.params if p not in live)
    return live


def collect_garbage(world: World) -> int:
    """Drop unreachable continuations/primops; returns #removed conts."""
    live = reachable_defs(world)
    removed = 0
    for cont in world.continuations():
        if cont not in live and not cont.is_intrinsic():
            cont.unset_body()  # detach use edges out of the dead region
            removed += 1
    # Detach dead primops as well: a lingering use edge would keep a
    # dead node inside some live def's recovered scope (and in print
    # dumps) forever.
    for op in world.dead_primops(live):
        op._set_ops(())
    world._prune_continuations(
        {c for c in world.continuations() if c in live or c.is_intrinsic()}
    )
    world._prune_primops(live)
    return removed


def _peel(d: Def) -> Def:
    while isinstance(d, EvalOp):
        d = d.value
    return d


def eta_reduce(world: World) -> int:
    """Replace forwarder continuations by their targets.

    ``f(p1, ..., pn) = g(p1, ..., pn)`` (exactly, in order) makes ``f``
    an alias of ``g`` — provided ``g`` is not ``f`` itself, is not a
    parameter bound inside ``f``, and ``f`` is not external.  Jump
    threading through empty blocks falls out.

    All forwarders found in one scan are substituted in a *single*
    ``rewrite_uses`` call: per-forwarder rewriting floods the transitive
    user closure once per forwarder (quadratic on forwarder chains and
    the dominant cleanup cost on larger programs).  Simultaneous
    substitution of alias equations is sound as long as no replacement
    value is itself being replaced, so a forwarder whose target is
    another forwarder from the same scan is deferred — the enclosing
    ``cleanup`` fixed point picks it up on the next iteration, by which
    time its body has been retargeted past the removed alias.
    """
    mapping: dict[Def, Def] = {}
    for cont in world.continuations():
        if cont.is_external or cont.is_intrinsic() or not cont.has_body():
            continue
        callee = cont.callee
        target = _peel(callee)
        if target is cont:
            continue
        if len(cont.args) != cont.num_params:
            continue
        if not all(a is p for a, p in zip(cont.args, cont.params)):
            continue
        if isinstance(target, Continuation):
            if target.intrinsic is not None:
                continue
            # The forwarder's own scope must not contain the target
            # (otherwise the "alias" would leak scope-internal state).
            if target in scope_of(cont):
                continue
        elif target in scope_of(cont):
            continue
        if callee.type is not cont.type:
            continue
        mapping[cont] = callee
    # Defer forwarder-of-forwarder: its replacement value would go stale
    # the moment the inner alias is substituted.
    mapping = {cont: callee for cont, callee in mapping.items()
               if _peel(callee) not in mapping}
    if not mapping:
        return 0
    rewrite_uses(world, mapping)
    for cont in mapping:
        # Detach the forwarders so they cannot match again (they are
        # garbage now; collect_garbage prunes them).
        cont.unset_body()
    return len(mapping)


def refold_jumps(world: World) -> int:
    """Re-run jump-level folding on every body (branch → direct, etc.)."""
    changed = 0
    for cont in world.continuations():
        if not cont.has_body():
            continue
        callee, args = cont.callee, cont.args
        world.jump(cont, callee, args)
        if cont.callee is not callee or cont.args != args:
            changed += 1
    return changed


def cleanup(world: World) -> dict[str, int]:
    """Run jump simplification to a fixed point, then collect garbage."""
    stats = {"eta_reduced": 0, "jumps_refolded": 0, "continuations_removed": 0}
    while True:
        changed = refold_jumps(world)
        stats["jumps_refolded"] += changed
        reduced = eta_reduce(world)
        stats["eta_reduced"] += reduced
        if not changed and not reduced:
            break
    stats["continuations_removed"] = collect_garbage(world)
    return stats

"""repro — a reproduction of "A Graph-Based Higher-Order Intermediate
Representation" (Leißa, Köster & Hack, CGO 2015).

The package implements the Thorin IR — a graph-based, higher-order,
CPS intermediate representation — together with everything needed to
evaluate it end to end:

* :mod:`repro.core` — the IR itself: hash-consed primops, continuations,
  implicit scopes, CFG/dominance/loop recovery, scheduling.
* :mod:`repro.transform` — lambda mangling (the paper's central
  transformation) and the passes built on it: inlining, partial
  evaluation, closure elimination to control-flow form, lambda
  dropping, cleanup.
* :mod:`repro.frontend` — "Impala-lite", a small imperative+functional
  language compiled to Thorin with on-the-fly SSA construction.
* :mod:`repro.backend` — a reference graph interpreter, a register
  bytecode + VM (the shared "machine" of all run-time experiments), and
  a C-like emitter.
* :mod:`repro.baselines` — a classical CFG+SSA IR and a nested-CPS IR,
  the comparison points of the evaluation.
* :mod:`repro.eval` — statistics collectors and the benchmark harness
  support used by ``benchmarks/``.

Quickstart: see ``examples/quickstart.py`` or::

    from repro import compile_source, run_function
    world = compile_source("fn main() -> i64 { 40 + 2 }")
    assert run_function(world, "main") == 42
"""

import sys as _sys

# Graph traversals (mangling, rewriting, emission) recurse along primop
# chains, which grow with program size; the CPython default of 1000
# frames is far too small for a compiler.  Untrusted *input* no longer
# leans on this: the parser enforces its own nesting bound
# (frontend.parser.MAX_NESTING_DEPTH) and fails with a ParseError long
# before the interpreter stack is at risk.
_sys.setrecursionlimit(max(_sys.getrecursionlimit(), 100_000))

from .core.defs import Continuation, Def, Intrinsic, Param
from .core.primops import ArithKind, CmpRel
from .core.scope import Scope, top_level_continuations
from .core.world import World

__version__ = "0.1.0"

__all__ = [
    "ArithKind",
    "CmpRel",
    "Continuation",
    "Def",
    "Intrinsic",
    "Param",
    "Scope",
    "World",
    "top_level_continuations",
    "compile_source",
    "run_function",
    "__version__",
]


def compile_source(source: str, *, optimize: bool = True,
                   world_name: str = "module", folding: bool = True,
                   options=None):
    """Compile Impala-lite *source* into a (by default optimized) world.

    ``options`` (an :class:`~repro.transform.pipeline.OptimizeOptions`)
    is threaded through to the optimization pipeline.
    """
    from .frontend import compile_source as _compile

    return _compile(source, optimize=optimize, world_name=world_name,
                    folding=folding, options=options)


def run_function(world, name: str, *args, backend: str = "vm"):
    """Run external function *name* with *args*; returns its result.

    ``backend`` is ``"vm"`` (compile to bytecode, CFF required) or
    ``"interp"`` (reference graph interpreter, any well-formed program).
    """
    if backend == "vm":
        from .backend.codegen import compile_world

        return compile_world(world).call(name, *args)
    if backend == "interp":
        from .backend.interp import Interpreter

        return Interpreter(world).call(name, *args)
    raise ValueError(f"unknown backend {backend!r}")

"""The register bytecode and its virtual machine.

This is the "hardware" of the reproduction: both the Thorin pipeline
(:mod:`repro.backend.codegen`) and the classical SSA baseline
(:mod:`repro.baselines.ssa`) lower to this machine, so run-time
comparisons (experiment F1/F2) measure the *code* both compilers
produce, not two different interpreters.

Machine model:

* a frame of registers per activation; explicit call stack (Python's
  stack is not involved, so deep CPS-shaped call chains are fine);
* word-oriented flat memory: every scalar occupies one word; aggregates
  are laid out contiguously (see :func:`word_size`); pointers are word
  indices; aggregate *register values* are flat Python lists of words;
* scalar arithmetic uses precompiled per-(op, type) functions generated
  from :mod:`repro.core.fold`, so the machine cannot disagree with the
  constant folder (property-tested);
* allocation is bump-only (no GC, no free) — sufficient for the
  benchmark suite and documented in DESIGN.md.

Instructions are tuples ``(opcode, ...)``; the dispatch loop is a plain
``if/elif`` chain ordered by dynamic frequency.  ``VM.executed`` counts
retired instructions — the architecture-neutral "cycles" metric used in
the experiments alongside wall-clock time.

Dispatch acceleration: each :class:`VMFunction` lazily derives a
*fused* twin of its code array (:meth:`VMFunction.fused`) in which hot
adjacent pairs — compare-and-branch, address-and-access, back-to-back
arithmetic, move-and-jump — are collapsed into superinstructions, each
retiring *two* source instructions per dispatch.  Fusion is purely a
dispatch-count optimization and is transparent by construction: pc
numbering is unchanged (the second instruction of a fused pair stays in
place, so it remains a valid jump target), every intermediate register
the pair wrote is still written, and ``VM.executed`` still counts
retired *source* instructions.  The uninstrumented loop runs the fused
stream; the profiled loop and the disassembly (``VMFunction.sites``,
serve artifacts, PGO site labels) stay on the source stream, whose pcs
are the stable names everything else refers to.

Profiling (experiment F4): ``VM(program, profile=collector)`` switches
execution to an *instrumented* dispatch loop that additionally counts
function entries, call-site executions and taken control-flow edges
(from which loop back-edge frequencies are derived).  The collector is
duck-typed — any object with ``entries``/``calls``/``edges`` mappings
that support ``+= 1`` works; :class:`repro.profile.collector.
ProfileCollector` is the canonical one.  The instrumentation lives in a
*separate* loop (:meth:`VM._run_profiled`) so that the uninstrumented
path — and the emitted instruction stream, which carries only inert
site metadata (:attr:`VMFunction.sites`) — is exactly what it was
without profiling: zero overhead when disabled.
"""

from __future__ import annotations

from ..core import fold
from ..core.limits import ResourceLimitError
from ..core.primops import ArithKind, CmpRel, MathKind
from ..core.types import (
    DefiniteArrayType,
    FnType,
    IndefiniteArrayType,
    MemType,
    PrimType,
    PtrType,
    StructType,
    TupleType,
    Type,
)

# --------------------------------------------------------------------------
# opcodes
# --------------------------------------------------------------------------

(
    OP_CONST,
    OP_MOV,
    OP_ARITH,
    OP_UNOP,
    OP_SELECT,
    OP_TUPLE,
    OP_EXTRACT,
    OP_EXTRACT_DYN,
    OP_INSERT,
    OP_INSERT_DYN,
    OP_LOAD,
    OP_LOAD_AGG,
    OP_STORE,
    OP_STORE_AGG,
    OP_LEA,
    OP_LEA_CONST,
    OP_ALLOC,
    OP_JMP,
    OP_BR,
    OP_MATCH,
    OP_CALL,
    OP_TAILCALL,
    OP_RET,
    OP_PRINT_I64,
    OP_PRINT_F64,
    OP_PRINT_CHAR,
    OP_TRAP,
    # -- superinstructions: appear only in fused streams, never in
    # VMFunction.code (codegen does not emit them).
    OP_ARITH_BR,
    OP_ARITH_ARITH,
    OP_LEA_LOAD,
    OP_LEA_STORE,
    OP_LEA_CONST_LOAD,
    OP_LEA_CONST_STORE,
    OP_MOV_JMP,
) = range(34)

OPCODE_NAMES = {
    OP_CONST: "const", OP_MOV: "mov", OP_ARITH: "arith", OP_UNOP: "unop",
    OP_SELECT: "select", OP_TUPLE: "tuple", OP_EXTRACT: "extract",
    OP_EXTRACT_DYN: "extract.dyn", OP_INSERT: "insert",
    OP_INSERT_DYN: "insert.dyn", OP_LOAD: "load", OP_LOAD_AGG: "load.agg",
    OP_STORE: "store", OP_STORE_AGG: "store.agg", OP_LEA: "lea",
    OP_LEA_CONST: "lea.const", OP_ALLOC: "alloc", OP_JMP: "jmp",
    OP_BR: "br", OP_MATCH: "match", OP_CALL: "call",
    OP_TAILCALL: "tailcall", OP_RET: "ret", OP_PRINT_I64: "print.i64",
    OP_PRINT_F64: "print.f64", OP_PRINT_CHAR: "print.char", OP_TRAP: "trap",
    OP_ARITH_BR: "arith.br", OP_ARITH_ARITH: "arith.arith",
    OP_LEA_LOAD: "lea.load", OP_LEA_STORE: "lea.store",
    OP_LEA_CONST_LOAD: "lea.const.load",
    OP_LEA_CONST_STORE: "lea.const.store", OP_MOV_JMP: "mov.jmp",
}


class VMError(Exception):
    """A runtime trap (division by zero, undef branch, OOB access)."""


class VMLimitError(VMError, ResourceLimitError):
    """A VM resource limit was hit (heap words, or executed steps).

    Both a :class:`VMError` (existing handlers keep working) and a
    :class:`~repro.core.limits.ResourceLimitError` (oracles normalize
    the whole family to a trap).
    """

    def __init__(self, resource: str, limit: int):
        ResourceLimitError.__init__(self, resource, limit, "vm")


# --------------------------------------------------------------------------
# precompiled scalar operations
# --------------------------------------------------------------------------

_M8 = (1 << 8) - 1
_M16 = (1 << 16) - 1
_M32 = (1 << 32) - 1
_M64 = (1 << 64) - 1
_MASKS = {8: _M8, 16: _M16, 32: _M32, 64: _M64}


def _fast_int_fn(kind: ArithKind, width: int, signed: bool):
    """Hand-specialized fast paths for the hot integer operations."""
    mask = _MASKS[width]
    if kind is ArithKind.ADD:
        return lambda a, b: (a + b) & mask
    if kind is ArithKind.SUB:
        return lambda a, b: (a - b) & mask
    if kind is ArithKind.MUL:
        return lambda a, b: (a * b) & mask
    if kind is ArithKind.AND:
        return lambda a, b: a & b
    if kind is ArithKind.OR:
        return lambda a, b: a | b
    if kind is ArithKind.XOR:
        return lambda a, b: a ^ b
    return None


def arith_fn(kind: ArithKind, prim: PrimType):
    """A compiled ``(a, b) -> result`` for canonical operand values."""
    if prim.is_int:
        fast = _fast_int_fn(kind, prim.bitwidth, prim.is_signed)
        if fast is not None:
            return fast

    def slow(a, b, _kind=kind, _prim=prim):
        try:
            return fold.arith(_kind, _prim, a, b)
        except fold.EvalError as exc:
            raise VMError(str(exc)) from None

    return slow


def cmp_fn(rel: CmpRel, prim: PrimType):
    if prim.is_int and not prim.is_signed or prim.is_bool:
        if rel is CmpRel.EQ:
            return lambda a, b: a == b
        if rel is CmpRel.NE:
            return lambda a, b: a != b
        if rel is CmpRel.LT:
            return lambda a, b: a < b
        if rel is CmpRel.LE:
            return lambda a, b: a <= b
        if rel is CmpRel.GT:
            return lambda a, b: a > b
        if rel is CmpRel.GE:
            return lambda a, b: a >= b
    if prim.is_signed:
        width = prim.bitwidth
        half = 1 << (width - 1)
        full = 1 << width

        def signed(a, b, _rel=rel, _half=half, _full=full):
            if a >= _half:
                a -= _full
            if b >= _half:
                b -= _full
            if _rel is CmpRel.LT:
                return a < b
            if _rel is CmpRel.LE:
                return a <= b
            if _rel is CmpRel.GT:
                return a > b
            if _rel is CmpRel.GE:
                return a >= b
            if _rel is CmpRel.EQ:
                return a == b
            return a != b

        return signed
    return lambda a, b, _rel=rel, _prim=prim: fold.compare(_rel, _prim, a, b)


def cast_fn(to: PrimType, frm: PrimType):
    return lambda v, _to=to, _frm=frm: fold.cast(_to, _frm, v)


def bitcast_fn(to: PrimType, frm: PrimType):
    return lambda v, _to=to, _frm=frm: fold.bitcast(_to, _frm, v)


def math_fn(kind: MathKind, prim: PrimType):
    return lambda v, _kind=kind, _prim=prim: fold.math_op(_kind, _prim, v)


# --------------------------------------------------------------------------
# type layout
# --------------------------------------------------------------------------

_SIZE_CACHE: dict[Type, int] = {}


def word_size(t: Type) -> int:
    """Number of machine words a value of type *t* occupies."""
    cached = _SIZE_CACHE.get(t)
    if cached is not None:
        return cached
    if isinstance(t, (PrimType, PtrType, FnType, MemType)):
        size = 1
    elif isinstance(t, (TupleType, StructType)):
        size = sum(word_size(e) for e in t.elements)
    elif isinstance(t, DefiniteArrayType):
        size = t.length * word_size(t.elem_type)
    elif isinstance(t, IndefiniteArrayType):
        size = word_size(t.elem_type)  # per-element; count is dynamic
    else:
        raise VMError(f"type {t} has no layout")
    _SIZE_CACHE[t] = size
    return size


def field_offset(agg: Type, index: int) -> int:
    """Word offset of component *index* in an aggregate type."""
    if isinstance(agg, (TupleType, StructType)):
        return sum(word_size(e) for e in agg.elements[:index])
    if isinstance(agg, (DefiniteArrayType, IndefiniteArrayType)):
        return index * word_size(agg.elem_type)
    raise VMError(f"cannot index {agg}")


# --------------------------------------------------------------------------
# program representation
# --------------------------------------------------------------------------


def _operand_repr(operand) -> str:
    """Deterministic operand rendering for disassembly listings.

    Arith/cmp instructions embed the folding callable itself; its
    default repr carries a memory address, which would make the
    disassembly differ run to run.  Render callables by qualified name
    so the listing is a stable, content-addressable artifact.
    """
    if callable(operand) and not isinstance(operand, type):
        name = getattr(operand, "__qualname__", None)
        if name:
            return f"<fn {name}>"
    return repr(operand)


def fuse_code(code: list[tuple]) -> list[tuple]:
    """Derive the fused dispatch stream for one code array.

    Adjacent pairs are collapsed into a superinstruction placed at the
    *first* pc; the second instruction is left in place, so every
    source pc remains a valid jump/resume target (a jump into the
    middle of a pair simply executes the original second instruction).
    Fall-through from a fused pc skips it with ``pc += 2``.  Handlers
    execute both halves in order and write every register the pair
    wrote, so no liveness analysis is needed — fusion can never change
    observable state, only the number of dispatches.
    """
    fused = list(code)
    pc, last = 0, len(code) - 1
    while pc < last:
        a, b = code[pc], code[pc + 1]
        op_a, op_b = a[0], b[0]
        if op_a == OP_ARITH:
            if op_b == OP_BR and b[1] == a[1]:
                # cmp + branch-on-result: the loop exit test.
                fused[pc] = (OP_ARITH_BR, a[1], a[2], a[3], a[4],
                             b[2], b[3])
                pc += 2
                continue
            if op_b == OP_ARITH:
                fused[pc] = (OP_ARITH_ARITH, a[1], a[2], a[3], a[4],
                             b[1], b[2], b[3], b[4])
                pc += 2
                continue
        elif op_a == OP_LEA:
            if op_b == OP_LOAD and b[2] == a[1]:
                fused[pc] = (OP_LEA_LOAD, a[1], a[2], a[3], a[4], b[1])
                pc += 2
                continue
            if op_b == OP_STORE and b[1] == a[1]:
                fused[pc] = (OP_LEA_STORE, a[1], a[2], a[3], a[4], b[2])
                pc += 2
                continue
        elif op_a == OP_LEA_CONST:
            if op_b == OP_LOAD and b[2] == a[1]:
                fused[pc] = (OP_LEA_CONST_LOAD, a[1], a[2], a[3], b[1])
                pc += 2
                continue
            if op_b == OP_STORE and b[1] == a[1]:
                fused[pc] = (OP_LEA_CONST_STORE, a[1], a[2], a[3], b[2])
                pc += 2
                continue
        elif op_a == OP_MOV and op_b == OP_JMP:
            # block-argument copy + edge: the unconditional loop latch.
            fused[pc] = (OP_MOV_JMP, a[1], a[2], b[1])
            pc += 2
            continue
        pc += 1
    return fused


class VMFunction:
    """One compiled function: flat code array, block starts resolved."""

    def __init__(self, name: str, num_params: int, num_results: int):
        self.name = name
        self.num_params = num_params
        self.num_results = num_results
        self.num_regs = num_params
        self.code: list[tuple] = []
        self._fused: list[tuple] | None = None
        # Site metadata for PGO (experiment F4): stable labels mapping VM
        # locations back to Thorin continuations.  ``entry`` is the source
        # continuation's unique name; ``blocks`` maps block-start pcs to
        # basic-block unique names.  Inert during execution.
        self.sites: dict = {"entry": None, "blocks": {}}

    def new_reg(self) -> int:
        reg = self.num_regs
        self.num_regs += 1
        return reg

    def emit(self, *instr) -> int:
        self._fused = None
        self.code.append(tuple(instr))
        return len(self.code) - 1

    def patch(self, index: int, *instr) -> None:
        self._fused = None
        self.code[index] = tuple(instr)

    def fused(self) -> list[tuple]:
        """The per-function superinstruction stream (built on demand)."""
        if self._fused is None:
            self._fused = fuse_code(self.code)
        return self._fused

    def disassemble(self, *, fused: bool = False) -> str:
        lines = []
        for pc, instr in enumerate(self.fused() if fused else self.code):
            op = OPCODE_NAMES.get(instr[0], str(instr[0]))
            rest = " ".join(_operand_repr(x) for x in instr[1:])
            lines.append(f"  {pc:4d}: {op} {rest}")
        return f"fn {self.name}/{self.num_params} regs={self.num_regs}\n" + \
            "\n".join(lines)


class VMProgram:
    """A linked set of functions plus entry points by name."""

    def __init__(self) -> None:
        self.functions: list[VMFunction] = []
        self.by_name: dict[str, int] = {}
        # Initial heap contents beyond the reserved null word (globals).
        self.data: list = []

    def add(self, fn: VMFunction) -> int:
        index = len(self.functions)
        self.functions.append(fn)
        self.by_name[fn.name] = index
        return index

    def function(self, name: str) -> VMFunction:
        return self.functions[self.by_name[name]]

    def disassemble(self) -> str:
        return "\n\n".join(f.disassemble() for f in self.functions)

    # Convenience: run an entry point on a fresh VM.
    def call(self, name: str, *args, vm: "VM | None" = None):
        vm = vm if vm is not None else VM(self)
        return vm.call(self, name, *args)


# --------------------------------------------------------------------------
# the machine
# --------------------------------------------------------------------------


class VM:
    """Executes :class:`VMProgram` code."""

    def __init__(self, program: "VMProgram | None" = None, *,
                 heap_limit: int = 64_000_000, max_steps: int | None = None,
                 profile=None):
        # Word 0 is reserved (null); globals follow.
        self.heap: list = [0]
        if program is not None:
            self.heap.extend(program.data)
        self.heap_limit = heap_limit
        # Optional per-``call`` instruction budget.  Checked only at
        # control-flow opcodes (every runaway loop passes through one),
        # so straight-line dispatch stays untouched.
        self.max_steps = max_steps
        self.output: list[str] = []
        self.executed = 0
        # Optional profile collector (see module docstring).  ``None``
        # selects the plain dispatch loop — the disabled path is untouched.
        self.profile = profile

    def output_text(self) -> str:
        return "".join(self.output)

    def alloc_words(self, count: int):
        if len(self.heap) + count > self.heap_limit:
            raise VMLimitError("heap", self.heap_limit)
        addr = len(self.heap)
        self.heap.extend([0] * count)
        return addr

    # ------------------------------------------------------------------

    def call(self, program: VMProgram, name: str, *args):
        """Run function *name*; returns its result words (or scalar)."""
        findex = program.by_name[name]
        fn = program.functions[findex]
        if len(args) != fn.num_params:
            raise VMError(
                f"{name} expects {fn.num_params} arguments, got {len(args)}"
            )
        runner = self._run if self.profile is None else self._run_profiled
        results = runner(program, findex, list(args))
        if fn.num_results == 0:
            return None
        if fn.num_results == 1:
            return results[0]
        return tuple(results)

    def _run(self, program: VMProgram, findex: int, args: list) -> list:
        functions = program.functions
        fn = functions[findex]
        regs: list = list(args) + [None] * (fn.num_regs - fn.num_params)
        code = fn.fused()
        pc = 0
        heap = self.heap
        # call stack: (code, regs, pc_to_resume, ret_dsts)
        stack: list[tuple] = []
        executed = 0
        limit = self.max_steps
        try:
            while True:
                instr = code[pc]
                executed += 1
                op = instr[0]
                if op == OP_ARITH:
                    _, dst, f, a, b = instr
                    regs[dst] = f(regs[a], regs[b])
                    pc += 1
                elif op == OP_ARITH_BR:
                    _, dst, f, a, b, pc_t, pc_f = instr
                    value = regs[dst] = f(regs[a], regs[b])
                    executed += 1  # retires arith + br
                    if value is None:
                        raise VMError("branch on undef")
                    pc = pc_t if value else pc_f
                    if limit is not None and executed > limit:
                        raise VMLimitError("steps", limit)
                elif op == OP_ARITH_ARITH:
                    _, d1, f1, a1, b1, d2, f2, a2, b2 = instr
                    regs[d1] = f1(regs[a1], regs[b1])
                    regs[d2] = f2(regs[a2], regs[b2])
                    executed += 1
                    pc += 2
                elif op == OP_BR:
                    _, cond, pc_t, pc_f = instr
                    value = regs[cond]
                    if value is None:
                        raise VMError("branch on undef")
                    pc = pc_t if value else pc_f
                    if limit is not None and executed > limit:
                        raise VMLimitError("steps", limit)
                elif op == OP_JMP:
                    pc = instr[1]
                    if limit is not None and executed > limit:
                        raise VMLimitError("steps", limit)
                elif op == OP_MOV_JMP:
                    regs[instr[1]] = regs[instr[2]]
                    executed += 1  # retires mov + jmp
                    pc = instr[3]
                    if limit is not None and executed > limit:
                        raise VMLimitError("steps", limit)
                elif op == OP_MOV:
                    regs[instr[1]] = regs[instr[2]]
                    pc += 1
                elif op == OP_CONST:
                    regs[instr[1]] = instr[2]
                    pc += 1
                elif op == OP_LOAD:
                    _, dst, addr = instr
                    regs[dst] = heap[regs[addr]]
                    pc += 1
                elif op == OP_STORE:
                    _, addr, src = instr
                    heap[regs[addr]] = regs[src]
                    pc += 1
                elif op == OP_LEA_LOAD:
                    _, lea_dst, base, index, scale, dst = instr
                    regs[lea_dst] = addr = regs[base] + regs[index] * scale
                    regs[dst] = heap[addr]
                    executed += 1
                    pc += 2
                elif op == OP_LEA_STORE:
                    _, lea_dst, base, index, scale, src = instr
                    regs[lea_dst] = addr = regs[base] + regs[index] * scale
                    heap[addr] = regs[src]
                    executed += 1
                    pc += 2
                elif op == OP_LEA_CONST_LOAD:
                    _, lea_dst, base, offset, dst = instr
                    regs[lea_dst] = addr = regs[base] + offset
                    regs[dst] = heap[addr]
                    executed += 1
                    pc += 2
                elif op == OP_LEA_CONST_STORE:
                    _, lea_dst, base, offset, src = instr
                    regs[lea_dst] = addr = regs[base] + offset
                    heap[addr] = regs[src]
                    executed += 1
                    pc += 2
                elif op == OP_LEA:
                    _, dst, base, index, scale = instr
                    regs[dst] = regs[base] + regs[index] * scale
                    pc += 1
                elif op == OP_LEA_CONST:
                    _, dst, base, offset = instr
                    regs[dst] = regs[base] + offset
                    pc += 1
                elif op == OP_UNOP:
                    _, dst, f, a = instr
                    regs[dst] = f(regs[a])
                    pc += 1
                elif op == OP_SELECT:
                    _, dst, cond, a, b = instr
                    value = regs[cond]
                    if value is None:
                        raise VMError("select on undef")
                    regs[dst] = regs[a] if value else regs[b]
                    pc += 1
                elif op == OP_CALL:
                    _, target, arg_regs, ret_dsts = instr
                    callee = functions[target]
                    new_regs = [None] * callee.num_regs
                    for i, r in enumerate(arg_regs):
                        new_regs[i] = regs[r]
                    stack.append((code, regs, pc + 1, ret_dsts))
                    code = callee.fused()
                    regs = new_regs
                    pc = 0
                    if limit is not None and executed > limit:
                        raise VMLimitError("steps", limit)
                elif op == OP_TAILCALL:
                    _, target, arg_regs = instr
                    callee = functions[target]
                    new_regs = [None] * callee.num_regs
                    for i, r in enumerate(arg_regs):
                        new_regs[i] = regs[r]
                    code = callee.fused()
                    regs = new_regs
                    pc = 0
                    if limit is not None and executed > limit:
                        raise VMLimitError("steps", limit)
                elif op == OP_RET:
                    values = [regs[r] for r in instr[1]]
                    if not stack:
                        return values
                    code, regs, pc, ret_dsts = stack.pop()
                    for dst, value in zip(ret_dsts, values):
                        regs[dst] = value
                elif op == OP_TUPLE:
                    _, dst, parts = instr
                    out: list = []
                    for r, size in parts:
                        value = regs[r]
                        if size == 1 and type(value) is not list:
                            out.append(value)
                        else:
                            out.extend(value)
                    regs[dst] = out
                    pc += 1
                elif op == OP_EXTRACT:
                    _, dst, src, offset, size = instr
                    agg = regs[src]
                    if size == 1:
                        regs[dst] = agg[offset]
                    else:
                        regs[dst] = agg[offset:offset + size]
                    pc += 1
                elif op == OP_EXTRACT_DYN:
                    _, dst, src, index, scale, size = instr
                    agg = regs[src]
                    offset = regs[index] * scale
                    if offset < 0 or offset + size > len(agg):
                        raise VMError("aggregate index out of bounds")
                    if size == 1:
                        regs[dst] = agg[offset]
                    else:
                        regs[dst] = agg[offset:offset + size]
                    pc += 1
                elif op == OP_INSERT:
                    _, dst, src, offset, size, value_reg = instr
                    agg = list(regs[src])
                    value = regs[value_reg]
                    if size == 1 and type(value) is not list:
                        agg[offset] = value
                    else:
                        agg[offset:offset + size] = value
                    regs[dst] = agg
                    pc += 1
                elif op == OP_INSERT_DYN:
                    _, dst, src, index, scale, size, value_reg = instr
                    agg = list(regs[src])
                    offset = regs[index] * scale
                    if offset < 0 or offset + size > len(agg):
                        raise VMError("aggregate index out of bounds")
                    value = regs[value_reg]
                    if size == 1 and type(value) is not list:
                        agg[offset] = value
                    else:
                        agg[offset:offset + size] = value
                    regs[dst] = agg
                    pc += 1
                elif op == OP_LOAD_AGG:
                    _, dst, addr, size = instr
                    base = regs[addr]
                    regs[dst] = heap[base:base + size]
                    pc += 1
                elif op == OP_STORE_AGG:
                    _, addr, src, size = instr
                    base = regs[addr]
                    value = regs[src]
                    if type(value) is not list:
                        heap[base] = value
                    else:
                        heap[base:base + size] = value
                    pc += 1
                elif op == OP_ALLOC:
                    _, dst, count_reg, elem_size, fixed = instr
                    if count_reg is None:
                        words = fixed
                    else:
                        words = regs[count_reg] * elem_size + fixed
                    regs[dst] = self.alloc_words(words)
                    heap = self.heap
                    pc += 1
                elif op == OP_MATCH:
                    _, value_reg, table, default_pc = instr
                    pc = table.get(regs[value_reg], default_pc)
                    if limit is not None and executed > limit:
                        raise VMLimitError("steps", limit)
                elif op == OP_PRINT_I64:
                    self.output.append(str(fold.to_signed(regs[instr[1]], 64)))
                    pc += 1
                elif op == OP_PRINT_F64:
                    self.output.append(repr(regs[instr[1]]))
                    pc += 1
                elif op == OP_PRINT_CHAR:
                    self.output.append(chr(regs[instr[1]]))
                    pc += 1
                elif op == OP_TRAP:
                    raise VMError(instr[1])
                else:  # pragma: no cover
                    raise VMError(f"bad opcode {op}")
        except IndexError:
            raise VMError("memory access out of bounds") from None
        except TypeError:
            raise VMError("operation on undef value") from None
        finally:
            self.executed += executed

    def _run_profiled(self, program: VMProgram, findex: int,
                      args: list) -> list:
        """Instrumented twin of :meth:`_run`.

        Kept as a *separate* loop so the uninstrumented path pays nothing.
        Runs the **source** stream (``fn.code``, never the fused one):
        the ``(findex, pc)`` site labels it records must match
        ``VMFunction.sites`` and the disassembly, and those are numbered
        in source pcs.  It must retire exactly the same number of
        instructions as :meth:`_run` — superinstructions retire two —
        and additionally records, into ``self.profile``:

        * ``entries[findex] += 1`` per function activation,
        * ``calls[(findex, pc)] += 1`` per executed call/tail-call site,
        * ``edges[(findex, src_pc, dst_pc)] += 1`` per taken control-flow
          transfer (br/jmp/match) — back-edges (``dst_pc <= src_pc``)
          give loop iteration counts.
        """
        prof = self.profile
        prof_entries = prof.entries
        prof_calls = prof.calls
        prof_edges = prof.edges
        functions = program.functions
        fn = functions[findex]
        regs: list = list(args) + [None] * (fn.num_regs - fn.num_params)
        code = fn.code
        pc = 0
        heap = self.heap
        # call stack: (findex, code, regs, pc_to_resume, ret_dsts)
        stack: list[tuple] = []
        executed = 0
        limit = self.max_steps
        prof_entries[findex] += 1
        try:
            while True:
                instr = code[pc]
                executed += 1
                op = instr[0]
                if op == OP_ARITH:
                    _, dst, f, a, b = instr
                    regs[dst] = f(regs[a], regs[b])
                    pc += 1
                elif op == OP_BR:
                    _, cond, pc_t, pc_f = instr
                    value = regs[cond]
                    if value is None:
                        raise VMError("branch on undef")
                    taken = pc_t if value else pc_f
                    prof_edges[(findex, pc, taken)] += 1
                    pc = taken
                    if limit is not None and executed > limit:
                        raise VMLimitError("steps", limit)
                elif op == OP_JMP:
                    taken = instr[1]
                    prof_edges[(findex, pc, taken)] += 1
                    pc = taken
                    if limit is not None and executed > limit:
                        raise VMLimitError("steps", limit)
                elif op == OP_MOV:
                    regs[instr[1]] = regs[instr[2]]
                    pc += 1
                elif op == OP_CONST:
                    regs[instr[1]] = instr[2]
                    pc += 1
                elif op == OP_LOAD:
                    _, dst, addr = instr
                    regs[dst] = heap[regs[addr]]
                    pc += 1
                elif op == OP_STORE:
                    _, addr, src = instr
                    heap[regs[addr]] = regs[src]
                    pc += 1
                elif op == OP_LEA:
                    _, dst, base, index, scale = instr
                    regs[dst] = regs[base] + regs[index] * scale
                    pc += 1
                elif op == OP_LEA_CONST:
                    _, dst, base, offset = instr
                    regs[dst] = regs[base] + offset
                    pc += 1
                elif op == OP_UNOP:
                    _, dst, f, a = instr
                    regs[dst] = f(regs[a])
                    pc += 1
                elif op == OP_SELECT:
                    _, dst, cond, a, b = instr
                    value = regs[cond]
                    if value is None:
                        raise VMError("select on undef")
                    regs[dst] = regs[a] if value else regs[b]
                    pc += 1
                elif op == OP_CALL:
                    _, target, arg_regs, ret_dsts = instr
                    prof_calls[(findex, pc)] += 1
                    prof_entries[target] += 1
                    callee = functions[target]
                    new_regs = [None] * callee.num_regs
                    for i, r in enumerate(arg_regs):
                        new_regs[i] = regs[r]
                    stack.append((findex, code, regs, pc + 1, ret_dsts))
                    findex = target
                    code = callee.code
                    regs = new_regs
                    pc = 0
                    if limit is not None and executed > limit:
                        raise VMLimitError("steps", limit)
                elif op == OP_TAILCALL:
                    _, target, arg_regs = instr
                    prof_calls[(findex, pc)] += 1
                    prof_entries[target] += 1
                    callee = functions[target]
                    new_regs = [None] * callee.num_regs
                    for i, r in enumerate(arg_regs):
                        new_regs[i] = regs[r]
                    findex = target
                    code = callee.code
                    regs = new_regs
                    pc = 0
                    if limit is not None and executed > limit:
                        raise VMLimitError("steps", limit)
                elif op == OP_RET:
                    values = [regs[r] for r in instr[1]]
                    if not stack:
                        return values
                    findex, code, regs, pc, ret_dsts = stack.pop()
                    for dst, value in zip(ret_dsts, values):
                        regs[dst] = value
                elif op == OP_TUPLE:
                    _, dst, parts = instr
                    out: list = []
                    for r, size in parts:
                        value = regs[r]
                        if size == 1 and type(value) is not list:
                            out.append(value)
                        else:
                            out.extend(value)
                    regs[dst] = out
                    pc += 1
                elif op == OP_EXTRACT:
                    _, dst, src, offset, size = instr
                    agg = regs[src]
                    if size == 1:
                        regs[dst] = agg[offset]
                    else:
                        regs[dst] = agg[offset:offset + size]
                    pc += 1
                elif op == OP_EXTRACT_DYN:
                    _, dst, src, index, scale, size = instr
                    agg = regs[src]
                    offset = regs[index] * scale
                    if offset < 0 or offset + size > len(agg):
                        raise VMError("aggregate index out of bounds")
                    if size == 1:
                        regs[dst] = agg[offset]
                    else:
                        regs[dst] = agg[offset:offset + size]
                    pc += 1
                elif op == OP_INSERT:
                    _, dst, src, offset, size, value_reg = instr
                    agg = list(regs[src])
                    value = regs[value_reg]
                    if size == 1 and type(value) is not list:
                        agg[offset] = value
                    else:
                        agg[offset:offset + size] = value
                    regs[dst] = agg
                    pc += 1
                elif op == OP_INSERT_DYN:
                    _, dst, src, index, scale, size, value_reg = instr
                    agg = list(regs[src])
                    offset = regs[index] * scale
                    if offset < 0 or offset + size > len(agg):
                        raise VMError("aggregate index out of bounds")
                    value = regs[value_reg]
                    if size == 1 and type(value) is not list:
                        agg[offset] = value
                    else:
                        agg[offset:offset + size] = value
                    regs[dst] = agg
                    pc += 1
                elif op == OP_LOAD_AGG:
                    _, dst, addr, size = instr
                    base = regs[addr]
                    regs[dst] = heap[base:base + size]
                    pc += 1
                elif op == OP_STORE_AGG:
                    _, addr, src, size = instr
                    base = regs[addr]
                    value = regs[src]
                    if type(value) is not list:
                        heap[base] = value
                    else:
                        heap[base:base + size] = value
                    pc += 1
                elif op == OP_ALLOC:
                    _, dst, count_reg, elem_size, fixed = instr
                    if count_reg is None:
                        words = fixed
                    else:
                        words = regs[count_reg] * elem_size + fixed
                    regs[dst] = self.alloc_words(words)
                    heap = self.heap
                    pc += 1
                elif op == OP_MATCH:
                    _, value_reg, table, default_pc = instr
                    taken = table.get(regs[value_reg], default_pc)
                    prof_edges[(findex, pc, taken)] += 1
                    pc = taken
                    if limit is not None and executed > limit:
                        raise VMLimitError("steps", limit)
                elif op == OP_PRINT_I64:
                    self.output.append(str(fold.to_signed(regs[instr[1]], 64)))
                    pc += 1
                elif op == OP_PRINT_F64:
                    self.output.append(repr(regs[instr[1]]))
                    pc += 1
                elif op == OP_PRINT_CHAR:
                    self.output.append(chr(regs[instr[1]]))
                    pc += 1
                elif op == OP_TRAP:
                    raise VMError(instr[1])
                else:  # pragma: no cover
                    raise VMError(f"bad opcode {op}")
        except IndexError:
            raise VMError("memory access out of bounds") from None
        except TypeError:
            raise VMError("operation on undef value") from None
        finally:
            self.executed += executed

"""Code generation: control-flow-form Thorin → register bytecode.

This is the step the paper gets "for free" once closure elimination has
produced CFF: every top-level continuation is a function, every in-scope
continuation a basic block, every jump one of a handful of shapes.
Concretely, per function:

1. recover the scope, its CFG, and a schedule (primop placement);
2. assign one register per value-producing def (``mem`` and ``frame``
   values vanish — they were only dependence edges);
3. emit blocks in reverse postorder; direct jumps become parallel
   register moves + ``jmp`` (phi elimination, done right: cycles broken
   with a scratch register), ``branch``/``match`` become conditional
   jumps, calls to out-of-scope functions become ``call``/``tailcall``
   depending on where their return continuation points.

Anything outside CFF raises :class:`CodegenError` — by design: the CFF
checker in ``core.verify`` names the offending defs, and experiment T2
verifies the pipeline gets every suite program through this door.
"""

from __future__ import annotations

from ..core import fold
from ..core.defs import Continuation, Def, Intrinsic, Param
from ..core.primops import (
    Alloc,
    ArithOp,
    ArrayVal,
    Bitcast,
    Bottom,
    Cast,
    Cmp,
    Enter,
    EvalOp,
    Extract,
    Global,
    Hlt,
    Insert,
    Lea,
    Literal,
    Load,
    MathOp,
    PrimOp,
    Run,
    Select,
    Slot,
    Store,
    StructVal,
    TupleVal,
)
from ..core.scope import Scope
from ..core.schedule import Placement, Schedule
from ..core.types import (
    DefiniteArrayType,
    FnType,
    IndefiniteArrayType,
    MemType,
    PrimType,
    PtrType,
    StructType,
    TupleType,
    Type,
)
from ..core.world import World
from . import bytecode as bc


class CodegenError(Exception):
    """The program is not in control-flow form (or uses an unsupported shape)."""


def _peel(d: Def) -> Def:
    while isinstance(d, EvalOp):
        d = d.value
    return d


def _is_mem(t: Type) -> bool:
    return isinstance(t, MemType)


def _value_params(cont: Continuation) -> list[Param]:
    """Params that carry run-time values (not mem, not the return cont)."""
    ret = _ret_param(cont)
    return [p for p in cont.params if not _is_mem(p.type) and p is not ret]


def _ret_param(cont: Continuation) -> Param | None:
    for param in reversed(cont.params):
        if isinstance(param.type, FnType):
            return param
    return None


class WorldCodegen:
    """Compiles every reachable top-level function of a world."""

    def __init__(self, world: World, *, placement: Placement = Placement.SMART):
        self.world = world
        self.placement = placement
        self.program = bc.VMProgram()
        self._indices: dict[Continuation, int] = {}
        self._queue: list[Continuation] = []
        self._globals: dict[int, int] = {}  # global key -> heap address
        self.fn_types: dict[str, tuple[list[Type], list[Type]]] = {}

    def run(self) -> bc.VMProgram:
        for ext in self.world.externals():
            self.function_index(ext)
        while self._queue:
            cont = self._queue.pop()
            FunctionCodegen(self, cont).run()
        return self.program

    def function_index(self, cont: Continuation) -> int:
        index = self._indices.get(cont)
        if index is None:
            if not cont.is_returning():
                raise CodegenError(
                    f"{cont.unique_name()} is not a returning function "
                    f"({cont.fn_type})"
                )
            ret = _ret_param(cont)
            assert ret is not None and isinstance(ret.type, FnType)
            value_params = _value_params(cont)
            results = [t for t in ret.type.param_types if not _is_mem(t)]
            fn = bc.VMFunction(cont.name or cont.unique_name(),
                               len(value_params), len(results))
            # Ensure unique names for lookup.
            if fn.name in self.program.by_name:
                fn.name = f"{fn.name}.{cont.gid}"
            fn.sites["entry"] = cont.unique_name()
            index = self.program.add(fn)
            self._indices[cont] = index
            self._queue.append(cont)
            self.fn_types[fn.name] = ([p.type for p in value_params], results)
        return index

    def global_address(self, op: Global) -> int:
        key = op.global_id if op.is_mutable else -op.gid
        addr = self._globals.get(key)
        if addr is None:
            words = _const_words(op.init)
            addr = 1 + len(self.program.data)  # heap word 0 is null
            self.program.data.extend(words)
            self._globals[key] = addr
        return addr


def _const_value(d: Def):
    """Evaluate a parameter-free value; aggregates become nested lists,
    undef becomes ``None``.

    Raises :class:`fold.EvalError` when evaluation itself traps (e.g. a
    constant integer division by zero that folding deliberately left in
    the program) — callers emit a *runtime* trap for those, because the
    trap belongs to whichever block references the value, not to compile
    time.  Operands are evaluated before undef short-circuiting, same
    order as the reference interpreter.
    """
    d = _peel(d)
    if isinstance(d, Literal):
        return d.value
    if isinstance(d, Bottom):
        return None
    if isinstance(d, (TupleVal, StructVal, ArrayVal)):
        return [_const_value(op) for op in d.ops]
    if isinstance(d, ArithOp):
        prim = d.type
        assert isinstance(prim, PrimType)
        lhs, rhs = _const_value(d.lhs), _const_value(d.rhs)
        if lhs is None or rhs is None:
            return None
        return fold.arith(d.kind, prim, lhs, rhs)
    if isinstance(d, Cmp):
        prim = d.lhs.type
        assert isinstance(prim, PrimType)
        lhs, rhs = _const_value(d.lhs), _const_value(d.rhs)
        if lhs is None or rhs is None:
            return None
        return fold.compare(d.rel, prim, lhs, rhs)
    if isinstance(d, MathOp):
        prim = d.type
        assert isinstance(prim, PrimType)
        value = _const_value(d.value)
        return None if value is None else fold.math_op(d.kind, prim, value)
    if isinstance(d, Cast):
        to, frm = d.type, d.value.type
        assert isinstance(to, PrimType) and isinstance(frm, PrimType)
        value = _const_value(d.value)
        return None if value is None else fold.cast(to, frm, value)
    if isinstance(d, Bitcast):
        to, frm = d.type, d.value.type
        if not (isinstance(to, PrimType) and isinstance(frm, PrimType)):
            raise CodegenError(f"unsupported constant bitcast {d!r}")
        value = _const_value(d.value)
        return None if value is None else fold.bitcast(to, frm, value)
    if isinstance(d, Select):
        cond = _const_value(d.cond)
        tval, fval = _const_value(d.tval), _const_value(d.fval)
        if cond is None:
            return None
        return tval if cond else fval
    if isinstance(d, Extract):
        agg, index = _const_value(d.agg), _const_value(d.index)
        if agg is None or index is None:
            return None
        if not 0 <= index < len(agg):
            return None  # out of bounds: bottom
        return agg[index]
    if isinstance(d, Insert):
        agg, index = _const_value(d.agg), _const_value(d.index)
        value = _const_value(d.value)
        if agg is None or index is None:
            return None
        if not 0 <= index < len(agg):
            return None
        agg = list(agg)
        agg[index] = value
        return agg
    raise CodegenError(f"unsupported global initializer {d!r}")


def _value_words(value, type_: Type) -> list:
    """Flatten an evaluated constant into its heap word image."""
    size = bc.word_size(type_)
    if value is None:
        return [0] * size
    if isinstance(type_, TupleType):
        elem_types: tuple[Type, ...] = type_.elem_types
    elif isinstance(type_, StructType):
        elem_types = type_.field_types
    elif isinstance(type_, DefiniteArrayType):
        elem_types = (type_.elem_type,) * type_.length
    else:
        return [value]
    words: list = []
    for elem, elem_type in zip(value, elem_types):
        words.extend(_value_words(elem, elem_type))
    return words


def _const_words(d: Def) -> list:
    """Flattened word image of a parameter-free value (global initializers)."""
    return _value_words(_const_value(d), d.type)


class FunctionCodegen:
    """Compiles one top-level function's scope into a :class:`VMFunction`."""

    def __init__(self, parent: WorldCodegen, entry: Continuation):
        self.parent = parent
        self.world = parent.world
        self.entry = entry
        self.fn = parent.program.functions[parent.function_index(entry)]
        manager = self.world._analyses
        if manager is not None and manager.enabled:
            self.scope = manager.scope(entry)
            self.schedule = manager.schedule(entry, parent.placement)
        else:
            self.scope = Scope(entry)
            self.schedule = Schedule(self.scope, parent.placement)
        self.ret_param = _ret_param(entry)
        self._regs: dict[Def, int] = {}
        self._const_regs: dict[Def, int] = {}
        self._block_pcs: dict[Continuation, int] = {}
        self._fixups: list[tuple[int, tuple]] = []
        self._scratch: int | None = None
        self._ret_epilogue_pc: int | None = None
        # Constants are discovered lazily during emission but must be
        # initialized before any block runs: they go into a prologue
        # that is prepended at the end (shifting all recorded pcs).
        self._prologue: list[tuple] = []

    # ------------------------------------------------------------------

    def run(self) -> None:
        fn = self.fn
        blocks = self.schedule.blocks()
        assert blocks and blocks[0] is self.entry
        free = self.scope.free_params()
        if free:
            names = ", ".join(p.unique_name() for p in free)
            raise CodegenError(
                f"{self.entry.unique_name()} captures {names}: not in CFF"
            )
        # Registers for entry params.
        for index, param in enumerate(_value_params(self.entry)):
            self._regs[param] = index
        # Registers for block params.
        for block in blocks[1:]:
            if block.fn_type.order() > 1:
                raise CodegenError(
                    f"inner continuation {block.unique_name()} of "
                    f"{self.entry.unique_name()} is not a basic block"
                )
            for param in block.params:
                if not _is_mem(param.type):
                    self._regs[param] = fn.new_reg()
        # Slots: one bump allocation each, in the entry block.
        slots = [op for block in blocks for op in self.schedule.ops_in(block)
                 if isinstance(op, Slot)]
        for slot in slots:
            reg = fn.new_reg()
            self._regs[slot] = reg
            assert isinstance(slot.type, PtrType)
            fn.emit(bc.OP_ALLOC, reg, None, 0, bc.word_size(slot.type.pointee))
        # Emit blocks in RPO.  The split effect threads (transform.mem_opt)
        # are plain data dependences; assert the block-local order kept
        # every thread intact before baking it into bytecode.
        self.schedule.verify_effect_order()
        for block in blocks:
            self._block_pcs[block] = len(fn.code)
            for op in self.schedule.ops_in(block):
                self._emit_primop(op)
            self._emit_terminator(block)
        # Prepend lazily discovered constants, shifting every pc.
        if self._prologue:
            offset = len(self._prologue)
            fn.code[:0] = self._prologue
            self._block_pcs = {b: pc + offset
                               for b, pc in self._block_pcs.items()}
            self._fixups = [(index + offset, fixup)
                            for index, fixup in self._fixups]
        self._apply_fixups()
        # Site metadata for PGO: block-start pcs keyed back to the source
        # continuations' stable names (pcs are final after the prologue
        # shift above).
        fn.sites["blocks"] = {pc: block.unique_name()
                              for block, pc in self._block_pcs.items()}

    # ------------------------------------------------------------------
    # operands & registers
    # ------------------------------------------------------------------

    def _reg_of(self, d: Def) -> int:
        """Register holding the value of *d* (materializing constants)."""
        d = _peel(d)
        reg = self._regs.get(d)
        if reg is not None:
            return reg
        if isinstance(d, Literal):
            return self._const_reg(d, d.value)
        if isinstance(d, Bottom):
            return self._const_reg(d, None)
        if isinstance(d, Global):
            try:
                return self._const_reg(d, self.parent.global_address(d))
            except fold.EvalError as trap:
                return self._emit_trap_value(trap)
        if isinstance(d, PrimOp) and d not in self.scope:
            # A shared, parameter-free primop (constant expression that
            # escaped folding, e.g. chained inserts over bottom).
            try:
                return self._const_reg(d, self._eval_const(d))
            except fold.EvalError as trap:
                return self._emit_trap_value(trap)
        if isinstance(d, Param):
            raise CodegenError(
                f"{self.entry.unique_name()}: foreign parameter "
                f"{d.unique_name()} (free variable — not CFF)"
            )
        raise CodegenError(
            f"{self.entry.unique_name()}: no register for {d!r}"
        )

    def _const_reg(self, d: Def, value) -> int:
        reg = self._const_regs.get(d)
        if reg is None:
            reg = self.fn.new_reg()
            self._const_regs[d] = reg
            self._prologue.append((bc.OP_CONST, reg, value))
        return reg

    def _eval_const(self, d: PrimOp):
        if bc.word_size(d.type) == 1:
            return _const_value(d)
        return _const_words(d)

    def _emit_trap_value(self, trap: fold.EvalError) -> int:
        """A constant expression that traps when evaluated.

        The trap is emitted *inline* at the current emission point — not
        into the constant prologue, which runs unconditionally at
        function entry — so it fires exactly when the referencing block
        executes, matching the reference interpreter's lazy evaluation.
        The register is only a placeholder; nothing past the trap runs.
        """
        self.fn.emit(bc.OP_TRAP, str(trap))
        return self._scratch_reg()

    def _def_reg(self, d: Def) -> int:
        reg = self._regs.get(d)
        if reg is None:
            reg = self.fn.new_reg()
            self._regs[d] = reg
        return reg

    def _alias(self, d: Def, reg: int) -> None:
        self._regs[d] = reg

    def _scratch_reg(self) -> int:
        if self._scratch is None:
            self._scratch = self.fn.new_reg()
        return self._scratch

    # ------------------------------------------------------------------
    # primops
    # ------------------------------------------------------------------

    def _emit_primop(self, op: PrimOp) -> None:
        fn = self.fn
        if isinstance(op, ArithOp):
            prim = op.type
            assert isinstance(prim, PrimType)
            fn.emit(bc.OP_ARITH, self._def_reg(op), bc.arith_fn(op.kind, prim),
                    self._reg_of(op.lhs), self._reg_of(op.rhs))
            return
        if isinstance(op, Cmp):
            prim = op.lhs.type
            assert isinstance(prim, PrimType)
            fn.emit(bc.OP_ARITH, self._def_reg(op), bc.cmp_fn(op.rel, prim),
                    self._reg_of(op.lhs), self._reg_of(op.rhs))
            return
        if isinstance(op, Cast):
            to, frm = op.type, op.value.type
            assert isinstance(to, PrimType) and isinstance(frm, PrimType)
            fn.emit(bc.OP_UNOP, self._def_reg(op), bc.cast_fn(to, frm),
                    self._reg_of(op.value))
            return
        if isinstance(op, Bitcast):
            to, frm = op.type, op.value.type
            assert isinstance(to, PrimType) and isinstance(frm, PrimType)
            fn.emit(bc.OP_UNOP, self._def_reg(op), bc.bitcast_fn(to, frm),
                    self._reg_of(op.value))
            return
        if isinstance(op, MathOp):
            prim = op.type
            assert isinstance(prim, PrimType)
            fn.emit(bc.OP_UNOP, self._def_reg(op), bc.math_fn(op.kind, prim),
                    self._reg_of(op.value))
            return
        if isinstance(op, Select):
            fn.emit(bc.OP_SELECT, self._def_reg(op), self._reg_of(op.cond),
                    self._reg_of(op.tval), self._reg_of(op.fval))
            return
        if isinstance(op, (TupleVal, StructVal, ArrayVal)):
            if any(isinstance(t, FnType) for t in op.type.elements):
                return  # control-flow aggregate (match arm): no value
            parts = tuple((self._reg_of(e), bc.word_size(e.type))
                          for e in op.ops)
            fn.emit(bc.OP_TUPLE, self._def_reg(op), parts)
            return
        if isinstance(op, Extract):
            self._emit_extract(op)
            return
        if isinstance(op, Insert):
            self._emit_insert(op)
            return
        if isinstance(op, Enter):
            return  # frames have no runtime footprint
        if isinstance(op, Slot):
            assert op in self._regs  # preallocated in the entry block
            return
        if isinstance(op, Alloc):
            self._emit_alloc(op)
            return
        if isinstance(op, Load):
            ptr_t = op.ptr.type
            assert isinstance(ptr_t, PtrType)
            size = bc.word_size(ptr_t.pointee)
            if size == 1 and not isinstance(ptr_t.pointee, IndefiniteArrayType):
                fn.emit(bc.OP_LOAD, self._def_reg(op), self._reg_of(op.ptr))
            else:
                fn.emit(bc.OP_LOAD_AGG, self._def_reg(op),
                        self._reg_of(op.ptr), size)
            return
        if isinstance(op, Store):
            ptr_t = op.ptr.type
            assert isinstance(ptr_t, PtrType)
            size = bc.word_size(ptr_t.pointee)
            if size == 1 and not isinstance(ptr_t.pointee, IndefiniteArrayType):
                fn.emit(bc.OP_STORE, self._reg_of(op.ptr),
                        self._reg_of(op.value))
            else:
                fn.emit(bc.OP_STORE_AGG, self._reg_of(op.ptr),
                        self._reg_of(op.value), size)
            return
        if isinstance(op, Lea):
            self._emit_lea(op)
            return
        if isinstance(op, Global):
            self._alias(op, self._reg_of(op))
            return
        if isinstance(op, EvalOp):
            self._alias(op, self._reg_of(op.value))
            return
        if isinstance(op, (Literal, Bottom)):
            self._alias(op, self._reg_of(op))
            return
        raise CodegenError(f"cannot lower primop {op!r}")

    def _emit_extract(self, op: Extract) -> None:
        agg = _peel(op.agg)
        # Components of memory-op result tuples are aliases.
        if isinstance(agg, (Load, Alloc, Enter)):
            index = agg_index_literal(op.index)
            if _is_mem(op.type):
                return
            if isinstance(agg, Enter):
                return  # frame: no runtime value
            assert index == 1
            self._alias(op, self._reg_of(agg))
            return
        if _is_mem(op.type):
            return
        agg_t = agg.type
        size = bc.word_size(op.type)
        if isinstance(op.index, Literal):
            offset = bc.field_offset(agg_t, op.index.value)
            self.fn.emit(bc.OP_EXTRACT, self._def_reg(op), self._reg_of(agg),
                         offset, size)
        else:
            assert isinstance(agg_t, (DefiniteArrayType, IndefiniteArrayType))
            scale = bc.word_size(agg_t.elem_type)
            self.fn.emit(bc.OP_EXTRACT_DYN, self._def_reg(op),
                         self._reg_of(agg), self._reg_of(op.index), scale, size)

    def _emit_insert(self, op: Insert) -> None:
        agg_t = op.agg.type
        size = bc.word_size(op.value.type)
        if isinstance(op.index, Literal):
            offset = bc.field_offset(agg_t, op.index.value)
            self.fn.emit(bc.OP_INSERT, self._def_reg(op), self._reg_of(op.agg),
                         offset, size, self._reg_of(op.value))
        else:
            assert isinstance(agg_t, (DefiniteArrayType, IndefiniteArrayType))
            scale = bc.word_size(agg_t.elem_type)
            self.fn.emit(bc.OP_INSERT_DYN, self._def_reg(op),
                         self._reg_of(op.agg), self._reg_of(op.index), scale,
                         size, self._reg_of(op.value))

    def _emit_alloc(self, op: Alloc) -> None:
        pair_t = op.type
        assert isinstance(pair_t, TupleType)
        ptr_t = pair_t.elem_types[1]
        assert isinstance(ptr_t, PtrType)
        pointee = ptr_t.pointee
        if isinstance(pointee, IndefiniteArrayType):
            elem = bc.word_size(pointee.elem_type)
            self.fn.emit(bc.OP_ALLOC, self._def_reg(op),
                         self._reg_of(op.extra), elem, 0)
        else:
            self.fn.emit(bc.OP_ALLOC, self._def_reg(op), None, 0,
                         bc.word_size(pointee))

    def _emit_lea(self, op: Lea) -> None:
        base_t = op.ptr.type
        assert isinstance(base_t, PtrType)
        pointee = base_t.pointee
        if isinstance(op.index, Literal):
            offset = bc.field_offset(pointee, op.index.value)
            self.fn.emit(bc.OP_LEA_CONST, self._def_reg(op),
                         self._reg_of(op.ptr), offset)
        else:
            assert isinstance(pointee, (DefiniteArrayType, IndefiniteArrayType))
            scale = bc.word_size(pointee.elem_type)
            self.fn.emit(bc.OP_LEA, self._def_reg(op), self._reg_of(op.ptr),
                         self._reg_of(op.index), scale)

    # ------------------------------------------------------------------
    # terminators
    # ------------------------------------------------------------------

    def _emit_terminator(self, block: Continuation) -> None:
        if not block.has_body():
            self.fn.emit(bc.OP_TRAP, f"fell into bodiless {block.unique_name()}")
            return
        callee = _peel(block.callee)
        args = block.args
        if isinstance(callee, Continuation):
            if callee.intrinsic == Intrinsic.BRANCH:
                index = self.fn.emit(bc.OP_BR, self._reg_of(args[1]), 0, 0)
                self._fixups.append((index, ("br", args[2], args[3])))
                return
            if callee.intrinsic == Intrinsic.MATCH:
                self._emit_match(args)
                return
            if callee.intrinsic in (Intrinsic.PRINT_I64, Intrinsic.PRINT_F64,
                                    Intrinsic.PRINT_CHAR):
                opcode = {
                    Intrinsic.PRINT_I64: bc.OP_PRINT_I64,
                    Intrinsic.PRINT_F64: bc.OP_PRINT_F64,
                    Intrinsic.PRINT_CHAR: bc.OP_PRINT_CHAR,
                }[callee.intrinsic]
                self.fn.emit(opcode, self._reg_of(args[1]))
                self._emit_continue_to(args[2], ())
                return
            if callee.intrinsic == Intrinsic.PE_INFO:
                self._emit_continue_to(args[2], ())
                return
            if callee.intrinsic is not None:
                raise CodegenError(f"unknown intrinsic {callee.intrinsic}")
            if callee in self.scope and callee is not self.entry:
                self._emit_direct_jump(callee, args)
                return
            # Out-of-scope function or a recursive jump to the entry:
            # both are calls.
            self._emit_call(callee, args)
            return
        if isinstance(callee, Param):
            if callee is self.ret_param:
                rets = tuple(self._reg_of(a) for a in args
                             if not _is_mem(a.type))
                self.fn.emit(bc.OP_RET, rets)
                return
            raise CodegenError(
                f"{block.unique_name()}: first-class callee "
                f"{callee.unique_name()} (not CFF)"
            )
        raise CodegenError(
            f"{block.unique_name()}: cannot lower callee {callee!r}"
        )

    def _emit_match(self, args: tuple[Def, ...]) -> None:
        value_reg = self._reg_of(args[1])
        index = self.fn.emit(bc.OP_MATCH, value_reg, {}, 0)
        arms = []
        for arm in args[3:]:
            lit = _peel(arm.op(0))
            if not isinstance(lit, Literal):
                raise CodegenError("match arm with non-literal pattern")
            arms.append((lit.value, arm.op(1)))
        self._fixups.append((index, ("match", args[2], arms)))

    def _emit_direct_jump(self, target: Continuation, args: tuple[Def, ...]) -> None:
        moves: list[tuple[int, int]] = []  # (dst, src)
        const_writes: list[tuple[int, object]] = []
        for param, arg in zip(target.params, args):
            if _is_mem(param.type):
                continue
            dst = self._regs[param]
            arg = _peel(arg)
            if isinstance(arg, Literal):
                const_writes.append((dst, arg.value))
            elif isinstance(arg, Bottom):
                const_writes.append((dst, None))
            else:
                src = self._reg_of(arg)
                if src != dst:
                    moves.append((dst, src))
        self._emit_parallel_moves(moves)
        for dst, value in const_writes:
            self.fn.emit(bc.OP_CONST, dst, value)
        index = self.fn.emit(bc.OP_JMP, 0)
        self._fixups.append((index, ("jmp", target)))

    def _emit_parallel_moves(self, moves: list[tuple[int, int]]) -> None:
        """Emit reg-reg moves preserving simultaneous-assignment semantics.

        All destinations are distinct (they are block parameters).  Emit
        every move whose destination no pending move still reads; when
        only cycles remain, save one source to the scratch register and
        redirect its readers.
        """
        pending: dict[int, int] = dict(moves)  # dst -> src
        while pending:
            safe = [d for d in pending if d not in pending.values()]
            if safe:
                for dst in safe:
                    self.fn.emit(bc.OP_MOV, dst, pending.pop(dst))
                continue
            # Only cycles remain: free up one source.
            dst, src = next(iter(pending.items()))
            scratch = self._scratch_reg()
            self.fn.emit(bc.OP_MOV, scratch, src)
            for d in pending:
                if pending[d] == src:
                    pending[d] = scratch

    def _emit_call(self, callee: Continuation, args: tuple[Def, ...]) -> None:
        findex = self.parent.function_index(callee)
        value_args: list[int] = []
        ret_target: Def | None = None
        ret = _ret_param(callee)
        for param, arg in zip(callee.params, args):
            if _is_mem(param.type):
                continue
            if param is ret:
                ret_target = arg
                continue
            if isinstance(param.type, FnType):
                raise CodegenError(
                    f"call to {callee.unique_name()} passes continuation "
                    f"argument {arg.unique_name()} (not CFF)"
                )
            value_args.append(self._reg_of(arg))
        assert ret_target is not None
        ret_target = _peel(ret_target)
        if isinstance(ret_target, Param) and ret_target is self.ret_param:
            self.fn.emit(bc.OP_TAILCALL, findex, tuple(value_args))
            return
        if isinstance(ret_target, Continuation) and ret_target in self.scope:
            dsts = tuple(self._regs[p] for p in ret_target.params
                         if not _is_mem(p.type))
            self.fn.emit(bc.OP_CALL, findex, tuple(value_args), dsts)
            index = self.fn.emit(bc.OP_JMP, 0)
            self._fixups.append((index, ("jmp", ret_target)))
            return
        raise CodegenError(
            f"call to {callee.unique_name()}: unsupported return target "
            f"{ret_target!r}"
        )

    def _emit_continue_to(self, target: Def, ret_regs: tuple) -> None:
        """Resume after an intrinsic call: jump to block or return."""
        target = _peel(target)
        if isinstance(target, Continuation) and target in self.scope:
            index = self.fn.emit(bc.OP_JMP, 0)
            self._fixups.append((index, ("jmp", target)))
            return
        if isinstance(target, Param) and target is self.ret_param:
            self.fn.emit(bc.OP_RET, ret_regs)
            return
        raise CodegenError(f"unsupported continuation target {target!r}")

    # ------------------------------------------------------------------

    def _target_pc(self, target: Def) -> int:
        target = _peel(target)
        if isinstance(target, Param) and target is self.ret_param:
            # Eta reduction can turn a unit-returning branch target into
            # the return parameter itself ("conditional return"): give
            # it a one-instruction epilogue.
            if self._ret_epilogue_pc is None:
                self._ret_epilogue_pc = len(self.fn.code)
                self.fn.emit(bc.OP_RET, ())
            return self._ret_epilogue_pc
        if not isinstance(target, Continuation):
            raise CodegenError(
                f"{self.entry.unique_name()}: control target "
                f"{target!r} is not lowerable"
            )
        pc = self._block_pcs.get(target)
        if pc is None:
            raise CodegenError(
                f"jump to out-of-scope block {target.unique_name()} from "
                f"{self.entry.unique_name()}"
            )
        return pc

    def _apply_fixups(self) -> None:
        for index, fixup in self._fixups:
            kind = fixup[0]
            if kind == "jmp":
                self.fn.patch(index, bc.OP_JMP, self._target_pc(fixup[1]))
            elif kind == "br":
                _, cond_reg, _, _ = self.fn.code[index]
                self.fn.patch(index, bc.OP_BR, cond_reg,
                              self._target_pc(fixup[1]),
                              self._target_pc(fixup[2]))
            elif kind == "match":
                _, value_reg, _, _ = self.fn.code[index]
                table = {value: self._target_pc(t) for value, t in fixup[2]}
                self.fn.patch(index, bc.OP_MATCH, value_reg, table,
                              self._target_pc(fixup[1]))
            else:  # pragma: no cover
                raise AssertionError(kind)


class CompiledWorld:
    """A compiled world plus a VM, with Python-typed call/return."""

    def __init__(self, world: World, *, placement: Placement = Placement.SMART,
                 profile=None, max_steps: int | None = None):
        codegen = WorldCodegen(world, placement=placement)
        self.program = codegen.run()
        self.fn_types = codegen.fn_types
        self.vm = bc.VM(self.program, profile=profile, max_steps=max_steps)

    def call(self, name: str, *args):
        param_types, result_types = self.fn_types[name]
        if len(args) != len(param_types):
            raise bc.VMError(
                f"{name} expects {len(param_types)} arguments, got {len(args)}"
            )
        vm_args = [_to_vm_value(a, t) for a, t in zip(args, param_types)]
        result = self.vm.call(self.program, name, *vm_args)
        if not result_types:
            return None
        if len(result_types) == 1:
            return _from_vm_value(result, result_types[0])
        return tuple(_from_vm_value(v, t) for v, t in zip(result, result_types))

    def output_text(self) -> str:
        return self.vm.output_text()


def _to_vm_value(value, t: Type):
    if isinstance(t, PrimType):
        return fold.canonicalize(t.kind, value)
    if isinstance(t, (TupleType, DefiniteArrayType)):
        elems = (t.elem_types if isinstance(t, TupleType)
                 else [t.elem_type] * t.length)
        words: list = []
        for v, et in zip(value, elems):
            w = _to_vm_value(v, et)
            if isinstance(w, list):
                words.extend(w)
            else:
                words.append(w)
        return words
    raise bc.VMError(f"cannot pass a Python value as {t}")


def _from_vm_value(value, t: Type):
    if isinstance(t, PrimType):
        return fold.public_value(t.kind, value)
    return value


def compile_world(world: World, *,
                  placement: Placement = Placement.SMART,
                  profile=None, max_steps: int | None = None) -> CompiledWorld:
    """Compile all externals of a CFF world; returns a callable image.

    Pass ``profile=`` a :class:`repro.profile.collector.ProfileCollector`
    to run the image under the instrumented VM dispatch loop.
    ``max_steps`` bounds executed VM instructions per call (see
    :class:`repro.backend.bytecode.VM`).
    """
    return CompiledWorld(world, placement=placement, profile=profile,
                         max_steps=max_steps)


def agg_index_literal(index: Def) -> int:
    assert isinstance(index, Literal)
    return index.value

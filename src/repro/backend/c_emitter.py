"""C-like source emission from control-flow-form Thorin.

The paper's system hands CFF programs to LLVM; this repository's
"machine" is the bytecode VM, but for inspection (and as a second,
independent witness that CFF maps onto a classical language) this
module renders a world as readable C:

* functions for top-level continuations, ``goto`` labels for blocks,
  block parameters as variables assigned before each jump (classic phi
  destruction);
* scalars map to ``<stdint.h>`` types; buffers to element pointers;
  definite arrays and tuples to flat word structs.

Two consumers build on this emitter:

* plain mode (:func:`emit_c`) renders readable C for humans and golden
  tests — no compiler involved, traps and prints use bare C idioms
  (``/`` that may fault, ``printf``);
* the native execution tier (:mod:`repro.native`) subclasses
  :class:`CEmitter` to produce *actually compilable and runnable*
  translation units — guarded division, trap reporting, print capture
  and a fixed entry ABI — which the system ``cc`` turns into ``.so``
  files (see DESIGN.md §4f).

The hook methods (``_prelude``, ``_postlude``, ``_function_entry``,
``_block_entry``, ``_arith_expr``, ``_cast_expr``, ``_float_lit``,
``_int_lit``, ``_emit_print``) are the subclassing surface; everything
else is shared emission logic.
"""

from __future__ import annotations

import io

from ..core.defs import Continuation, Def, Intrinsic, Param
from ..core.primops import (
    Alloc,
    ArithKind,
    ArithOp,
    ArrayVal,
    Bitcast,
    Bottom,
    Cast,
    Cmp,
    CmpRel,
    Enter,
    EvalOp,
    Extract,
    Global,
    Insert,
    Lea,
    Literal,
    Load,
    MathOp,
    PrimOp,
    Select,
    Slot,
    Store,
    StructVal,
    TupleVal,
)
from ..core.schedule import Schedule
from ..core.scope import Scope, scope_of, top_level_of
from ..core.types import (
    BOOL,
    DefiniteArrayType,
    FnType,
    IndefiniteArrayType,
    MemType,
    PrimType,
    PtrType,
    TupleType,
    Type,
    prim_type,
)
from ..core.world import World

_C_PRIM = {
    "bool": "bool", "i8": "int8_t", "i16": "int16_t", "i32": "int32_t",
    "i64": "int64_t", "u8": "uint8_t", "u16": "uint16_t", "u32": "uint32_t",
    "u64": "uint64_t", "f32": "float", "f64": "double",
}

_ARITH_C = {
    ArithKind.ADD: "+", ArithKind.SUB: "-", ArithKind.MUL: "*",
    ArithKind.DIV: "/", ArithKind.REM: "%", ArithKind.AND: "&",
    ArithKind.OR: "|", ArithKind.XOR: "^", ArithKind.SHL: "<<",
    ArithKind.SHR: ">>",
}

_CMP_C = {
    CmpRel.EQ: "==", CmpRel.NE: "!=", CmpRel.LT: "<", CmpRel.LE: "<=",
    CmpRel.GT: ">", CmpRel.GE: ">=",
}


class CEmitError(Exception):
    pass


def c_type(t: Type) -> str:
    if isinstance(t, PrimType):
        return _C_PRIM[str(t)]
    if isinstance(t, PtrType):
        pointee = t.pointee
        if isinstance(pointee, IndefiniteArrayType):
            return f"{c_type(pointee.elem_type)}*"
        if isinstance(pointee, DefiniteArrayType):
            return f"{c_type(pointee.elem_type)}*"
        return f"{c_type(pointee)}*"
    if isinstance(t, (TupleType, DefiniteArrayType)):
        return "word_block"  # flat word struct; see prelude
    raise CEmitError(f"no C type for {t}")


def _peel(d: Def) -> Def:
    while isinstance(d, EvalOp):
        d = d.value
    return d


def _is_mem(t: Type) -> bool:
    return isinstance(t, MemType)


PRELUDE = """\
#include <stdint.h>
#include <stdbool.h>
#include <stdlib.h>
#include <stdio.h>
#include <math.h>

/* flat aggregate-by-value fallback */
typedef struct { int64_t w[8]; } word_block;

/* trap anchor for constant expressions that must fault at runtime */
static volatile int64_t repro_c_zero = 0;
"""


class CEmitter:
    def __init__(self, world: World):
        self.world = world
        self.out = io.StringIO()
        self._names: dict[Def, str] = {}
        self._counter = 0
        # Ops placed by the current function's schedule; anything else a
        # _ref meets is a parameter-free constant to materialize inline.
        self._placed: set[PrimOp] = set()

    def emit(self) -> str:
        functions = [c for c in top_level_of(self.world)
                     if c.has_body() and c.is_returning()]
        self.out.write(self._prelude(functions))
        for fn in functions:
            self.out.write("\n")
            self._emit_function(fn)
        self._postlude(functions)
        return self.out.getvalue()

    # -- subclassing surface (see repro.native.runtime) ----------------

    def _prelude(self, functions: list[Continuation]) -> str:
        return PRELUDE

    def _postlude(self, functions: list[Continuation]) -> None:
        """Emitted after all function bodies (entry wrappers, etc.)."""

    def _function_entry(self, fn: Continuation) -> None:
        """Emitted just inside every function's opening brace."""

    def _block_entry(self, block: Continuation) -> None:
        """Emitted right after every block label (fuel checks, etc.)."""

    def _float_lit(self, prim: PrimType, value: float) -> str:
        return repr(float(value))

    def _int_lit(self, prim: PrimType, value: int) -> str:
        suffix = "ull" if prim.is_unsigned else "ll"
        return f"{value}{suffix}" if prim.bitwidth == 64 else str(value)

    def _arith_expr(self, op: ArithOp) -> str:
        return (f"{self._ref(op.lhs)} {_ARITH_C[op.kind]} "
                f"{self._ref(op.rhs)}")

    def _cast_expr(self, op: Cast | Bitcast) -> str:
        return f"({c_type(op.type)}){self._ref(op.op(0))}"

    def _emit_print(self, intrinsic: Intrinsic, value: Def) -> None:
        fmt = {Intrinsic.PRINT_I64: '"%lld"',
               Intrinsic.PRINT_F64: '"%g"',
               Intrinsic.PRINT_CHAR: '"%c"'}[intrinsic]
        self.out.write(f"    printf({fmt}, {self._ref(value)});\n")

    # ------------------------------------------------------------------

    def _name(self, d: Def) -> str:
        name = self._names.get(d)
        if name is None:
            base = d.name or "v"
            base = "".join(ch if ch.isalnum() else "_" for ch in base)
            self._counter += 1
            name = f"{base}_{self._counter}"
            self._names[d] = name
        return name

    def _ref(self, d: Def) -> str:
        d = _peel(d)
        if isinstance(d, Literal):
            value = d.public_value()
            if d.prim_type.is_bool:
                return "true" if value else "false"
            if d.prim_type.is_float:
                return self._float_lit(d.prim_type, float(value))
            return self._int_lit(d.prim_type, value)
        if isinstance(d, Bottom):
            return "0 /* undef */"
        if (isinstance(d, PrimOp) and not isinstance(d, Global)
                and d not in self._placed):
            return self._const_ref(d)
        return self._name(d)

    def _const_ref(self, d: PrimOp) -> str:
        """A parameter-free primop the schedule left to the backend.

        Mirrors codegen's constant materialization: evaluate with the
        folder; a clean value becomes a literal, a trapping evaluation
        (constant division by zero that folding deliberately kept)
        becomes an expression that faults when — and only when — the
        referencing block executes.
        """
        from ..core import fold
        from .codegen import _const_value

        try:
            value = _const_value(d)
        except fold.EvalError as trap:
            return self._trap_expr(d, trap)
        if isinstance(value, list):  # flat aggregate image
            words = ", ".join(self._scalar_lit(w) for w in value)
            return f"(word_block){{ .w = {{ {words} }} }}"
        prim = d.type
        if not isinstance(prim, PrimType):
            raise CEmitError(f"cannot materialize constant {d!r}")
        if value is None:
            return "0 /* undef */"
        if prim.is_bool:
            return "true" if value else "false"
        if prim.is_float:
            return self._float_lit(prim, float(value))
        return self._int_lit(prim, value)

    def _scalar_lit(self, value) -> str:
        # Words of a flat aggregate image land in int64_t slots; route
        # through the literal hooks so subclass hardening (INT64_MIN,
        # non-finite floats) applies to aggregate constants too.
        if value is None:
            return "0"
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, float):
            return self._float_lit(prim_type("f64"), value)
        if value >= 1 << 63:  # u64 word: same bits, signed reading
            value -= 1 << 64
        return self._int_lit(prim_type("i64"), value)

    def _trap_expr(self, d: PrimOp, trap: Exception) -> str:
        """A constant expression whose evaluation faults at runtime."""
        return f"({c_type(d.type)})(1 / repro_c_zero) /* {trap} */"

    def _ret_param(self, fn: Continuation) -> Param:
        ret = None
        for p in reversed(fn.params):
            if isinstance(p.type, FnType):
                ret = p
                break
        assert ret is not None and isinstance(ret.type, FnType)
        return ret

    def _fn_signature(self, fn: Continuation) -> tuple[Param, str, list]:
        """``(ret_param, return C type, value params)`` of a function."""
        ret = self._ret_param(fn)
        ret_types = [t for t in ret.type.param_types if not _is_mem(t)]
        ret_c = "void" if not ret_types else c_type(ret_types[0])
        params = [p for p in fn.params if not _is_mem(p.type) and p is not ret]
        return ret, ret_c, params

    def _fn_name(self, fn: Continuation) -> str:
        return fn.name or self._name(fn)

    def _emit_function(self, fn: Continuation) -> None:
        manager = self.world._analyses
        if manager is not None and manager.enabled:
            scope = manager.scope(fn)
            schedule = manager.schedule(fn)
        else:
            scope = Scope(fn)
            schedule = Schedule(scope)
        ret, ret_c, params = self._fn_signature(fn)
        sig = ", ".join(f"{c_type(p.type)} {self._name(p)}" for p in params)
        self.out.write(f"{ret_c} {self._fn_name(fn)}({sig}) {{\n")
        self._function_entry(fn)

        blocks = schedule.blocks()
        self._placed = {op for block in blocks
                        for op in schedule.ops_in(block)}
        # declare block params as variables
        for block in blocks[1:]:
            for p in block.params:
                if not _is_mem(p.type):
                    self.out.write(f"    {c_type(p.type)} {self._name(p)};\n")

        # The split effect threads (transform.mem_opt) are plain data
        # dependences; assert the block-local order kept every thread
        # intact before serializing it as C statements.
        schedule.verify_effect_order()
        for block in blocks:
            if block is not fn:
                self.out.write(f"{self._label(block)}:;\n")
                self._block_entry(block)
            for op in schedule.ops_in(block):
                self._emit_primop(op)
            self._emit_terminator(fn, ret, block, schedule)
        self.out.write("}\n")

    def _label(self, block: Continuation) -> str:
        return f"L{self._name(block)}"

    def _assign(self, d: PrimOp, expr: str) -> None:
        self.out.write(f"    {c_type(d.type)} {self._name(d)} = {expr};\n")

    def _emit_primop(self, op: PrimOp) -> None:
        if isinstance(op, ArithOp):
            self._assign(op, self._arith_expr(op))
            return
        if isinstance(op, Cmp):
            self._assign(op, f"{self._ref(op.lhs)} {_CMP_C[op.rel]} "
                             f"{self._ref(op.rhs)}")
            return
        if isinstance(op, (Cast, Bitcast)):
            self._assign(op, self._cast_expr(op))
            return
        if isinstance(op, MathOp):
            self._assign(op, f"{op.kind.value}({self._ref(op.value)})")
            return
        if isinstance(op, Select):
            self._assign(op, f"{self._ref(op.cond)} ? {self._ref(op.tval)} "
                             f": {self._ref(op.fval)}")
            return
        if isinstance(op, Lea):
            self._assign(op, f"&{self._ref(op.ptr)}[{self._ref(op.index)}]")
            return
        if isinstance(op, Load):
            value_t = op.type.elements[1]
            self.out.write(f"    {c_type(value_t)} {self._name(op)} = "
                           f"*{self._ref(op.ptr)};\n")
            return
        if isinstance(op, Store):
            self.out.write(f"    *{self._ref(op.ptr)} = "
                           f"{self._ref(op.value)};\n")
            return
        if isinstance(op, Slot):
            assert isinstance(op.type, PtrType)
            pointee = op.type.pointee
            if isinstance(pointee, DefiniteArrayType):
                self.out.write(
                    f"    {c_type(pointee.elem_type)} "
                    f"{self._name(op)}_buf[{pointee.length}];\n"
                    f"    {c_type(op.type)} {self._name(op)} = "
                    f"{self._name(op)}_buf;\n")
            else:
                self.out.write(
                    f"    {c_type(pointee)} {self._name(op)}_cell;\n"
                    f"    {c_type(op.type)} {self._name(op)} = "
                    f"&{self._name(op)}_cell;\n")
            return
        if isinstance(op, Alloc):
            ptr_t = op.type.elements[1]
            assert isinstance(ptr_t, PtrType)
            pointee = ptr_t.pointee
            if isinstance(pointee, IndefiniteArrayType):
                elem = c_type(pointee.elem_type)
                self.out.write(
                    f"    {elem}* {self._name(op)} = ({elem}*)calloc("
                    f"{self._ref(op.extra)}, sizeof({elem}));\n")
            else:
                elem = c_type(pointee)
                self.out.write(
                    f"    {elem}* {self._name(op)} = ({elem}*)calloc(1, "
                    f"sizeof({elem}));\n")
            return
        if isinstance(op, Extract):
            agg = _peel(op.agg)
            if isinstance(agg, (Load, Alloc, Enter)):
                if _is_mem(op.type):
                    return
                self._names[op] = self._name(agg)
                return
            if _is_mem(op.type):
                return
            self._assign(op, f"{self._ref(agg)}.w[{self._ref(op.index)}]")
            return
        if isinstance(op, (TupleVal, ArrayVal, StructVal)):
            if any(isinstance(t, FnType) for t in op.type.elements):
                return
            parts = ", ".join(self._ref(e) for e in op.ops)
            self._assign(op, f"(word_block){{ .w = {{ {parts} }} }}")
            return
        if isinstance(op, Insert):
            self._assign(op, self._ref(op.agg))
            self.out.write(f"    {self._name(op)}.w[{self._ref(op.index)}] = "
                           f"{self._ref(op.value)};\n")
            return
        if isinstance(op, (Enter, EvalOp, Literal, Bottom, Global)):
            return
        raise CEmitError(f"cannot emit {op!r}")

    # ------------------------------------------------------------------

    def _emit_terminator(self, fn: Continuation, ret: Param,
                         block: Continuation, schedule: Schedule) -> None:
        callee = _peel(block.callee)
        args = block.args
        w = self.out
        if isinstance(callee, Continuation):
            if callee.intrinsic == Intrinsic.BRANCH:
                then_stmt = self._control_stmt(args[2], ret)
                else_stmt = self._control_stmt(args[3], ret)
                w.write(f"    if ({self._ref(args[1])}) {{ {then_stmt} }} "
                        f"else {{ {else_stmt} }}\n")
                return
            if callee.intrinsic in (Intrinsic.PRINT_I64, Intrinsic.PRINT_F64,
                                    Intrinsic.PRINT_CHAR):
                self._emit_print(callee.intrinsic, args[1])
                w.write(f"    goto {self._goto_target(args[2])};\n")
                return
            if callee in scope_of(fn) and callee is not fn:
                self._emit_jump_to_block(block, callee)
                return
            # a call (possibly recursive)
            self._emit_call(fn, ret, block, callee)
            return
        if isinstance(callee, Param) and callee is ret:
            values = [self._ref(a) for a in args if not _is_mem(a.type)]
            w.write(f"    return {values[0] if values else ''};\n")
            return
        raise CEmitError(f"cannot emit terminator of {block.unique_name()}")

    def _goto_target(self, target: Def) -> str:
        target = _peel(target)
        assert isinstance(target, Continuation)
        return self._label(target)

    def _control_stmt(self, target: Def, ret: Param) -> str:
        """goto, or a return when eta reduction targeted the ret param."""
        target = _peel(target)
        if isinstance(target, Param) and target is ret:
            return "return;"
        return f"goto {self._goto_target(target)};"

    def _emit_jump_to_block(self, block: Continuation,
                            target: Continuation) -> None:
        # Two-phase phi assignment: read all sources into temporaries
        # first, so a swap between block parameters stays correct.
        pending = []
        for param, arg in zip(target.params, block.args):
            if _is_mem(param.type):
                continue
            tmp = f"phi_tmp_{self._counter}"
            self._counter += 1
            self.out.write(f"    {c_type(param.type)} {tmp} = "
                           f"{self._ref(arg)};\n")
            pending.append((param, tmp))
        for param, tmp in pending:
            self.out.write(f"    {self._name(param)} = {tmp};\n")
        self.out.write(f"    goto {self._label(target)};\n")

    def _emit_call(self, fn: Continuation, ret: Param, block: Continuation,
                   callee: Continuation) -> None:
        callee_ret = None
        for p in reversed(callee.params):
            if isinstance(p.type, FnType):
                callee_ret = p
                break
        assert callee_ret is not None
        value_args = []
        ret_target = None
        for param, arg in zip(callee.params, block.args):
            if _is_mem(param.type):
                continue
            if param is callee_ret:
                ret_target = _peel(arg)
                continue
            value_args.append(self._ref(arg))
        call = f"{self._fn_name(callee)}({', '.join(value_args)})"
        if isinstance(ret_target, Param) and ret_target is ret:
            self.out.write(f"    return {call};\n")
            return
        assert isinstance(ret_target, Continuation)
        value_params = [p for p in ret_target.params if not _is_mem(p.type)]
        if value_params:
            self.out.write(f"    {self._name(value_params[0])} = {call};\n")
        else:
            self.out.write(f"    {call};\n")
        self.out.write(f"    goto {self._label(ret_target)};\n")


def emit_c(world: World) -> str:
    """Render every top-level function of a CFF world as C source."""
    return CEmitter(world).emit()

"""Backends: the reference graph interpreter, the bytecode VM, and the
C-like emitter.  The VM is the shared "machine" both the Thorin pipeline
and the SSA baseline lower to, making run-time comparisons apples to
apples."""

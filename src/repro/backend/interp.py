"""Reference interpreter for Thorin graphs.

Executes any well-formed world directly on the graph — no scheduling,
no control-flow form required, higher-order values and closures
included.  It is deliberately simple and is the semantic oracle of the
test suite: every transformation must preserve behaviour under this
interpreter, and the bytecode VM must agree with it.

Execution model (CPS): a machine state is a continuation plus an
environment binding the parameters currently in dynamic scope.  A step
evaluates the body's callee and arguments under the environment and
jumps.  First-class continuations evaluate to closures capturing the
environment.  Scalar arithmetic delegates to :mod:`repro.core.fold`, so
the interpreter and the constant folder cannot disagree.

Memory: a store of *cells*; a pointer is a cell address plus an access
path (``lea`` extends the path), so aggregates need no byte layout.
``mem`` tokens are just ordering artifacts — the store itself is global
and updated in place when a ``store``/``alloc`` primop is *evaluated*
(each at most once per activation thanks to per-activation memoization).
"""

from __future__ import annotations

from ..core import fold
from ..core.defs import Continuation, Def, Intrinsic, Param
from ..core.limits import ResourceLimitError
from ..core.primops import (
    Alloc,
    ArithOp,
    ArrayVal,
    Bitcast,
    Bottom,
    Cast,
    Cmp,
    Enter,
    EvalOp,
    Extract,
    Global,
    Insert,
    Lea,
    Literal,
    Load,
    PrimOp,
    Select,
    Slot,
    Store,
    StructVal,
    TupleVal,
)
from ..core.types import (
    DefiniteArrayType,
    FnType,
    PrimType,
    PtrType,
    StructType,
    TupleType,
    Type,
)
from ..core.world import World


class InterpError(Exception):
    """Raised on traps (division by zero, branch on undef, bad pointer)."""


class StepLimitExceeded(InterpError, ResourceLimitError):
    """The interpreter's ``max_steps`` budget ran out.

    Still an :class:`InterpError` (existing handlers keep working) and a
    :class:`~repro.core.limits.ResourceLimitError` (oracles normalize
    the whole family to a trap).
    """

    def __init__(self, limit: int):
        ResourceLimitError.__init__(self, "steps", limit, "interp")


class Undef:
    """The runtime image of ``bottom``: using it for control traps."""

    _instance: "Undef | None" = None

    def __new__(cls) -> "Undef":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "<undef>"


UNDEF = Undef()


class MemToken:
    """A *dynamic instance* of the ``mem`` state.

    Every effectful evaluation produces a fresh token.  Tokens have
    identity only; pairing a primop with the identity of its input token
    pins down the dynamic instance of an effect, which is how the
    interpreter guarantees each effect executes exactly once even when a
    later block re-traverses an older part of the mem chain (blocks may
    reference the chain directly instead of receiving it as a
    parameter — sealed-block SSA construction produces exactly that).
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<mem#{id(self):x}>"


class Closure:
    """A continuation paired with its captured environment."""

    __slots__ = ("cont", "env")

    def __init__(self, cont: Continuation, env: dict[Param, object]):
        self.cont = cont
        self.env = env

    def __repr__(self) -> str:  # pragma: no cover
        return f"<closure {self.cont.unique_name()}>"


class Pointer:
    """A cell address plus an access path into the cell's aggregate."""

    __slots__ = ("addr", "path")

    def __init__(self, addr: int, path: tuple[int, ...] = ()):
        self.addr = addr
        self.path = path

    def extended(self, index: int) -> "Pointer":
        return Pointer(self.addr, self.path + (index,))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Pointer) and other.addr == self.addr
                and other.path == self.path)

    def __hash__(self) -> int:
        return hash((self.addr, self.path))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ptr {self.addr}{list(self.path)}>"


class FrameValue:
    """Runtime image of a ``frame``; slots allocate cells lazily per activation."""

    __slots__ = ("slots",)

    def __init__(self) -> None:
        self.slots: dict[int, int] = {}  # slot_id -> cell address


class _ReturnSentinel:
    """The driver's final continuation: jumping to it ends execution."""

    def __init__(self) -> None:
        self.values: tuple | None = None


def default_value(t: Type) -> object:
    """The zero-initialized value of a type (for fresh cells)."""
    if isinstance(t, PrimType):
        if t.is_bool:
            return False
        if t.is_float:
            return 0.0
        return 0
    if isinstance(t, TupleType):
        return tuple(default_value(e) for e in t.elem_types)
    if isinstance(t, StructType):
        return tuple(default_value(e) for e in t.field_types)
    if isinstance(t, DefiniteArrayType):
        return [default_value(t.elem_type) for _ in range(t.length)]
    return UNDEF


class Interpreter:
    """Evaluate external functions of a world on the graph directly."""

    def __init__(self, world: World, *, max_steps: int = 50_000_000):
        self.world = world
        self.max_steps = max_steps
        self.store: dict[int, object] = {}
        self._next_addr = 1
        self._globals: dict[int, Pointer] = {}
        # (primop gid, input mem/frame token) -> result of the one and
        # only execution of that dynamic effect instance.  Keys hold the
        # token object itself so its identity stays unique while the
        # entry is alive.
        self._effects: dict[tuple[int, object], object] = {}
        self.output: list[str] = []
        self.steps = 0          # jumps taken
        self.primop_evals = 0   # primop evaluations performed

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def call(self, name: str, *args):
        """Call external *name* with Python arguments; returns its result.

        The function must follow the standard convention
        ``fn(mem, T..., fn(mem, R...))``; results are returned as Python
        values (one value, a tuple, or None for unit results).
        """
        cont = self.world.find_external(name)
        fn = cont.fn_type
        ret_type = fn.ret_type()
        assert ret_type is not None, f"{name} has no return continuation"
        value_params = [t for t in fn.param_types
                        if not _is_mem(t) and t is not ret_type]
        # The return continuation is the *last* fn-typed param by convention.
        ret_index = len(fn.param_types) - 1
        assert fn.param_types[ret_index] is ret_type
        assert len(args) == len(value_params), (
            f"{name} expects {len(value_params)} arguments, got {len(args)}"
        )
        call_args: list[object] = []
        arg_iter = iter(args)
        sentinel = _ReturnSentinel()
        init_mem = MemToken()
        for index, t in enumerate(fn.param_types):
            if _is_mem(t):
                call_args.append(init_mem)
            elif index == ret_index:
                call_args.append(sentinel)
            else:
                call_args.append(self._from_python(next(arg_iter), t))
        self._trampoline(Closure(cont, {}), call_args, sentinel)
        assert sentinel.values is not None
        results = [self._to_python(v, t) for v, t in
                   zip(sentinel.values, ret_type.param_types) if not _is_mem(t)]
        if not results:
            return None
        if len(results) == 1:
            return results[0]
        return tuple(results)

    def output_text(self) -> str:
        return "".join(self.output)

    # ------------------------------------------------------------------
    # the CPS trampoline
    # ------------------------------------------------------------------

    def _trampoline(self, target: object, args: list[object],
                    sentinel: _ReturnSentinel) -> None:
        while True:
            self.steps += 1
            if self.steps > self.max_steps:
                raise StepLimitExceeded(self.max_steps)
            if isinstance(target, _ReturnSentinel):
                target.values = tuple(args)
                if target is sentinel:
                    return
                raise InterpError("jump to a foreign return sentinel")
            if not isinstance(target, Closure):
                raise InterpError(f"jump to non-continuation value {target!r}")
            cont = target.cont
            if cont.intrinsic is not None:
                target, args = self._run_intrinsic(cont, args)
                continue
            if not cont.has_body():
                raise InterpError(
                    f"jump to bodiless continuation {cont.unique_name()}"
                )
            env = dict(target.env)
            assert len(args) == cont.num_params, (
                f"arity mismatch calling {cont.unique_name()}"
            )
            for param, value in zip(cont.params, args):
                env[param] = value
            cache: dict[int, object] = {}
            callee = self._eval(cont.callee, env, cache)
            args = [self._eval(a, env, cache) for a in cont.args]
            target = callee

    def _run_intrinsic(self, cont: Continuation, args: list[object]):
        kind = cont.intrinsic
        if kind == Intrinsic.BRANCH:
            mem, cond, then_t, else_t = args
            if isinstance(cond, Undef):
                raise InterpError("branch on undef")
            return (then_t if cond else else_t), [mem]
        if kind == Intrinsic.MATCH:
            mem, value = args[0], args[1]
            default = args[2]
            for arm in args[3:]:
                lit, tgt = arm
                if lit == value:
                    return tgt, [mem]
            return default, [mem]
        if kind == Intrinsic.PRINT_I64:
            mem, value, ret = args
            self.output.append(str(fold.to_signed(value, 64)))
            return ret, [mem]
        if kind == Intrinsic.PRINT_F64:
            mem, value, ret = args
            self.output.append(repr(value))
            return ret, [mem]
        if kind == Intrinsic.PRINT_CHAR:
            mem, value, ret = args
            self.output.append(chr(value))
            return ret, [mem]
        if kind == Intrinsic.PE_INFO:
            mem, _value, ret = args
            return ret, [mem]
        raise InterpError(f"unknown intrinsic {kind}")

    # ------------------------------------------------------------------
    # primop evaluation
    # ------------------------------------------------------------------

    def _eval(self, root: Def, env: dict[Param, object],
              cache: dict[int, object]) -> object:
        """Iterative post-order evaluation with per-activation memoization."""
        result = self._try_leaf(root, env, cache)
        if result is not _PENDING:
            return result
        stack: list[Def] = [root]
        while stack:
            d = stack[-1]
            if d.gid in cache:
                stack.pop()
                continue
            missing = [op for op in d.ops
                       if self._try_leaf(op, env, cache) is _PENDING
                       and op.gid not in cache]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            assert isinstance(d, PrimOp)
            operands = [self._operand_value(op, env, cache) for op in d.ops]
            cache[d.gid] = self._apply(d, operands)
            self.primop_evals += 1
        return cache[root.gid]

    def _try_leaf(self, d: Def, env: dict[Param, object],
                  cache: dict[int, object]):
        """Evaluate leaves (params, literals, continuations) immediately."""
        if isinstance(d, Param):
            try:
                return env[d]
            except KeyError:
                raise InterpError(
                    f"unbound parameter {d.unique_name()} (scope violation)"
                ) from None
        if isinstance(d, Literal):
            return d.value
        if isinstance(d, Bottom):
            return UNDEF
        if isinstance(d, Continuation):
            return Closure(d, dict(env))
        return _PENDING

    def _operand_value(self, op: Def, env: dict[Param, object],
                       cache: dict[int, object]) -> object:
        leaf = self._try_leaf(op, env, cache)
        if leaf is not _PENDING:
            return leaf
        return cache[op.gid]

    def _apply(self, d: PrimOp, v: list[object]) -> object:
        if isinstance(d, ArithOp):
            prim = d.type
            assert isinstance(prim, PrimType)
            if isinstance(v[0], Undef) or isinstance(v[1], Undef):
                return UNDEF
            try:
                return fold.arith(d.kind, prim, v[0], v[1])
            except fold.EvalError as exc:
                raise InterpError(str(exc)) from None
        if isinstance(d, Cmp):
            prim = d.lhs.type
            assert isinstance(prim, PrimType)
            if isinstance(v[0], Undef) or isinstance(v[1], Undef):
                return UNDEF
            return fold.compare(d.rel, prim, v[0], v[1])
        from ..core.primops import MathOp

        if isinstance(d, MathOp):
            prim = d.type
            assert isinstance(prim, PrimType)
            if isinstance(v[0], Undef):
                return UNDEF
            return fold.math_op(d.kind, prim, v[0])
        if isinstance(d, Cast):
            if isinstance(v[0], Undef):
                return UNDEF
            to, frm = d.type, d.value.type
            assert isinstance(to, PrimType) and isinstance(frm, PrimType)
            return fold.cast(to, frm, v[0])
        if isinstance(d, Bitcast):
            if isinstance(v[0], Undef):
                return UNDEF
            to, frm = d.type, d.value.type
            assert isinstance(to, PrimType) and isinstance(frm, PrimType)
            return fold.bitcast(to, frm, v[0])
        if isinstance(d, Select):
            if isinstance(v[0], Undef):
                return UNDEF
            return v[1] if v[0] else v[2]
        if isinstance(d, (TupleVal, StructVal)):
            return tuple(v)
        if isinstance(d, ArrayVal):
            return list(v)
        if isinstance(d, Extract):
            return self._extract(v[0], v[1])
        if isinstance(d, Insert):
            return self._insert(v[0], v[1], v[2])
        if isinstance(d, EvalOp):
            return v[0]
        if isinstance(d, Enter):
            key = (d.gid, v[0])
            hit = self._effects.get(key)
            if hit is None:
                hit = (MemToken(), FrameValue())
                self._effects[key] = hit
            return hit
        if isinstance(d, Slot):
            frame = v[0]
            assert isinstance(frame, FrameValue)
            addr = frame.slots.get(d.slot_id)
            if addr is None:
                ptr_t = d.type
                assert isinstance(ptr_t, PtrType)
                addr = self._alloc_cell(default_value(ptr_t.pointee))
                frame.slots[d.slot_id] = addr
            return Pointer(addr)
        if isinstance(d, Alloc):
            key = (d.gid, v[0], v[1] if not isinstance(v[1], Undef) else None)
            hit = self._effects.get(key)
            if hit is None:
                pair_t = d.type
                assert isinstance(pair_t, TupleType)
                ptr_t = pair_t.elem_types[1]
                assert isinstance(ptr_t, PtrType)
                pointee = ptr_t.pointee
                from ..core.types import IndefiniteArrayType

                if isinstance(pointee, IndefiniteArrayType):
                    count = v[1]
                    if isinstance(count, Undef):
                        raise InterpError("alloc with undef size")
                    cell: object = [default_value(pointee.elem_type)
                                    for _ in range(count)]
                else:
                    cell = default_value(pointee)
                hit = (MemToken(), Pointer(self._alloc_cell(cell)))
                self._effects[key] = hit
            return hit
        if isinstance(d, Load):
            # The dynamic instance of a load is (node, state, pointer):
            # the same load node may execute many times with an
            # unchanged token when only the pointer varies (a read loop
            # over untouched memory).
            key = (d.gid, v[0], v[1])
            hit = self._effects.get(key)
            if hit is None:
                # Loads pass the token through: they do not advance state.
                hit = (v[0], self._read(v[1]))
                self._effects[key] = hit
            return hit
        if isinstance(d, Store):
            key = (d.gid, v[0], v[1])
            hit = self._effects.get(key)
            if hit is None:
                self._write(v[1], v[2])
                hit = MemToken()
                self._effects[key] = hit
            return hit
        if isinstance(d, Lea):
            ptr, index = v[0], v[1]
            if isinstance(ptr, Undef) or isinstance(index, Undef):
                raise InterpError("lea on undef")
            assert isinstance(ptr, Pointer)
            return ptr.extended(index)
        if isinstance(d, Global):
            addr_ptr = self._globals.get(d.global_id if d.is_mutable else -d.gid)
            if addr_ptr is None:
                init = self._const_value(d.init)
                addr_ptr = Pointer(self._alloc_cell(init))
                self._globals[d.global_id if d.is_mutable else -d.gid] = addr_ptr
            return addr_ptr
        raise InterpError(f"cannot evaluate primop {d!r}")

    # ------------------------------------------------------------------
    # store helpers
    # ------------------------------------------------------------------

    def _alloc_cell(self, value: object) -> int:
        addr = self._next_addr
        self._next_addr += 1
        self.store[addr] = value
        return addr

    def _read(self, ptr: object) -> object:
        if not isinstance(ptr, Pointer):
            raise InterpError(f"load through non-pointer {ptr!r}")
        try:
            cell = self.store[ptr.addr]
        except KeyError:
            raise InterpError("load through dangling pointer") from None
        for index in ptr.path:
            cell = self._index_cell(cell, index)
        return cell

    def _write(self, ptr: object, value: object) -> None:
        if not isinstance(ptr, Pointer):
            raise InterpError(f"store through non-pointer {ptr!r}")
        if ptr.addr not in self.store:
            raise InterpError("store through dangling pointer")
        if not ptr.path:
            self.store[ptr.addr] = value
            return
        cell = self.store[ptr.addr]
        cell = self._written_cell(cell, ptr.path, value)
        self.store[ptr.addr] = cell

    def _written_cell(self, cell: object, path: tuple[int, ...],
                      value: object) -> object:
        index = path[0]
        if isinstance(cell, list):
            self._check_bounds(cell, index)
            if len(path) == 1:
                cell[index] = value
            else:
                cell[index] = self._written_cell(cell[index], path[1:], value)
            return cell
        if isinstance(cell, tuple):
            self._check_bounds(cell, index)
            items = list(cell)
            if len(path) == 1:
                items[index] = value
            else:
                items[index] = self._written_cell(items[index], path[1:], value)
            return tuple(items)
        raise InterpError(f"store path into non-aggregate {cell!r}")

    def _index_cell(self, cell: object, index: int) -> object:
        if not isinstance(cell, (list, tuple)):
            raise InterpError(f"indexing into non-aggregate {cell!r}")
        self._check_bounds(cell, index)
        return cell[index]

    @staticmethod
    def _check_bounds(cell, index) -> None:
        if isinstance(index, Undef):
            raise InterpError("aggregate index is undef")
        if not 0 <= index < len(cell):
            raise InterpError(
                f"out-of-bounds access: index {index} into length {len(cell)}"
            )

    def _extract(self, agg: object, index: object) -> object:
        if isinstance(agg, Undef):
            return UNDEF
        return self._index_cell(agg, index)

    def _insert(self, agg: object, index: object, value: object) -> object:
        if isinstance(agg, Undef):
            return UNDEF
        if isinstance(agg, list):
            self._check_bounds(agg, index)
            copy = list(agg)
            copy[index] = value
            return copy
        if isinstance(agg, tuple):
            self._check_bounds(agg, index)
            items = list(agg)
            items[index] = value
            return tuple(items)
        raise InterpError(f"insert into non-aggregate {agg!r}")

    def _const_value(self, d: Def) -> object:
        """Evaluate a parameter-free def (global initializers)."""
        return self._eval(d, {}, {})

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------

    def _from_python(self, value, t: Type) -> object:
        if isinstance(t, PrimType):
            return fold.canonicalize(t.kind, value)
        if isinstance(t, TupleType):
            return tuple(self._from_python(v, e)
                         for v, e in zip(value, t.elem_types))
        if isinstance(t, DefiniteArrayType):
            return [self._from_python(v, t.elem_type) for v in value]
        raise InterpError(f"cannot pass a Python value as {t}")

    def _to_python(self, value, t: Type):
        if isinstance(value, Undef):
            return None
        if isinstance(t, PrimType):
            return fold.public_value(t.kind, value)
        if isinstance(t, TupleType):
            return tuple(self._to_python(v, e)
                         for v, e in zip(value, t.elem_types))
        if isinstance(t, DefiniteArrayType):
            return [self._to_python(v, t.elem_type) for v in value]
        return value


class _Pending:
    def __repr__(self) -> str:  # pragma: no cover
        return "<pending>"


_PENDING = _Pending()


def _is_mem(t: Type) -> bool:
    from ..core.types import MemType

    return isinstance(t, MemType)

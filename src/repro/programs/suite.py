"""Program definitions for the evaluation suite."""

from __future__ import annotations


class Program:
    """One suite program: source, entry point, test & bench configs."""

    def __init__(self, name: str, source: str, entry: str,
                 test_args: tuple, test_expect, bench_args: tuple,
                 tags: tuple[str, ...] = ()):
        self.name = name
        self.source = source
        self.entry = entry
        self.test_args = test_args
        self.test_expect = test_expect
        self.bench_args = bench_args
        self.tags = tags

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Program {self.name}>"


# ---------------------------------------------------------------------------
# imperative kernels
# ---------------------------------------------------------------------------

FANNKUCH = Program(
    "fannkuch",
    """
// Fannkuch-redux kernel: max pancake flips over all permutations of n.
fn fannkuch(n: i64) -> i64 {
    let perm = new_buf_i64(16);
    let count = new_buf_i64(16);
    let mut max_flips = 0;
    for i in 0..n { perm[i] = i; }
    let mut r = n;
    let mut done = false;
    while !done {
        // count flips of the current permutation
        let work = new_buf_i64(16);
        for i in 0..n { work[i] = perm[i]; }
        let mut flips = 0;
        let mut k = work[0];
        while k != 0 {
            let mut lo = 0;
            let mut hi = k;
            while lo < hi {
                let t = work[lo];
                work[lo] = work[hi];
                work[hi] = t;
                lo += 1;
                hi -= 1;
            }
            flips += 1;
            k = work[0];
        }
        if flips > max_flips { max_flips = flips; }
        // next permutation (counting QR algorithm)
        while r != 1 {
            count[r - 1] = r;
            r -= 1;
        }
        let mut rotating = true;
        while rotating {
            if r == n { done = true; rotating = false; }
            else {
                let first = perm[0];
                for i in 0..r { perm[i] = perm[i + 1]; }
                perm[r] = first;
                count[r] -= 1;
                if count[r] > 0 { rotating = false; }
                else { r += 1; }
            }
        }
    }
    max_flips
}
fn main(n: i64) -> i64 { fannkuch(n) }
""",
    "main", (6,), 10, (8,), ("imperative", "arrays"),
)


NBODY = Program(
    "nbody",
    """
// Jovian planets n-body simulation (flat f64 buffers, 5 bodies).
fn advance(pos: &[f64], vel: &[f64], mass: &[f64], n: i64, dt: f64) -> () {
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = pos[i * 3] - pos[j * 3];
            let dy = pos[i * 3 + 1] - pos[j * 3 + 1];
            let dz = pos[i * 3 + 2] - pos[j * 3 + 2];
            let d2 = dx * dx + dy * dy + dz * dz;
            let mag = dt / (d2 * sqrt(d2));
            vel[i * 3] -= dx * mass[j] * mag;
            vel[i * 3 + 1] -= dy * mass[j] * mag;
            vel[i * 3 + 2] -= dz * mass[j] * mag;
            vel[j * 3] += dx * mass[i] * mag;
            vel[j * 3 + 1] += dy * mass[i] * mag;
            vel[j * 3 + 2] += dz * mass[i] * mag;
        }
    }
    for i in 0..n {
        pos[i * 3] += dt * vel[i * 3];
        pos[i * 3 + 1] += dt * vel[i * 3 + 1];
        pos[i * 3 + 2] += dt * vel[i * 3 + 2];
    }
}

fn energy(pos: &[f64], vel: &[f64], mass: &[f64], n: i64) -> f64 {
    let mut e = 0.0;
    for i in 0..n {
        let vx = vel[i * 3];
        let vy = vel[i * 3 + 1];
        let vz = vel[i * 3 + 2];
        e += 0.5 * mass[i] * (vx * vx + vy * vy + vz * vz);
        for j in (i + 1)..n {
            let dx = pos[i * 3] - pos[j * 3];
            let dy = pos[i * 3 + 1] - pos[j * 3 + 1];
            let dz = pos[i * 3 + 2] - pos[j * 3 + 2];
            e -= mass[i] * mass[j] / sqrt(dx * dx + dy * dy + dz * dz);
        }
    }
    e
}

fn main(steps: i64) -> f64 {
    let n = 5;
    let pi = 3.141592653589793;
    let solar_mass = 4.0 * pi * pi;
    let days = 365.24;
    let pos = new_buf_f64(15);
    let vel = new_buf_f64(15);
    let mass = new_buf_f64(5);
    // sun
    pos[0] = 0.0; pos[1] = 0.0; pos[2] = 0.0;
    vel[0] = 0.0; vel[1] = 0.0; vel[2] = 0.0;
    mass[0] = solar_mass;
    // jupiter
    pos[3] = 4.84143144246472090; pos[4] = -1.16032004402742839;
    pos[5] = -0.103622044471123109;
    vel[3] = 0.00166007664274403694 * days;
    vel[4] = 0.00769901118419740425 * days;
    vel[5] = -0.0000690460016972063023 * days;
    mass[1] = 0.000954791938424326609 * solar_mass;
    // saturn
    pos[6] = 8.34336671824457987; pos[7] = 4.12479856412430479;
    pos[8] = -0.403523417114321381;
    vel[6] = -0.00276742510726862411 * days;
    vel[7] = 0.00499852801234917238 * days;
    vel[8] = 0.0000230417297573763929 * days;
    mass[2] = 0.000285885980666130812 * solar_mass;
    // uranus
    pos[9] = 12.8943695621391310; pos[10] = -15.1111514016986312;
    pos[11] = -0.223307578892655734;
    vel[9] = 0.00296460137564761618 * days;
    vel[10] = 0.00237847173959480950 * days;
    vel[11] = -0.0000296589568540237556 * days;
    mass[3] = 0.0000436624404335156298 * solar_mass;
    // neptune
    pos[12] = 15.3796971148509165; pos[13] = -25.9193146099879641;
    pos[14] = 0.179258772950371181;
    vel[12] = 0.00268067772490389322 * days;
    vel[13] = 0.00162824170038242295 * days;
    vel[14] = -0.0000951592254519715870 * days;
    mass[4] = 0.0000517138990464035365 * solar_mass;
    // offset sun momentum
    let mut px = 0.0; let mut py = 0.0; let mut pz = 0.0;
    for i in 0..n {
        px += vel[i * 3] * mass[i];
        py += vel[i * 3 + 1] * mass[i];
        pz += vel[i * 3 + 2] * mass[i];
    }
    vel[0] = -px / solar_mass;
    vel[1] = -py / solar_mass;
    vel[2] = -pz / solar_mass;
    for s in 0..steps { advance(pos, vel, mass, n, 0.01); }
    energy(pos, vel, mass, n)
}
""",
    "main", (10,), None, (300,), ("imperative", "float"),
)


SPECTRAL_NORM = Program(
    "spectral_norm",
    """
// Spectral norm of the infinite matrix A[i,j] = 1/((i+j)(i+j+1)/2+i+1).
fn a(i: i64, j: i64) -> f64 {
    1.0 / (((i + j) * (i + j + 1) / 2 + i + 1) as f64)
}

fn mult_av(v: &[f64], out: &[f64], n: i64) -> () {
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..n { s += a(i, j) * v[j]; }
        out[i] = s;
    }
}

fn mult_atv(v: &[f64], out: &[f64], n: i64) -> () {
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..n { s += a(j, i) * v[j]; }
        out[i] = s;
    }
}

fn main(n: i64) -> f64 {
    let u = new_buf_f64(n);
    let v = new_buf_f64(n);
    let tmp = new_buf_f64(n);
    for i in 0..n { u[i] = 1.0; }
    for it in 0..10 {
        mult_av(u, tmp, n);
        mult_atv(tmp, v, n);
        mult_av(v, tmp, n);
        mult_atv(tmp, u, n);
    }
    let mut vbv = 0.0;
    let mut vv = 0.0;
    for i in 0..n {
        vbv += u[i] * v[i];
        vv += v[i] * v[i];
    }
    sqrt(vbv / vv)
}
""",
    "main", (16,), None, (40,), ("imperative", "float"),
)


MANDELBROT = Program(
    "mandelbrot",
    """
// Count of points inside the Mandelbrot set on a size x size grid.
fn main(size: i64) -> i64 {
    let mut inside = 0;
    for y in 0..size {
        for x in 0..size {
            let cr = 2.0 * (x as f64) / (size as f64) - 1.5;
            let ci = 2.0 * (y as f64) / (size as f64) - 1.0;
            let mut zr = 0.0;
            let mut zi = 0.0;
            let mut i = 0;
            let mut bailed = false;
            while i < 50 && !bailed {
                let nzr = zr * zr - zi * zi + cr;
                let nzi = 2.0 * zr * zi + ci;
                zr = nzr;
                zi = nzi;
                if zr * zr + zi * zi > 4.0 { bailed = true; }
                i += 1;
            }
            if !bailed { inside += 1; }
        }
    }
    inside
}
""",
    "main", (16,), 104, (48,), ("imperative", "float"),
)


NQUEENS = Program(
    "nqueens",
    """
// Count n-queens solutions with bitmask backtracking.
fn solve(cols: i64, diag1: i64, diag2: i64, all: i64) -> i64 {
    if cols == all { return 1; }
    let mut count = 0;
    let mut free = all & !(cols | diag1 | diag2);
    while free != 0 {
        let bit = free & (0 - free);
        free -= bit;
        count += solve(cols | bit, (diag1 | bit) << 1, (diag2 | bit) >> 1, all);
    }
    count
}
fn main(n: i64) -> i64 { solve(0, 0, 0, (1 << n) - 1) }
""",
    "main", (6,), 4, (8,), ("imperative", "recursion", "bitops"),
)


ACKERMANN = Program(
    "ackermann",
    """
fn ack(m: i64, n: i64) -> i64 {
    if m == 0 { n + 1 }
    else if n == 0 { ack(m - 1, 1) }
    else { ack(m - 1, ack(m, n - 1)) }
}
fn main(m: i64, n: i64) -> i64 { ack(m, n) }
""",
    "main", (2, 3), 9, (2, 6), ("imperative", "recursion"),
)


SIEVE = Program(
    "sieve",
    """
// Count primes below n with the sieve of Eratosthenes.
fn main(n: i64) -> i64 {
    let flags = new_buf_i64(n);
    for i in 2..n { flags[i] = 1; }
    let mut i = 2;
    while i * i < n {
        if flags[i] == 1 {
            let mut j = i * i;
            while j < n {
                flags[j] = 0;
                j += i;
            }
        }
        i += 1;
    }
    let mut count = 0;
    for k in 2..n { count += flags[k]; }
    count
}
""",
    "main", (100,), 25, (2000,), ("imperative", "arrays"),
)


QUICKSORT = Program(
    "quicksort",
    """
// In-place quicksort of LCG pseudo-random data; returns a checksum.
fn sort(buf: &[i64], lo: i64, hi: i64) -> () {
    if lo >= hi { return; }
    let pivot = buf[(lo + hi) / 2];
    let mut i = lo;
    let mut j = hi;
    while i <= j {
        while buf[i] < pivot { i += 1; }
        while buf[j] > pivot { j -= 1; }
        if i <= j {
            let t = buf[i];
            buf[i] = buf[j];
            buf[j] = t;
            i += 1;
            j -= 1;
        }
    }
    sort(buf, lo, j);
    sort(buf, i, hi);
}

fn main(n: i64) -> i64 {
    let buf = new_buf_i64(n);
    let mut seed = 42;
    for i in 0..n {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        buf[i] = seed % 10000;
    }
    sort(buf, 0, n - 1);
    // checksum: weighted sum detects wrong order
    let mut check = 0;
    for i in 0..n { check += buf[i] * (i % 7 + 1); }
    let mut sorted = 1;
    for i in 1..n { if buf[i - 1] > buf[i] { sorted = 0; } }
    check * sorted
}
""",
    "main", (50,), None, (600,), ("imperative", "recursion", "arrays"),
)


MATMUL = Program(
    "matmul",
    """
// Dense i64 matrix multiplication, returns a checksum.
fn main(n: i64) -> i64 {
    let a = new_buf_i64(n * n);
    let b = new_buf_i64(n * n);
    let c = new_buf_i64(n * n);
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = (i + j) % 17;
            b[i * n + j] = (i * 3 + j * 2) % 13;
        }
    }
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    let mut check = 0;
    for i in 0..n { check += c[i * n + (i * 7 % n)]; }
    check
}
""",
    "main", (8,), None, (24,), ("imperative", "arrays"),
)


# ---------------------------------------------------------------------------
# higher-order / partial-evaluation workloads
# ---------------------------------------------------------------------------

POW = Program(
    "pow",
    """
// The classic PE example: exponentiation specialized on the exponent.
fn pow(x: i64, n: i64) -> i64 {
    if n == 0 { 1 }
    else if n % 2 == 0 { let h = pow(x, n / 2); h * h }
    else { x * pow(x, n - 1) }
}
extern fn pow13(x: i64) -> i64 { @pow(x, 13) }
fn main(x: i64) -> i64 { pow13(x) }
""",
    "main", (3,), 1594323, (7,), ("higher-order", "pe"),
)


DOT_GENERIC = Program(
    "dot_generic",
    """
// A generic reduction-with-map combinator, instantiated for dot product.
fn reduce_map(n: i64, f: fn(i64) -> i64, init: i64,
              combine: fn(i64, i64) -> i64) -> i64 {
    let mut acc = init;
    for i in 0..n { acc = combine(acc, f(i)); }
    acc
}

fn main(n: i64) -> i64 {
    let a = new_buf_i64(n);
    let b = new_buf_i64(n);
    for i in 0..n {
        a[i] = i % 23;
        b[i] = (i * i) % 19;
    }
    reduce_map(n, |i: i64| a[i] * b[i], 0, |x: i64, y: i64| x + y)
}
""",
    "main", (64,), None, (4000,), ("higher-order",),
)


FILTER_IMAGE = Program(
    "filter_image",
    """
// 1D stencil with a weight function — the image-filter motif of the
// paper's DSL follow-ups.  The filter is generic over the kernel; the
// call instantiates it with a concrete 3-tap kernel lambda.
fn filter1d(src: &[f64], dst: &[f64], n: i64, radius: i64,
            weight: fn(i64) -> f64) -> () {
    for i in 0..n {
        let mut acc = 0.0;
        for k in (0 - radius)..(radius + 1) {
            let mut idx = i + k;
            if idx < 0 { idx = 0; }
            if idx >= n { idx = n - 1; }
            acc += src[idx] * weight(k);
        }
        dst[i] = acc;
    }
}

fn main(n: i64) -> f64 {
    let src = new_buf_f64(n);
    let dst = new_buf_f64(n);
    for i in 0..n { src[i] = ((i * 37 % 256) as f64) / 255.0; }
    let w = |k: i64| -> f64 {
        if k == 0 { 0.5 } else { 0.25 }
    };
    @filter1d(src, dst, n, 1, w);
    let mut s = 0.0;
    for i in 0..n { s += dst[i]; }
    s
}
""",
    "main", (64,), None, (4000,), ("higher-order", "pe", "float"),
)


SORT_HOF = Program(
    "sort_hof",
    """
// Insertion sort parameterized by an ordering — higher-order argument
// eliminated by specialization.
fn isort(buf: &[i64], n: i64, less: fn(i64, i64) -> bool) -> () {
    for i in 1..n {
        let x = buf[i];
        let mut j = i - 1;
        let mut moving = true;
        while moving {
            if j < 0 { moving = false; }
            else if less(x, buf[j]) {
                buf[j + 1] = buf[j];
                j -= 1;
            } else { moving = false; }
        }
        buf[j + 1] = x;
    }
}

fn main(n: i64) -> i64 {
    let buf = new_buf_i64(n);
    let mut seed = 7;
    for i in 0..n {
        seed = (seed * 48271) % 2147483647;
        buf[i] = seed % 1000;
    }
    isort(buf, n, |x: i64, y: i64| x > y);  // descending
    let mut check = 0;
    for i in 1..n { if buf[i - 1] < buf[i] { check += 1000000; } }
    for i in 0..n { check += buf[i] * (i % 5 + 1); }
    check
}
""",
    "main", (40,), None, (250,), ("higher-order", "arrays"),
)


COMPOSE = Program(
    "compose",
    """
// Deep composition of closures — stress for closure elimination.
fn apply_n(n: i64, f: fn(i64) -> i64, x: i64) -> i64 {
    let mut acc = x;
    for i in 0..n { acc = f(acc); }
    acc
}

fn main(n: i64) -> i64 {
    let a = 3;
    let b = 7;
    let g = |x: i64| (x * a + b) % 1000003;
    apply_n(n, g, 1)
}
""",
    "main", (100,), None, (30000,), ("higher-order",),
)


ALL_PROGRAMS: list[Program] = [
    FANNKUCH, NBODY, SPECTRAL_NORM, MANDELBROT, NQUEENS, ACKERMANN,
    SIEVE, QUICKSORT, MATMUL,
    POW, DOT_GENERIC, FILTER_IMAGE, SORT_HOF, COMPOSE,
]


def by_name(name: str) -> Program:
    for program in ALL_PROGRAMS:
        if program.name == name:
            return program
    raise KeyError(name)


def by_tag(tag: str) -> list[Program]:
    return [p for p in ALL_PROGRAMS if tag in p.tags]

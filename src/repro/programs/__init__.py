"""The benchmark program suite (Impala-lite sources).

Two families, mirroring the paper's evaluation mix:

* **imperative kernels** (shootout-style): show that the CPS graph IR
  compiles classical imperative code with no penalty — loops become
  continuations, phis become parameters, and the generated code matches
  the classical SSA pipeline;
* **higher-order / PE workloads**: show closure elimination and
  ``@``-driven specialization producing first-order residual programs.

Every program records its entry point, a default (small) argument set
with the expected result for correctness tests, and a benchmark-sized
argument set for the run-time experiments.
"""

from __future__ import annotations

from .suite import ALL_PROGRAMS, Program, by_name, by_tag

__all__ = ["ALL_PROGRAMS", "Program", "by_name", "by_tag"]

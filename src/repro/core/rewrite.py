"""Graph rewriting: replace defs by other defs, rebuilding users.

Primops are immutable and hash-consed, so "replacing" a def means
rebuilding every (transitive) user through the world's smart factories
and finally retargeting the mutable continuation bodies.  Folding
re-fires during the rebuild, exactly as in mangling.  Old nodes become
garbage and are collected by ``transform.cleanup``.
"""

from __future__ import annotations

from .defs import Continuation, Def
from .primops import PrimOp
from .world import World


def rewrite_uses(world: World, mapping: dict[Def, Def]) -> dict[Def, Def]:
    """Apply ``mapping`` to the graph.

    Every def reachable (via use edges) from a key is rebuilt with the
    mapping applied; continuations are updated in place.  Returns the
    full old→new memo (useful to chase what a def became).
    """
    if not mapping:
        return {}
    for old, new in mapping.items():
        assert old.type is new.type, (
            f"cannot replace {old.unique_name()}: {old.type} with "
            f"{new.unique_name()}: {new.type}"
        )
    memo: dict[Def, Def] = dict(mapping)

    # Collect transitive users; continuations found along the way will
    # have their bodies rebuilt.
    seen: set[Def] = set(mapping)
    queue: list[Def] = list(mapping)
    affected_conts: list[Continuation] = []
    while queue:
        d = queue.pop()
        for user, _ in d.uses:
            if user in seen:
                continue
            seen.add(user)
            queue.append(user)
            if isinstance(user, Continuation):
                affected_conts.append(user)

    def rw(d: Def) -> Def:
        hit = memo.get(d)
        if hit is not None:
            # A replacement value may itself be a transitive user of
            # another key (common for chained mem-thread rewrites, where
            # a load's token is replaced by an upstream def that a later
            # key's user list reaches).  Hand out its *rebuilt* form,
            # not the soon-to-be-garbage original.  Requires replacement
            # values never to use their own key (upstream-only mappings).
            if hit is not d and hit in seen and isinstance(hit, PrimOp):
                hit = rw(hit)
                memo[d] = hit
            return hit
        # Only transitive users of the mapping keys (the flooded set)
        # can change; everything else rewrites to itself without
        # walking its operand tree.
        if d in seen and isinstance(d, PrimOp):
            new_ops = tuple(rw(op) for op in d.ops)
            new = d if new_ops == d.ops else world.rebuild(d, new_ops)
            memo[d] = new
            return new
        memo[d] = d
        return d

    for cont in affected_conts:
        if cont.has_body():
            new_ops = tuple(rw(op) for op in cont.ops)
            if new_ops != cont.ops:
                cont._set_ops(new_ops)
    return memo


def replace_def(old: Def, new: Def) -> dict[Def, Def]:
    """Replace every use of *old* by *new* (convenience wrapper)."""
    return rewrite_uses(old.world, {old: new})

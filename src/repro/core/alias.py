"""Flow-insensitive alias analysis over the memory primops.

The paper threads *one* ``mem`` token through every effect, which keeps
the IR honest but serializes memory: a load can never forward from a
store unless they touch the very same token.  This module recovers the
structure the single thread hides.  Every pointer in the graph is
reduced to an **alias class** — a *root* (the allocation site that
created the cell family) plus an *access path* (the ``lea`` components
walked from it):

==============  =========================================================
root            identity
==============  =========================================================
``slot``        ``Slot.slot_id`` — stack cells are unique per slot
``alloc``       ``Alloc.alloc_id`` — heap cells are unique per allocation
``global``      ``Global.global_id`` for mutable globals
``iglobal``     ``Global.gid`` for immutable globals (structurally
                numbered; loads through them fold at construction)
*unknown*       anything else a pointer can flow out of — parameters,
                selects, pointers loaded back out of memory
==============  =========================================================

Two pointers **Must**-alias when they share a root and every access-path
component matches (equal literals, or the identical index def — which,
under hash-consing, makes the pointers the same node).  They **Not**-
alias when their roots are distinct, or the paths diverge at a pair of
unequal literal indices (disjoint subtrees of the same cell).  Anything
else — a dynamic index against a literal, a prefix path against a longer
one (aggregate vs. its component) — is **May**.

Escape analysis makes the lattice honest in the presence of the parts
of the program the walk cannot see.  A pointer *escapes* when any
derived pointer is used as something other than the address operand of
a ``load``/``store``/``lea`` — passed to a continuation (call or jump),
stored *as a value*, packed into an aggregate, returned.  A frame
escapes when it is used as anything but the operand of a ``slot``, and
takes all its slots with it.  Escaped roots (and unknown-rooted
pointers) answer **May** against everything except themselves: after a
pointer leaks, any load anywhere may observe it.

The analysis is flow-insensitive and whole-world; it never looks at the
mem chain itself.  The chain walk (what executes *between* two accesses)
is the client's job — see :mod:`repro.transform.mem_opt`, which pairs
this lattice with a backwards walk over the effect thread.  Results are
valid for the world generation they were computed at;
:meth:`~repro.core.analyses.AnalysisManager.alias` memoizes one instance
per generation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .defs import Def
from .primops import (
    Alloc,
    Enter,
    EvalOp,
    Extract,
    Global,
    Lea,
    Literal,
    Load,
    Slot,
    Store,
)

if TYPE_CHECKING:  # pragma: no cover
    from .world import World

# The three-point verdict lattice: NOT < MAY, MUST < MAY.
NOT = "not"
MAY = "may"
MUST = "must"


def _peel(d: Def) -> Def:
    while isinstance(d, EvalOp):
        d = d.value
    return d


class AliasAnalysis:
    """Not/May/Must queries over every pointer pair of one world.

    Root classification and escape verdicts are computed lazily and
    memoized; an instance is only valid while ``world.generation``
    stands still (callers go through ``world.analyses.alias()``).
    """

    def __init__(self, world: "World"):
        self.world = world
        self.generation = world.generation
        self._roots: dict[Def, tuple[tuple | None, tuple]] = {}
        self._escapes: dict[Def, bool] = {}
        self._frame_escapes: dict[Def, bool] = {}
        self._ptr_escapes: dict[Def, bool] = {}
        self._pairs: dict[tuple[Def, Def], str] = {}

    # ------------------------------------------------------------------
    # alias classes
    # ------------------------------------------------------------------

    def root(self, ptr: Def) -> tuple[tuple | None, tuple]:
        """``(root key, access path)``; root ``None`` = unknown base.

        The access path is a tuple of components, outermost first: a
        ``("lit", value)`` pair for literal indices, the index def
        itself for dynamic ones.
        """
        cached = self._roots.get(ptr)
        if cached is not None:
            return cached
        path: list = []
        base = _peel(ptr)
        while isinstance(base, Lea):
            index = base.index
            path.append(("lit", index.value) if isinstance(index, Literal)
                        else index)
            base = _peel(base.ptr)
        path.reverse()
        key: tuple | None
        if isinstance(base, Slot):
            key = ("slot", base.slot_id)
        elif isinstance(base, Global):
            key = (("global", base.global_id) if base.is_mutable
                   else ("iglobal", base.gid))
        elif (isinstance(base, Extract) and isinstance(base.agg, Alloc)
                and isinstance(base.index, Literal)
                and base.index.value == 1):
            key = ("alloc", base.agg.alloc_id)
        else:
            key = None  # parameter, select, re-loaded pointer, bottom, ...
        result = (key, tuple(path))
        self._roots[ptr] = result
        return result

    # ------------------------------------------------------------------
    # escape analysis
    # ------------------------------------------------------------------

    def escaped(self, ptr: Def) -> bool:
        """Has this pointer's *root* leaked beyond load/store/lea uses?"""
        cached = self._ptr_escapes.get(ptr)
        if cached is not None:
            return cached
        key, _path = self.root(ptr)
        if key is None:
            self._ptr_escapes[ptr] = True
            return True
        base = _peel(ptr)
        while isinstance(base, Lea):
            base = _peel(base.ptr)
        escaped = self._escapes.get(base)
        if escaped is None:
            escaped = self._base_escapes(base)
            self._escapes[base] = escaped
        self._ptr_escapes[ptr] = escaped
        return escaped

    def _base_escapes(self, base: Def) -> bool:
        if isinstance(base, Slot) and self._frame_escaped(base.frame):
            return True
        if isinstance(base, Extract):  # alloc pair: check the pair def too
            for user, _ in base.agg.uses:
                if not (isinstance(user, Extract)
                        and isinstance(user.index, Literal)):
                    return True
        return self._derived_escape(base)

    def _derived_escape(self, base: Def) -> bool:
        """Flood the lea-derived pointer set; True on any non-access use."""
        stack = [base]
        seen: set[Def] = set()
        while stack:
            p = stack.pop()
            if p in seen:
                continue
            seen.add(p)
            for user, index in p.uses:
                if isinstance(user, Lea) and index == 0:
                    stack.append(user)
                elif isinstance(user, (Load, Store)) and index == 1:
                    continue
                else:
                    # jump/call argument, stored value, aggregate element,
                    # select arm, eval wrapper, dynamic extract, ...
                    return True
        return False

    def _frame_escaped(self, frame: Def) -> bool:
        cached = self._frame_escapes.get(frame)
        if cached is not None:
            return cached
        escaped = any(not (isinstance(user, Slot) and index == 0)
                      for user, index in frame.uses)
        self._frame_escapes[frame] = escaped
        return escaped

    # ------------------------------------------------------------------
    # the query
    # ------------------------------------------------------------------

    def alias(self, p: Def, q: Def) -> str:
        """``MUST`` / ``NOT`` / ``MAY`` for two pointer-typed defs."""
        if p is q:
            return MUST
        cached = self._pairs.get((p, q))
        if cached is not None:
            return cached
        verdict = self._alias(p, q)
        self._pairs[(p, q)] = verdict
        self._pairs[(q, p)] = verdict  # the lattice is symmetric
        return verdict

    def _alias(self, p: Def, q: Def) -> str:
        kp, path_p = self.root(p)
        kq, path_q = self.root(q)
        if kp is None or kq is None:
            return MAY
        if self.escaped(p) or self.escaped(q):
            return MAY
        if kp != kq:
            return NOT
        # Same root: compare access paths component-wise.
        for cp, cq in zip(path_p, path_q):
            if cp is cq:
                continue  # identical index def
            lit_p = isinstance(cp, tuple)
            lit_q = isinstance(cq, tuple)
            if lit_p and lit_q:
                if cp[1] != cq[1]:
                    return NOT  # disjoint subtrees of the same cell
                continue
            return MAY  # dynamic index against anything non-identical
        if len(path_p) == len(path_q):
            return MUST
        return MAY  # one path prefixes the other: aggregate vs. component


def effect_threads(world: "World",
                   analysis: AliasAnalysis | None = None) -> dict:
    """Group the world's reachable loads/stores by root region.

    The "split" of the single mem token: each key is an alias-class root
    (or ``None`` for accesses whose base is unknown/escaped), each value
    the list of memory ops touching that region.  Two ops in different
    non-``None`` threads can never observe each other — this is what the
    mem_opt chain walk exploits, and what DESIGN §4g illustrates.
    """
    analysis = analysis if analysis is not None else AliasAnalysis(world)
    threads: dict = {}
    for op in world_memory_ops(world):
        ptr = op.ptr
        key, _path = analysis.root(ptr)
        if key is not None and analysis.escaped(ptr):
            key = None
        threads.setdefault(key, []).append(op)
    return threads


def world_memory_ops(world: "World") -> list:
    """Every reachable ``Load``/``Store``, in deterministic gid order."""
    from ..transform.cleanup import reachable_defs

    ops = [d for d in reachable_defs(world) if isinstance(d, (Load, Store))]
    ops.sort(key=lambda d: d.gid)
    return ops

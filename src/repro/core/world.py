"""The world: container and smart factory for the IR graph.

All IR nodes are created through a :class:`World`.  The world maintains

* a **hash-consing table** for primops (global value numbering): two
  structurally equal primops are the same Python object, always;
* **folding and simplification rules** inside every factory method, so
  constant folding, algebraic simplification, copy propagation and CSE
  hold *by construction* — the paper's central engineering claim;
* the registry of continuations and of *external* continuations (the
  roots that keep the rest of the graph alive);
* the compiler-known *intrinsic* continuations (``branch``, ``match``,
  I/O).

Folding can be disabled (``World(folding=False)``) to measure what the
rules buy (ablation A1); value numbering itself is always on, since the
rest of the system relies on pointer equality of structural nodes.
"""

from __future__ import annotations

from typing import Iterable

from . import fold
from .defs import Continuation, Def, Intrinsic, Param
from .primops import (
    Alloc,
    ArithKind,
    ArithOp,
    ArrayVal,
    Bitcast,
    Bottom,
    Cast,
    Cmp,
    CmpRel,
    Enter,
    Extract,
    Global,
    Hlt,
    Insert,
    Lea,
    Literal,
    Load,
    PrimOp,
    Run,
    Select,
    Slot,
    Store,
    StructVal,
    TupleVal,
    element_type_of,
)
from .types import (
    BOOL,
    FRAME,
    MEM,
    DefiniteArrayType,
    FnType,
    FrameType,
    MemType,
    PrimType,
    PtrType,
    StructType,
    TupleType,
    Type,
    definite_array_type,
    fn_type,
    ptr_type,
    tuple_type,
)


class WorldStats:
    """Counters describing construction-time optimization activity."""

    def __init__(self) -> None:
        self.gvn_hits = 0
        self.gvn_misses = 0
        self.folds = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "gvn_hits": self.gvn_hits,
            "gvn_misses": self.gvn_misses,
            "folds": self.folds,
        }


class World:
    """One IR universe: value-numbering table, continuations, intrinsics."""

    def __init__(self, name: str = "world", *, folding: bool = True):
        self.name = name
        self.folding = folding
        self.stats = WorldStats()
        self._gid = 0
        self._primops: dict[tuple, PrimOp] = {}
        self._continuations: list[Continuation] = []
        self._externals: dict[str, Continuation] = {}
        self._intrinsics: dict[str, Continuation] = {}
        self._slot_id = 0
        self._alloc_id = 0
        self._global_id = 0
        self._generation = 0
        self._structural_generation = 0
        self._analyses = None
        self._undo = None  # armed UndoLog, if any (core.undo)

    # ------------------------------------------------------------------
    # identity & registry
    # ------------------------------------------------------------------

    def next_gid(self) -> int:
        self._gid += 1
        self._generation += 1
        return self._gid

    @property
    def generation(self) -> int:
        """Monotone mutation counter: bumped by every change to the graph
        or its registries, never by reads and never rolled back (a
        snapshot restore *advances* it).  Cached analyses key on it.
        """
        return self._generation

    @property
    def structural_generation(self) -> int:
        """Monotone counter of *continuation-structure* mutations.

        Bumped by continuation registration/pruning, body rewires, param
        surgery, external marking and wholesale restores — but **not** by
        primop creation.  Primops are immutable once built and carry no
        users at birth, so minting one cannot change which continuations
        are nested in which (the ``top_level`` sweep's answer): reaching
        sets propagate def → user, and a fresh primop has no users until
        some continuation body is rewired to mention it — which bumps
        this counter.  Whole-world analyses that only depend on the
        continuation structure stamp against this, surviving the primop
        churn that dominates generation bumps inside a pass.
        """
        return self._structural_generation

    @property
    def analyses(self):
        """The world's :class:`~repro.core.analyses.AnalysisManager`.

        Created lazily so worlds that never ask for cached analyses pay
        nothing; once created, mutation notes flow into it.
        """
        if self._analyses is None:
            from .analyses import AnalysisManager

            self._analyses = AnalysisManager(self)
        return self._analyses

    # -- mutation notes -------------------------------------------------
    #
    # Every graph mutation funnels through one of these three hooks.
    # ``_set_ops`` (the single place use-edges change) reports the user
    # and its new operands; structural registry surgery reports the
    # continuations it touched; wholesale rebuilds (snapshot restore)
    # report nothing and force a drop-all.  The generation counter bumps
    # unconditionally; the analysis manager only hears about it once it
    # exists.

    def _note_touched(self, user: Def, ops: tuple) -> None:
        self._generation += 1
        if user.__class__ is Continuation:
            self._structural_generation += 1
        undo = self._undo
        if undo is not None:
            # Fired before ``user._ops`` is swapped, so the log can
            # capture the old operand tuple on first touch.
            undo._on_touched(user)
        manager = self._analyses
        if manager is not None:
            manager._record_touched(user, ops)

    def _note_structural(self, *touched: Def) -> None:
        self._generation += 1
        self._structural_generation += 1
        manager = self._analyses
        if manager is not None and touched:
            manager._record_structural(touched)

    def _note_all(self) -> None:
        self._generation += 1
        self._structural_generation += 1
        # A wholesale rebuild invalidates any armed undo log: the
        # objects it tracks may no longer belong to this world.
        self._undo = None
        manager = self._analyses
        if manager is not None:
            manager._record_all()

    def continuations(self) -> list[Continuation]:
        """All live continuations, in creation order."""
        return list(self._continuations)

    def externals(self) -> list[Continuation]:
        return list(self._externals.values())

    def find_external(self, name: str) -> Continuation:
        return self._externals[name]

    def make_external(self, cont: Continuation) -> None:
        if self._undo is not None:
            self._undo._on_external(cont)
        cont.is_external = True
        self._externals[cont.name] = cont
        self._note_structural(cont)

    def remove_external(self, cont: Continuation) -> None:
        if self._undo is not None:
            self._undo._on_external(cont)
        cont.is_external = False
        self._externals.pop(cont.name, None)
        self._note_structural(cont)

    def num_primops(self) -> int:
        return len(self._primops)

    def _prune_continuations(self, live: set[Continuation]) -> None:
        """Drop dead continuations from the registry (used by cleanup)."""
        pruned = [c for c in self._continuations if c not in live]
        if not pruned:
            return
        if self._undo is not None:
            self._undo._on_prune_continuations()
        self._continuations = [c for c in self._continuations if c in live]
        self._note_structural(*pruned)

    def _prune_primops(self, live: set[Def]) -> None:
        before = len(self._primops)
        if self._undo is not None:
            self._undo._on_prune_primops()
        self._primops = {
            key: op for key, op in self._primops.items() if op in live
        }
        if len(self._primops) != before:
            self._generation += 1

    def dead_primops(self, live: set[Def]) -> list[PrimOp]:
        return [op for op in self._primops.values() if op not in live]

    # ------------------------------------------------------------------
    # continuations & intrinsics
    # ------------------------------------------------------------------

    def continuation(self, type: FnType, name: str = "") -> Continuation:
        cont = Continuation(self, type, name or f"cont{self._gid + 1}")
        self._continuations.append(cont)
        self._structural_generation += 1
        return cont

    def basic_block(self, param_types: Iterable[Type] = (), name: str = "") -> Continuation:
        return self.continuation(fn_type(tuple(param_types)), name)

    def _intrinsic(self, name: str, type: FnType) -> Continuation:
        cont = self._intrinsics.get(name)
        if cont is None:
            cont = Continuation(self, type, name, intrinsic=name)
            self._continuations.append(cont)
            self._intrinsics[name] = cont
            self._structural_generation += 1
        return cont

    def branch(self) -> Continuation:
        """``branch(mem, cond, then: fn(mem), else: fn(mem))``."""
        bb = fn_type((MEM,))
        return self._intrinsic(Intrinsic.BRANCH, fn_type((MEM, BOOL, bb, bb)))

    def match(self, value_type: Type) -> Continuation:
        """``match(mem, value, default, (lit, target)...)`` — a switch.

        Variadic: the verifier checks the (lit, target) pair arguments.
        One intrinsic per scrutinee type.
        """
        bb = fn_type((MEM,))
        arm = tuple_type((value_type, bb))
        name = f"{Intrinsic.MATCH}.{value_type}"
        cont = self._intrinsics.get(name)
        if cont is None:
            cont = Continuation(
                self, fn_type((MEM, value_type, bb, arm)), name,
                intrinsic=Intrinsic.MATCH,
            )
            self._continuations.append(cont)
            self._intrinsics[name] = cont
            self._structural_generation += 1
        return cont

    def print_i64(self) -> Continuation:
        from .types import I64

        ret = fn_type((MEM,))
        return self._intrinsic(Intrinsic.PRINT_I64, fn_type((MEM, I64, ret)))

    def print_f64(self) -> Continuation:
        from .types import F64

        ret = fn_type((MEM,))
        return self._intrinsic(Intrinsic.PRINT_F64, fn_type((MEM, F64, ret)))

    def print_char(self) -> Continuation:
        from .types import U8

        ret = fn_type((MEM,))
        return self._intrinsic(Intrinsic.PRINT_CHAR, fn_type((MEM, U8, ret)))

    # ------------------------------------------------------------------
    # the hash-consing core
    # ------------------------------------------------------------------

    def _unify(self, key: tuple, build) -> PrimOp:
        existing = self._primops.get(key)
        if existing is not None:
            self.stats.gvn_hits += 1
            return existing
        self.stats.gvn_misses += 1
        op = build()
        self._primops[key] = op
        return op

    @staticmethod
    def _ops_key(ops: tuple[Def, ...]) -> tuple:
        return tuple(op.gid for op in ops)

    def _folded(self, value: Def) -> Def:
        self.stats.folds += 1
        return value

    # ------------------------------------------------------------------
    # literals / bottom
    # ------------------------------------------------------------------

    def literal(self, type: PrimType, value) -> Literal:
        value = fold.canonicalize(type.kind, value)
        key = (Literal, type, (), (value,))
        return self._unify(key, lambda: Literal(self, type, value))  # type: ignore[return-value]

    def lit_bool(self, value: bool) -> Literal:
        return self.literal(BOOL, value)

    def true_(self) -> Literal:
        return self.lit_bool(True)

    def false_(self) -> Literal:
        return self.lit_bool(False)

    def zero(self, type: PrimType) -> Literal:
        return self.literal(type, 0)

    def one(self, type: PrimType) -> Literal:
        return self.literal(type, 1)

    def bottom(self, type: Type) -> Bottom:
        key = (Bottom, type, (), ())
        return self._unify(key, lambda: Bottom(self, type))  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    def arithop(self, kind: ArithKind, lhs: Def, rhs: Def) -> Def:
        assert lhs.type is rhs.type, (
            f"arith operand type mismatch: {lhs.type} vs {rhs.type}"
        )
        prim = lhs.type
        assert isinstance(prim, PrimType), f"arith on non-scalar {prim}"
        if self.folding:
            folded = self._fold_arith(kind, prim, lhs, rhs)
            if folded is not None:
                return self._folded(folded)
            # Canonicalize: constants to the right for commutative ops.
            if kind.is_commutative and isinstance(lhs, Literal) and not isinstance(rhs, Literal):
                lhs, rhs = rhs, lhs
        key = (ArithOp, prim, self._ops_key((lhs, rhs)), (kind,))
        return self._unify(key, lambda: ArithOp(self, kind, lhs, rhs))

    def may_trap(self, d: Def) -> bool:
        """Can evaluating *d*'s primop subtree trap at run time?

        True when the subtree contains an integer ``div``/``rem`` whose
        divisor is not a provably nonzero literal (``INT_MIN / -1``
        wraps, float division follows IEEE — neither traps).  The walk
        treats continuations, parameters and literals as leaves: the
        reference interpreter evaluates every primop operand of an
        executed body, but never the body of a closure it merely builds.
        """
        stack = [d]
        seen: set[int] = set()
        while stack:
            cur = stack.pop()
            if id(cur) in seen:
                continue
            seen.add(id(cur))
            if not isinstance(cur, PrimOp):
                continue
            if (isinstance(cur, ArithOp) and cur.kind.is_division
                    and isinstance(cur.type, PrimType) and cur.type.is_int):
                divisor = cur.ops[1]
                if not (isinstance(divisor, Literal) and divisor.value != 0):
                    return True
            stack.extend(cur.ops)
        return False

    def _can_discard(self, *defs: Def) -> bool:
        """May these operand subtrees be folded away?

        A fold that *discards* an operand the reference interpreter
        would have evaluated must not lose a trap: ``(1/x) * 0`` still
        divides by ``x`` at run time, so it must not fold to ``0``.
        Every discarding fold below is gated on this predicate.
        """
        return not any(self.may_trap(d) for d in defs)

    def _fold_arith(self, kind: ArithKind, prim: PrimType, lhs: Def, rhs: Def) -> Def | None:
        if isinstance(lhs, Bottom) or isinstance(rhs, Bottom):
            if self._can_discard(lhs, rhs):
                return self.bottom(prim)
            return None
        if isinstance(lhs, Literal) and isinstance(rhs, Literal):
            if kind.is_division and prim.is_int and rhs.value == 0:
                return None  # leave the trap in the program
            return self.literal(prim, fold.arith(kind, prim, lhs.value, rhs.value))

        def is_zero(d: Def) -> bool:
            return isinstance(d, Literal) and not d.prim_type.is_float and d.value == 0

        def is_one(d: Def) -> bool:
            return isinstance(d, Literal) and d.value == 1

        def is_all_ones(d: Def) -> bool:
            return (isinstance(d, Literal) and d.prim_type.is_int
                    and d.value == (1 << d.prim_type.bitwidth) - 1)

        if kind is ArithKind.ADD:
            if is_zero(lhs):
                return rhs
            if is_zero(rhs):
                return lhs
        elif kind is ArithKind.SUB:
            if is_zero(rhs):
                return lhs
            if lhs is rhs and prim.is_int and self._can_discard(lhs):
                return self.zero(prim)
        elif kind is ArithKind.MUL:
            if prim.is_int and is_zero(lhs) and self._can_discard(rhs):
                return self.zero(prim)
            if prim.is_int and is_zero(rhs) and self._can_discard(lhs):
                return self.zero(prim)
            if is_one(lhs) and not prim.is_bool:
                return rhs
            if is_one(rhs) and not prim.is_bool:
                return lhs
        elif kind is ArithKind.DIV:
            if is_one(rhs) and not prim.is_bool:
                return lhs
        elif kind is ArithKind.AND:
            if is_zero(lhs) and self._can_discard(rhs):
                return self.zero(prim) if prim.is_int else self.false_()
            if is_zero(rhs) and self._can_discard(lhs):
                return self.zero(prim) if prim.is_int else self.false_()
            if lhs is rhs:
                return lhs
            if prim.is_bool:
                if isinstance(lhs, Literal) and lhs.value:
                    return rhs
                if isinstance(rhs, Literal) and rhs.value:
                    return lhs
            if is_all_ones(lhs):
                return rhs
            if is_all_ones(rhs):
                return lhs
        elif kind is ArithKind.OR:
            if lhs is rhs:
                return lhs
            if prim.is_bool:
                if isinstance(lhs, Literal):
                    if not lhs.value:
                        return rhs
                    if self._can_discard(rhs):
                        return self.true_()
                elif isinstance(rhs, Literal):
                    if not rhs.value:
                        return lhs
                    if self._can_discard(lhs):
                        return self.true_()
            else:
                if is_zero(lhs):
                    return rhs
                if is_zero(rhs):
                    return lhs
                if is_all_ones(lhs) and self._can_discard(rhs):
                    return self.literal(prim, (1 << prim.bitwidth) - 1)
                if is_all_ones(rhs) and self._can_discard(lhs):
                    return self.literal(prim, (1 << prim.bitwidth) - 1)
        elif kind is ArithKind.XOR:
            if lhs is rhs and self._can_discard(lhs):
                return self.false_() if prim.is_bool else self.zero(prim)
            if is_zero(lhs):
                return rhs
            if is_zero(rhs):
                return lhs
            # xor-chain collapsing: (a ^ c1) ^ c2  ->  a ^ (c1 ^ c2);
            # double negation !!b falls out of this.
            if (isinstance(rhs, Literal) and isinstance(lhs, ArithOp)
                    and lhs.kind is ArithKind.XOR
                    and isinstance(lhs.rhs, Literal)):
                folded_const = self.literal(
                    prim, fold.arith(kind, prim, lhs.rhs.value, rhs.value)
                )
                return self.xor(lhs.lhs, folded_const)
        elif kind in (ArithKind.SHL, ArithKind.SHR):
            if is_zero(rhs):
                return lhs
            if is_zero(lhs) and self._can_discard(rhs):
                return self.zero(prim)
        return None

    # Convenience spellings used heavily by frontends and tests.
    def add(self, lhs: Def, rhs: Def) -> Def:
        return self.arithop(ArithKind.ADD, lhs, rhs)

    def sub(self, lhs: Def, rhs: Def) -> Def:
        return self.arithop(ArithKind.SUB, lhs, rhs)

    def mul(self, lhs: Def, rhs: Def) -> Def:
        return self.arithop(ArithKind.MUL, lhs, rhs)

    def div(self, lhs: Def, rhs: Def) -> Def:
        return self.arithop(ArithKind.DIV, lhs, rhs)

    def rem(self, lhs: Def, rhs: Def) -> Def:
        return self.arithop(ArithKind.REM, lhs, rhs)

    def and_(self, lhs: Def, rhs: Def) -> Def:
        return self.arithop(ArithKind.AND, lhs, rhs)

    def or_(self, lhs: Def, rhs: Def) -> Def:
        return self.arithop(ArithKind.OR, lhs, rhs)

    def xor(self, lhs: Def, rhs: Def) -> Def:
        return self.arithop(ArithKind.XOR, lhs, rhs)

    def shl(self, lhs: Def, rhs: Def) -> Def:
        return self.arithop(ArithKind.SHL, lhs, rhs)

    def shr(self, lhs: Def, rhs: Def) -> Def:
        return self.arithop(ArithKind.SHR, lhs, rhs)

    def not_(self, value: Def) -> Def:
        assert value.type is BOOL
        return self.xor(value, self.true_())

    def neg(self, value: Def) -> Def:
        prim = value.type
        assert isinstance(prim, PrimType) and not prim.is_bool
        if prim.is_float:
            return self.sub(self.literal(prim, -0.0), value)
        return self.sub(self.zero(prim), value)

    def mathop(self, kind, value: Def) -> Def:
        from .primops import MathOp

        prim = value.type
        assert isinstance(prim, PrimType) and prim.is_float, (
            f"math op on non-float {prim}"
        )
        if self.folding:
            if isinstance(value, Bottom):
                return self._folded(self.bottom(prim))
            if isinstance(value, Literal):
                return self._folded(
                    self.literal(prim, fold.math_op(kind, prim, value.value))
                )
        key = (MathOp, prim, self._ops_key((value,)), (kind,))
        return self._unify(key, lambda: MathOp(self, kind, value))

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------

    def cmp(self, rel: CmpRel, lhs: Def, rhs: Def) -> Def:
        assert lhs.type is rhs.type, (
            f"cmp operand type mismatch: {lhs.type} vs {rhs.type}"
        )
        prim = lhs.type
        assert isinstance(prim, PrimType), f"cmp on non-scalar {prim}"
        if self.folding:
            if isinstance(lhs, Bottom) or isinstance(rhs, Bottom):
                if self._can_discard(lhs, rhs):
                    return self._folded(self.bottom(BOOL))
            elif isinstance(lhs, Literal) and isinstance(rhs, Literal):
                return self._folded(
                    self.lit_bool(fold.compare(rel, prim, lhs.value, rhs.value))
                )
            elif lhs is rhs and not prim.is_float and self._can_discard(lhs):
                if rel in (CmpRel.EQ, CmpRel.LE, CmpRel.GE):
                    return self._folded(self.true_())
                return self._folded(self.false_())
            if isinstance(lhs, Literal) and not isinstance(rhs, Literal):
                lhs, rhs, rel = rhs, lhs, rel.swap()
        key = (Cmp, BOOL, self._ops_key((lhs, rhs)), (rel,))
        return self._unify(key, lambda: Cmp(self, rel, lhs, rhs))

    def eq(self, lhs: Def, rhs: Def) -> Def:
        return self.cmp(CmpRel.EQ, lhs, rhs)

    def ne(self, lhs: Def, rhs: Def) -> Def:
        return self.cmp(CmpRel.NE, lhs, rhs)

    def lt(self, lhs: Def, rhs: Def) -> Def:
        return self.cmp(CmpRel.LT, lhs, rhs)

    def le(self, lhs: Def, rhs: Def) -> Def:
        return self.cmp(CmpRel.LE, lhs, rhs)

    def gt(self, lhs: Def, rhs: Def) -> Def:
        return self.cmp(CmpRel.GT, lhs, rhs)

    def ge(self, lhs: Def, rhs: Def) -> Def:
        return self.cmp(CmpRel.GE, lhs, rhs)

    # ------------------------------------------------------------------
    # casts
    # ------------------------------------------------------------------

    def cast(self, to: Type, value: Def) -> Def:
        if to is value.type:
            return value
        assert isinstance(to, PrimType) and isinstance(value.type, PrimType)
        if self.folding:
            if isinstance(value, Bottom):
                return self._folded(self.bottom(to))
            if isinstance(value, Literal):
                return self._folded(
                    self.literal(to, fold.cast(to, value.prim_type, value.value))
                )
        key = (Cast, to, self._ops_key((value,)), ())
        return self._unify(key, lambda: Cast(self, to, value))

    def bitcast(self, to: Type, value: Def) -> Def:
        if to is value.type:
            return value
        if self.folding:
            if isinstance(value, Bottom):
                return self._folded(self.bottom(to))
            if (isinstance(value, Literal) and isinstance(to, PrimType)
                    and isinstance(value.type, PrimType)):
                return self._folded(
                    self.literal(to, fold.bitcast(to, value.prim_type, value.value))
                )
            if isinstance(value, Bitcast):
                return self.bitcast(to, value.value)
        key = (Bitcast, to, self._ops_key((value,)), ())
        return self._unify(key, lambda: Bitcast(self, to, value))

    # ------------------------------------------------------------------
    # select
    # ------------------------------------------------------------------

    def select(self, cond: Def, tval: Def, fval: Def) -> Def:
        assert cond.type is BOOL, "select condition must be bool"
        assert tval.type is fval.type, (
            f"select arm type mismatch: {tval.type} vs {fval.type}"
        )
        if self.folding:
            if isinstance(cond, Literal):
                discarded = fval if cond.value else tval
                if self._can_discard(discarded):
                    return self._folded(tval if cond.value else fval)
            elif isinstance(cond, Bottom):
                if self._can_discard(tval, fval):
                    return self._folded(self.bottom(tval.type))
            elif tval is fval and self._can_discard(cond):
                return self._folded(tval)
            # select(!c, a, b) -> select(c, b, a)
            negated = self._negated_cond(cond)
            if negated is not None:
                return self.select(negated, fval, tval)
            if tval.type is BOOL:
                if (isinstance(tval, Literal) and isinstance(fval, Literal)):
                    # (c, true, false) -> c ; (c, false, true) -> !c
                    return self._folded(cond if tval.value else self.not_(cond))
        key = (Select, tval.type, self._ops_key((cond, tval, fval)), ())
        return self._unify(key, lambda: Select(self, cond, tval, fval))

    @staticmethod
    def _negated_cond(cond: Def) -> Def | None:
        if (isinstance(cond, ArithOp) and cond.kind is ArithKind.XOR
                and isinstance(cond.rhs, Literal) and cond.rhs.value is True):
            return cond.lhs
        return None

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    def tuple_(self, elems: Iterable[Def]) -> Def:
        elems = tuple(elems)
        type = tuple_type(tuple(e.type for e in elems))
        key = (TupleVal, type, self._ops_key(elems), ())
        return self._unify(key, lambda: TupleVal(self, type, elems))

    def unit(self) -> Def:
        return self.tuple_(())

    def definite_array(self, elem_type: Type, elems: Iterable[Def]) -> Def:
        elems = tuple(elems)
        assert all(e.type is elem_type for e in elems)
        type = definite_array_type(elem_type, len(elems))
        key = (ArrayVal, type, self._ops_key(elems), ())
        return self._unify(key, lambda: ArrayVal(self, type, elems))

    def struct_val(self, type: StructType, fields: Iterable[Def]) -> Def:
        fields = tuple(fields)
        assert len(fields) == len(type.field_types)
        assert all(f.type is t for f, t in zip(fields, type.field_types))
        key = (StructVal, type, self._ops_key(fields), ())
        return self._unify(key, lambda: StructVal(self, type, fields))

    def extract(self, agg: Def, index) -> Def:
        from .types import I64

        if isinstance(index, int):
            index = self.literal(I64, index)
        type = element_type_of(agg.type, index)
        if self.folding:
            folded = self._fold_extract(agg, index, type)
            if folded is not None:
                return self._folded(folded)
        key = (Extract, type, self._ops_key((agg, index)), ())
        return self._unify(key, lambda: Extract(self, type, agg, index))

    def _fold_extract(self, agg: Def, index: Def, type: Type) -> Def | None:
        if isinstance(agg, Bottom):
            if self._can_discard(index):
                return self.bottom(type)
            return None
        if isinstance(index, Literal):
            if isinstance(agg, (TupleVal, StructVal)):
                siblings = [op for i, op in enumerate(agg.ops)
                            if i != index.value]
                if self._can_discard(*siblings):
                    return agg.op(index.value)
                return None
            if isinstance(agg, ArrayVal):
                if index.value < agg.num_ops:
                    siblings = [op for i, op in enumerate(agg.ops)
                                if i != index.value]
                    if self._can_discard(*siblings):
                        return agg.op(index.value)
                    return None
                if self._can_discard(agg):
                    return self.bottom(type)
                return None
            if isinstance(agg, Insert) and isinstance(agg.index, Literal):
                if agg.index.value == index.value:
                    if self._can_discard(agg.agg):
                        return agg.value
                    return None
                if self._can_discard(agg.value):
                    return self.extract(agg.agg, index)
        return None

    def insert(self, agg: Def, index, value: Def) -> Def:
        from .types import I64

        if isinstance(index, int):
            index = self.literal(I64, index)
        elem = element_type_of(agg.type, index)
        assert value.type is elem, (
            f"insert type mismatch: {value.type} into slot of {elem}"
        )
        if self.folding:
            folded = self._fold_insert(agg, index, value)
            if folded is not None:
                return self._folded(folded)
        key = (Insert, agg.type, self._ops_key((agg, index, value)), ())
        return self._unify(key, lambda: Insert(self, agg, index, value))

    def _fold_insert(self, agg: Def, index: Def, value: Def) -> Def | None:
        if not isinstance(index, Literal):
            return None
        i = index.value
        if isinstance(agg, TupleVal):
            if not self._can_discard(agg.op(i)):
                return None
            elems = list(agg.ops)
            elems[i] = value
            return self.tuple_(elems)
        if isinstance(agg, StructVal):
            assert isinstance(agg.type, StructType)
            if not self._can_discard(agg.op(i)):
                return None
            fields = list(agg.ops)
            fields[i] = value
            return self.struct_val(agg.type, fields)
        if isinstance(agg, ArrayVal):
            assert isinstance(agg.type, DefiniteArrayType)
            if i < agg.num_ops:
                if not self._can_discard(agg.op(i)):
                    return None
                elems = list(agg.ops)
                elems[i] = value
                return self.definite_array(agg.type.elem_type, elems)
            if self._can_discard(agg, value):
                return self.bottom(agg.type)
            return None
        if isinstance(agg, Insert) and isinstance(agg.index, Literal):
            if agg.index.value == i and self._can_discard(agg.value):
                return self.insert(agg.agg, index, value)
        if isinstance(agg, Bottom) and isinstance(agg.type, DefiniteArrayType):
            # Building up a fresh array over bottom: keep as chained inserts.
            return None
        return None

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------

    def enter(self, mem: Def) -> tuple[Def, Def]:
        """Open a stack frame; returns ``(mem, frame)``."""
        assert isinstance(mem.type, MemType)
        type = tuple_type((MEM, FRAME))
        key = (Enter, type, self._ops_key((mem,)), ())
        op = self._unify(key, lambda: Enter(self, type, mem))
        return self.extract(op, 0), self.extract(op, 1)

    def slot(self, pointee: Type, frame: Def, name: str = "") -> Def:
        assert isinstance(frame.type, FrameType)
        self._slot_id += 1
        slot_id = self._slot_id
        type = ptr_type(pointee)
        key = (Slot, type, self._ops_key((frame,)), (slot_id,))
        op = self._unify(key, lambda: Slot(self, type, frame, slot_id))
        if name:
            op.name = name
        return op

    def alloc(self, mem: Def, pointee: Type, extra: Def | None = None) -> tuple[Def, Def]:
        """Heap-allocate a cell of ``pointee``; returns ``(mem, ptr)``.

        For indefinite arrays, ``extra`` is the run-time element count.
        """
        from .types import I64

        if extra is None:
            extra = self.zero(I64)
        self._alloc_id += 1
        alloc_id = self._alloc_id
        type = tuple_type((MEM, ptr_type(pointee)))
        key = (Alloc, type, self._ops_key((mem, extra)), (alloc_id,))
        op = self._unify(key, lambda: Alloc(self, type, mem, extra, alloc_id))
        return self.extract(op, 0), self.extract(op, 1)

    def load(self, mem: Def, ptr: Def) -> tuple[Def, Def]:
        """Load through ``ptr``; returns ``(mem, value)``."""
        assert isinstance(ptr.type, PtrType), f"load through non-pointer {ptr.type}"
        pointee = ptr.type.pointee
        if self.folding:
            # Store-to-load forwarding through the very same memory token.
            if isinstance(mem, Store) and mem.ptr is ptr:
                self.stats.folds += 1
                return mem, mem.value
            if isinstance(ptr, Global) and not ptr.is_mutable:
                self.stats.folds += 1
                return mem, ptr.init
        type = tuple_type((MEM, pointee))
        key = (Load, type, self._ops_key((mem, ptr)), ())
        op = self._unify(key, lambda: Load(self, type, mem, ptr))
        return self.extract(op, 0), self.extract(op, 1)

    def store(self, mem: Def, ptr: Def, value: Def) -> Def:
        assert isinstance(ptr.type, PtrType), f"store through non-pointer {ptr.type}"
        assert ptr.type.pointee is value.type, (
            f"store type mismatch: {value.type} through {ptr.type}"
        )
        if self.folding:
            # Dead-store elimination through the same memory token.
            if (isinstance(mem, Store) and mem.ptr is ptr
                    and self._can_discard(mem.value)):
                return self.store(mem.mem, ptr, value)
        key = (Store, MEM, self._ops_key((mem, ptr, value)), ())
        return self._unify(key, lambda: Store(self, MEM, mem, ptr, value))

    def lea(self, ptr: Def, index) -> Def:
        from .types import I64

        if isinstance(index, int):
            index = self.literal(I64, index)
        assert isinstance(ptr.type, PtrType)
        pointee = element_type_of(ptr.type.pointee, index)
        type = ptr_type(pointee)
        key = (Lea, type, self._ops_key((ptr, index)), ())
        return self._unify(key, lambda: Lea(self, type, ptr, index))

    def global_(self, init: Def, is_mutable: bool = True, name: str = "") -> Def:
        self._global_id += 1
        global_id = self._global_id if is_mutable else 0
        type = ptr_type(init.type)
        key = (Global, type, self._ops_key((init,)), (is_mutable, global_id))
        op = self._unify(
            key, lambda: Global(self, type, init, is_mutable, global_id)
        )
        if name:
            # Immutable globals share global_id 0, so _unify may hand
            # back a pre-existing op; the rename must be undoable.
            if self._undo is not None:
                self._undo._on_rename(op)
            op.name = name
        return op

    # ------------------------------------------------------------------
    # partial-evaluation markers
    # ------------------------------------------------------------------

    def run(self, value: Def) -> Def:
        if isinstance(value, (Run, Hlt)):
            return value
        key = (Run, value.type, self._ops_key((value,)), ())
        return self._unify(key, lambda: Run(self, value))

    def hlt(self, value: Def) -> Def:
        if isinstance(value, Hlt):
            return value
        if isinstance(value, Run):
            value = value.value
        key = (Hlt, value.type, self._ops_key((value,)), ())
        return self._unify(key, lambda: Hlt(self, value))

    # ------------------------------------------------------------------
    # jump-level folding
    # ------------------------------------------------------------------

    def jump(self, cont: Continuation, callee: Def, args: Iterable[Def]) -> None:
        """Set ``cont``'s body to ``callee(args)``, folding trivial jumps.

        * a branch on a literal condition becomes a direct jump,
        * a branch whose arms coincide becomes a direct jump,
        * a jump to ``select(c, t, f)`` becomes a branch.
        """
        args = tuple(args)
        if self.folding:
            target = callee
            if isinstance(target, (Run, Hlt)):
                target = target.value
            if isinstance(target, Continuation) and target.intrinsic == Intrinsic.BRANCH:
                mem, cond, tgt_t, tgt_f = args
                if isinstance(cond, Literal):
                    dropped = tgt_f if cond.value else tgt_t
                    if self._can_discard(dropped):
                        self.stats.folds += 1
                        self.jump(cont, tgt_t if cond.value else tgt_f, (mem,))
                        return
                elif tgt_t is tgt_f and self._can_discard(cond):
                    self.stats.folds += 1
                    self.jump(cont, tgt_t, (mem,))
                    return
            if isinstance(callee, Select):
                # jump select(c, t, f)(args) == branch-like dispatch
                if isinstance(callee.cond, Literal):
                    dropped = callee.fval if callee.cond.value else callee.tval
                    if self._can_discard(dropped):
                        self.stats.folds += 1
                        picked = callee.tval if callee.cond.value else callee.fval
                        self.jump(cont, picked, args)
                        return
        cont.jump(callee, args)

    def rebuild(self, op: PrimOp, new_ops: tuple[Def, ...]) -> Def:
        """Reconstruct *op* with new operands through the smart factories.

        This is the workhorse of the mangler and the generic rewriter:
        because reconstruction goes through the factory methods, folding
        re-fires with the substituted operands — specialization power
        comes from exactly this.
        """
        if isinstance(op, Literal) or isinstance(op, Bottom):
            return op
        if isinstance(op, ArithOp):
            return self.arithop(op.kind, *new_ops)
        if isinstance(op, Cmp):
            return self.cmp(op.rel, *new_ops)
        from .primops import MathOp

        if isinstance(op, MathOp):
            return self.mathop(op.kind, *new_ops)
        if isinstance(op, Cast):
            return self.cast(op.type, *new_ops)
        if isinstance(op, Bitcast):
            return self.bitcast(op.type, *new_ops)
        if isinstance(op, Select):
            return self.select(*new_ops)
        if isinstance(op, TupleVal):
            return self.tuple_(new_ops)
        if isinstance(op, ArrayVal):
            assert isinstance(op.type, DefiniteArrayType)
            return self.definite_array(op.type.elem_type, new_ops)
        if isinstance(op, StructVal):
            assert isinstance(op.type, StructType)
            return self.struct_val(op.type, new_ops)
        if isinstance(op, Extract):
            return self.extract(*new_ops)
        if isinstance(op, Insert):
            return self.insert(*new_ops)
        if isinstance(op, Enter):
            key = (Enter, op.type, self._ops_key(new_ops), ())
            return self._unify(key, lambda: Enter(self, op.type, *new_ops))  # type: ignore[arg-type]
        if isinstance(op, Slot):
            key = (Slot, op.type, self._ops_key(new_ops), (op.slot_id,))
            return self._unify(
                key, lambda: Slot(self, op.type, new_ops[0], op.slot_id)  # type: ignore[arg-type]
            )
        if isinstance(op, Alloc):
            key = (Alloc, op.type, self._ops_key(new_ops), (op.alloc_id,))
            return self._unify(
                key,
                lambda: Alloc(self, op.type, new_ops[0], new_ops[1], op.alloc_id),  # type: ignore[arg-type]
            )
        if isinstance(op, Load):
            mem, value = self.load(*new_ops)
            return self._reassemble_pair(op, mem, value, new_ops[1])
        if isinstance(op, Store):
            return self.store(*new_ops)
        if isinstance(op, Lea):
            return self.lea(*new_ops)
        if isinstance(op, Global):
            key = (Global, op.type, self._ops_key(new_ops), (op.is_mutable, op.global_id))
            return self._unify(
                key,
                lambda: Global(self, op.type, new_ops[0], op.is_mutable, op.global_id),  # type: ignore[arg-type]
            )
        if isinstance(op, Run):
            return self.run(*new_ops)
        if isinstance(op, Hlt):
            return self.hlt(*new_ops)
        raise AssertionError(f"rebuild: unhandled primop {type(op).__name__}")

    def _reassemble_pair(self, op: PrimOp, mem: Def, value: Def,
                         ptr: Def) -> Def:
        """Pack a folded (mem, value) result back into a tuple-typed def.

        ``rebuild`` must return something of ``op.type``; when a load was
        folded away we re-tuple the components (extracts of this tuple
        fold right back to the components).  That dissolution is only
        guaranteed when both halves are discardable siblings — a
        trapping store value blocks the extract folds and would leave a
        mem token stranded inside a live tuple, which no backend can
        express.  In that case rebuild the raw load instead; it is
        merely unfolded, not wrong.
        """
        if isinstance(mem, Extract) and isinstance(value, Extract) \
                and mem.agg is value.agg:
            return mem.agg
        if self._can_discard(mem) and self._can_discard(value):
            return self.tuple_((mem, value))
        key = (Load, op.type, self._ops_key((mem, ptr)), ())
        return self._unify(key, lambda: Load(self, op.type, mem, ptr))

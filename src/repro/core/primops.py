"""Primitive operations (primops).

Primops are the pure, structural nodes of the graph.  They are immutable
and hash-consed by the :class:`~repro.core.world.World`: building the
same primop twice yields the identical object.  Together with the
folding rules in ``world.py`` this realizes the paper's claim that local
optimizations (constant folding, CSE/GVN, copy propagation, algebraic
simplification) happen *during IR construction* and hold at all times.

Side effects are made explicit: memory primops consume and produce a
``mem`` token, turning effect order into data dependence.  This is what
keeps primops floating freely in the graph until the scheduler places
them (see ``schedule.py``).

Only :class:`Slot`, :class:`Alloc` and mutable :class:`Global` carry a
world-unique id in their hash key: two distinct allocations must never
be merged by value numbering, while e.g. two loads from the same memory
and pointer may.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from .defs import Def
from .types import (
    BOOL,
    DefiniteArrayType,
    FnType,
    IndefiniteArrayType,
    MemType,
    PrimType,
    PtrType,
    StructType,
    TupleType,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover
    from .world import World


class PrimOp(Def):
    """Base class of all primops.  Instances are created by the world only."""

    __slots__ = ()

    def attrs(self) -> tuple:
        """Extra hash-consing key components beyond (class, type, ops)."""
        return ()

    def op_name(self) -> str:
        return type(self).__name__.lower()


class Literal(PrimOp):
    """A compile-time constant of primitive type.

    Integer literal values are stored in **canonical** form: unsigned
    representation modulo the bitwidth (booleans as Python bools).  The
    world's factory normalizes on the way in; :meth:`signed_value`
    recovers the two's-complement reading.
    """

    __slots__ = ("value",)

    def __init__(self, world: "World", type: PrimType, value):
        self.value = value
        super().__init__(world, type, (), str(value))

    def attrs(self) -> tuple:
        return (self.value,)

    @property
    def prim_type(self) -> PrimType:
        assert isinstance(self.type, PrimType)
        return self.type

    def signed_value(self) -> int:
        """Two's-complement signed reading of an integer literal."""
        assert self.prim_type.is_int
        width = self.prim_type.bitwidth
        value = self.value
        if value >= 1 << (width - 1):
            value -= 1 << width
        return value

    def public_value(self):
        """The value as seen by the surface language / interpreter."""
        if self.prim_type.is_signed:
            return self.signed_value()
        return self.value

    def op_name(self) -> str:
        return "literal"


class Bottom(PrimOp):
    """An undefined value of any type (unreachable/uninitialized)."""

    __slots__ = ()

    def __init__(self, world: "World", type: Type):
        super().__init__(world, type, (), "bottom")


class ArithKind(enum.Enum):
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"

    @property
    def is_commutative(self) -> bool:
        return self in (ArithKind.ADD, ArithKind.MUL, ArithKind.AND,
                        ArithKind.OR, ArithKind.XOR)

    @property
    def is_bitop(self) -> bool:
        return self in (ArithKind.AND, ArithKind.OR, ArithKind.XOR,
                        ArithKind.SHL, ArithKind.SHR)

    @property
    def is_division(self) -> bool:
        return self in (ArithKind.DIV, ArithKind.REM)


class ArithOp(PrimOp):
    """A binary arithmetic/bitwise operation on two same-typed scalars."""

    __slots__ = ("kind",)

    def __init__(self, world: "World", kind: ArithKind, lhs: Def, rhs: Def):
        self.kind = kind
        super().__init__(world, lhs.type, (lhs, rhs), kind.value)

    def attrs(self) -> tuple:
        return (self.kind,)

    @property
    def lhs(self) -> Def:
        return self.op(0)

    @property
    def rhs(self) -> Def:
        return self.op(1)

    def op_name(self) -> str:
        return self.kind.value


class MathKind(enum.Enum):
    SQRT = "sqrt"
    FABS = "fabs"
    FLOOR = "floor"
    SIN = "sin"
    COS = "cos"
    EXP = "exp"
    LOG = "log"


class MathOp(PrimOp):
    """A unary float math builtin (sqrt, fabs, floor, sin, cos, exp, log)."""

    __slots__ = ("kind",)

    def __init__(self, world: "World", kind: MathKind, value: Def):
        self.kind = kind
        super().__init__(world, value.type, (value,), kind.value)

    def attrs(self) -> tuple:
        return (self.kind,)

    @property
    def value(self) -> Def:
        return self.op(0)

    def op_name(self) -> str:
        return self.kind.value


class CmpRel(enum.Enum):
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"

    def swap(self) -> "CmpRel":
        """The relation with operands exchanged (``a < b`` == ``b > a``)."""
        return _CMP_SWAP[self]

    def negate(self) -> "CmpRel":
        return _CMP_NEGATE[self]


_CMP_SWAP = {}
_CMP_NEGATE = {}


def _init_cmp_tables() -> None:
    swap_pairs = [(CmpRel.EQ, CmpRel.EQ), (CmpRel.NE, CmpRel.NE),
                  (CmpRel.LT, CmpRel.GT), (CmpRel.LE, CmpRel.GE)]
    for a, b in swap_pairs:
        _CMP_SWAP[a] = b
        _CMP_SWAP[b] = a
    negate_pairs = [(CmpRel.EQ, CmpRel.NE), (CmpRel.LT, CmpRel.GE),
                    (CmpRel.GT, CmpRel.LE)]
    for a, b in negate_pairs:
        _CMP_NEGATE[a] = b
        _CMP_NEGATE[b] = a


_init_cmp_tables()


class Cmp(PrimOp):
    """A comparison of two same-typed scalars, yielding ``bool``."""

    __slots__ = ("rel",)

    def __init__(self, world: "World", rel: CmpRel, lhs: Def, rhs: Def):
        self.rel = rel
        super().__init__(world, BOOL, (lhs, rhs), f"cmp_{rel.value}")

    def attrs(self) -> tuple:
        return (self.rel,)

    @property
    def lhs(self) -> Def:
        return self.op(0)

    @property
    def rhs(self) -> Def:
        return self.op(1)

    def op_name(self) -> str:
        return f"cmp.{self.rel.value}"


class Cast(PrimOp):
    """A value-converting cast between scalar types (int<->float etc.)."""

    __slots__ = ()

    def __init__(self, world: "World", to: Type, value: Def):
        super().__init__(world, to, (value,), "cast")

    @property
    def value(self) -> Def:
        return self.op(0)


class Bitcast(PrimOp):
    """A bit-reinterpreting cast between same-sized types."""

    __slots__ = ()

    def __init__(self, world: "World", to: Type, value: Def):
        super().__init__(world, to, (value,), "bitcast")

    @property
    def value(self) -> Def:
        return self.op(0)


class Select(PrimOp):
    """``select(cond, tval, fval)`` — a value-level conditional.

    ``tval``/``fval`` may be of any type, including fn types: selecting
    between continuations and jumping to the result is a conditional
    branch, which is why jump threading falls out of folding.
    """

    __slots__ = ()

    def __init__(self, world: "World", cond: Def, tval: Def, fval: Def):
        super().__init__(world, tval.type, (cond, tval, fval), "select")

    @property
    def cond(self) -> Def:
        return self.op(0)

    @property
    def tval(self) -> Def:
        return self.op(1)

    @property
    def fval(self) -> Def:
        return self.op(2)


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


class Aggregate(PrimOp):
    """Base for value-level aggregate construction."""

    __slots__ = ()


class TupleVal(Aggregate):
    """Construction of a tuple value from its elements."""

    __slots__ = ()

    def __init__(self, world: "World", type: TupleType, elems: tuple[Def, ...]):
        super().__init__(world, type, elems, "tuple")

    def op_name(self) -> str:
        return "tuple"


class ArrayVal(Aggregate):
    """Construction of a definite array value from its elements."""

    __slots__ = ()

    def __init__(self, world: "World", type: DefiniteArrayType,
                 elems: tuple[Def, ...]):
        super().__init__(world, type, elems, "array")

    def op_name(self) -> str:
        return "array"


class StructVal(Aggregate):
    """Construction of a struct value from its fields."""

    __slots__ = ()

    def __init__(self, world: "World", type: StructType, fields: tuple[Def, ...]):
        super().__init__(world, type, fields, f"{type.name}.new")

    def op_name(self) -> str:
        return "struct"


class Extract(PrimOp):
    """``extract(agg, index)`` — read one component of an aggregate value."""

    __slots__ = ()

    def __init__(self, world: "World", type: Type, agg: Def, index: Def):
        super().__init__(world, type, (agg, index), "extract")

    @property
    def agg(self) -> Def:
        return self.op(0)

    @property
    def index(self) -> Def:
        return self.op(1)


class Insert(PrimOp):
    """``insert(agg, index, value)`` — a copy of ``agg`` with one slot replaced."""

    __slots__ = ()

    def __init__(self, world: "World", agg: Def, index: Def, value: Def):
        super().__init__(world, agg.type, (agg, index, value), "insert")

    @property
    def agg(self) -> Def:
        return self.op(0)

    @property
    def index(self) -> Def:
        return self.op(1)

    @property
    def value(self) -> Def:
        return self.op(2)


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------


class MemOp(PrimOp):
    """Base for primops that consume a ``mem`` token as first operand."""

    __slots__ = ()

    @property
    def mem(self) -> Def:
        return self.op(0)


class Enter(MemOp):
    """``enter(mem) : (mem, frame)`` — open a stack frame for slots."""

    __slots__ = ()

    def __init__(self, world: "World", type: TupleType, mem: Def):
        super().__init__(world, type, (mem,), "enter")


class Slot(MemOp):
    """``slot(frame) : ptr[T]`` — a stack cell in a frame.

    Each slot is unique (``slot_id`` is part of the hash key): distinct
    local variables must never be value-numbered together.
    """

    __slots__ = ("slot_id",)

    def __init__(self, world: "World", type: PtrType, frame: Def, slot_id: int):
        self.slot_id = slot_id
        super().__init__(world, type, (frame,), f"slot{slot_id}")

    def attrs(self) -> tuple:
        return (self.slot_id,)

    @property
    def frame(self) -> Def:
        return self.op(0)

    @property
    def mem(self) -> Def:  # pragma: no cover - slots hold a frame, not a mem
        raise AssertionError("slot has no mem operand")


class Alloc(MemOp):
    """``alloc(mem) : (mem, ptr[T])`` — heap allocation (unique per id)."""

    __slots__ = ("alloc_id",)

    def __init__(self, world: "World", type: TupleType, mem: Def, extra: Def,
                 alloc_id: int):
        self.alloc_id = alloc_id
        super().__init__(world, type, (mem, extra), "alloc")

    def attrs(self) -> tuple:
        return (self.alloc_id,)

    @property
    def extra(self) -> Def:
        """Run-time element count for indefinite-array allocations."""
        return self.op(1)


class Load(MemOp):
    """``load(mem, ptr) : (mem, T)``."""

    __slots__ = ()

    def __init__(self, world: "World", type: TupleType, mem: Def, ptr: Def):
        super().__init__(world, type, (mem, ptr), "load")

    @property
    def ptr(self) -> Def:
        return self.op(1)


class Store(MemOp):
    """``store(mem, ptr, value) : mem``."""

    __slots__ = ()

    def __init__(self, world: "World", type: MemType, mem: Def, ptr: Def, value: Def):
        super().__init__(world, type, (mem, ptr, value), "store")

    @property
    def ptr(self) -> Def:
        return self.op(1)

    @property
    def value(self) -> Def:
        return self.op(2)


class Lea(PrimOp):
    """``lea(ptr, index) : ptr`` — address of one component of an aggregate."""

    __slots__ = ()

    def __init__(self, world: "World", type: PtrType, ptr: Def, index: Def):
        super().__init__(world, type, (ptr, index), "lea")

    @property
    def ptr(self) -> Def:
        return self.op(0)

    @property
    def index(self) -> Def:
        return self.op(1)


class Global(PrimOp):
    """A global memory cell, yielding ``ptr[T]``.

    Mutable globals are unique per id; immutable globals (constant data
    such as string tables) are value-numbered structurally.
    """

    __slots__ = ("is_mutable", "global_id")

    def __init__(self, world: "World", type: PtrType, init: Def,
                 is_mutable: bool, global_id: int):
        self.is_mutable = is_mutable
        self.global_id = global_id
        super().__init__(world, type, (init,), "global")

    def attrs(self) -> tuple:
        return (self.is_mutable, self.global_id)

    @property
    def init(self) -> Def:
        return self.op(0)


# ---------------------------------------------------------------------------
# Partial-evaluation markers
# ---------------------------------------------------------------------------


class EvalOp(PrimOp):
    """Base of the PE markers ``run`` and ``hlt`` (identity at run time)."""

    __slots__ = ()

    @property
    def value(self) -> Def:
        return self.op(0)


class Run(EvalOp):
    """``run(f)`` — ask the partial evaluator to specialize calls to ``f``."""

    __slots__ = ()

    def __init__(self, world: "World", value: Def):
        super().__init__(world, value.type, (value,), "run")


class Hlt(EvalOp):
    """``hlt(f)`` — forbid the partial evaluator from touching calls to ``f``."""

    __slots__ = ()

    def __init__(self, world: "World", value: Def):
        super().__init__(world, value.type, (value,), "hlt")


def element_type_of(agg_type: Type, index: Def) -> Type:
    """Result type of ``extract(agg, index)`` / pointee of ``lea``.

    Tuples and structs require a literal index; arrays accept any integer
    index and vectors of a single element type.
    """
    if isinstance(agg_type, (DefiniteArrayType, IndefiniteArrayType)):
        return agg_type.elem_type
    if isinstance(agg_type, (TupleType, StructType)):
        assert isinstance(index, Literal), (
            f"indexing {agg_type} requires a literal index"
        )
        return agg_type.elements[index.value]
    raise AssertionError(f"cannot index into {agg_type}")

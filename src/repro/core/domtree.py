"""Dominator tree over a scope's CFG.

Implementation: the Cooper–Harvey–Kennedy iterative algorithm on the
reverse-postorder numbering ("A Simple, Fast Dominance Algorithm").
Good constants, no dominance frontiers needed anywhere in this system —
matching the paper's point that SSA-style reasoning in Thorin never
touches frontiers.
"""

from __future__ import annotations

from .cfg import CFG


class DomTree:
    """Immediate-dominator tree of a :class:`CFG` (reachable nodes only).

    Since the scheduler moved to the CFG's availability bitmasks
    (:meth:`CFG.dom_depth` and friends), no default pipeline path builds
    a DomTree any more — it remains as an explicit-tree view for tests
    and tools that want ``children()`` or preorder walks.  The
    ``constructed`` counter lets regression tests pin that property.
    """

    #: Total ``DomTree`` constructions, ever (observability hook; the
    #: default optimize/codegen path must leave this untouched).
    constructed = 0

    def __init__(self, cfg: CFG):
        DomTree.constructed += 1
        self.cfg = cfg
        self._idom: dict[object, object] = {}
        self._children: dict[object, list[object]] = {}
        self._depth: dict[object, int] = {}
        self._run()

    def _run(self) -> None:
        cfg = self.cfg
        rpo = cfg.nodes()
        index = {n: i for i, n in enumerate(rpo)}
        idom: dict[object, object] = {cfg.entry: cfg.entry}

        def intersect(a: object, b: object) -> object:
            while a is not b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in rpo:
                if node is cfg.entry:
                    continue
                new_idom = None
                for pred in cfg.preds(node):
                    if pred in idom:
                        new_idom = pred if new_idom is None else intersect(new_idom, pred)
                assert new_idom is not None, f"unreachable node {node} in RPO"
                if idom.get(node) is not new_idom:
                    idom[node] = new_idom
                    changed = True

        self._idom = idom
        for node in rpo:
            self._children.setdefault(node, [])
        for node in rpo:
            if node is not cfg.entry:
                self._children[idom[node]].append(node)
        self._depth[cfg.entry] = 0
        for node in rpo:
            if node is not cfg.entry:
                self._depth[node] = self._depth[idom[node]] + 1

    # ------------------------------------------------------------------

    def idom(self, node: object) -> object:
        """Immediate dominator (the entry is its own idom)."""
        return self._idom[node]

    def children(self, node: object) -> list[object]:
        return self._children[node]

    def depth(self, node: object) -> int:
        return self._depth[node]

    def dominates(self, a: object, b: object) -> bool:
        """Does *a* dominate *b* (reflexively)?"""
        while self._depth[b] > self._depth[a]:
            b = self._idom[b]
        return a is b

    def lca(self, a: object, b: object) -> object:
        """Least common ancestor in the dominator tree."""
        while self._depth[a] > self._depth[b]:
            a = self._idom[a]
        while self._depth[b] > self._depth[a]:
            b = self._idom[b]
        while a is not b:
            a = self._idom[a]
            b = self._idom[b]
        return a

"""The Thorin graph IR: types, defs, world, scopes, CFG, schedule."""

from .defs import Continuation, Def, Intrinsic, Param, Use
from .limits import DeadlineExceeded, ResourceLimitError, deadline
from .primops import ArithKind, CmpRel
from .scope import Scope, top_level_continuations
from .snapshot import Snapshot, restore_world, snapshot_world
from .world import World

__all__ = [
    "ArithKind",
    "CmpRel",
    "Continuation",
    "DeadlineExceeded",
    "Def",
    "Intrinsic",
    "Param",
    "ResourceLimitError",
    "Scope",
    "Snapshot",
    "Use",
    "World",
    "deadline",
    "restore_world",
    "snapshot_world",
    "top_level_continuations",
]

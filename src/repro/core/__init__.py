"""The Thorin graph IR: types, defs, world, scopes, CFG, schedule."""

from .defs import Continuation, Def, Intrinsic, Param, Use
from .primops import ArithKind, CmpRel
from .scope import Scope, top_level_continuations
from .world import World

__all__ = [
    "ArithKind",
    "CmpRel",
    "Continuation",
    "Def",
    "Intrinsic",
    "Param",
    "Scope",
    "Use",
    "World",
    "top_level_continuations",
]

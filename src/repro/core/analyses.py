"""Incremental analysis caching.

Scope recovery is the paper's answer to explicit nesting: structure is
*recomputed on demand* from the graph.  The pipeline demands it at ~14
call sites inside up to 8 fixed-point rounds, so without memoization the
compiler spends most of its time re-deriving scopes, CFGs, dominator
trees and schedules that did not change.

:class:`AnalysisManager` memoizes these analyses per entry continuation
and invalidates them with two tiers of precision:

* **generation check** — :attr:`World.generation <repro.core.world.World.generation>`
  is a monotone counter bumped by every graph mutation (and only by
  mutations).  Whole-world analyses (``top_level``) and derived memos
  (``free_params``) are stamped with it and are free to reuse while it
  stands still.
* **touched sets** — every use-edge rewiring funnels through
  ``Def._set_ops``, which reports the user and its new operands to the
  manager.  A cached scope is dropped exactly when a touched def is a
  member; untouched scopes survive the mutation.  Registry surgery
  (param append/remove, GC pruning) reports the continuations involved;
  anything that cannot say what it touched (snapshot restore) forces a
  drop-all.

Soundness of the membership test: a mutation changes the scope of an
entry ``e`` only if it adds or removes a use-edge incident to a member
of ``Scope(e)``.  For an added edge the new operand is a member; for a
removed edge the *user* was already a member (any user of a member is
flood-reachable, hence itself a member of the old scope).  Both are in
the reported touched set, so a cached scope that survives is
bit-identical to a fresh recomputation — including iteration order,
which downstream printing and pass determinism rely on.  This is what
makes ``cache_analyses`` on/off differentially checkable.

The pending touched set is bounded (:data:`PENDING_CAP`); overflow
escalates to drop-all rather than an unbounded sync cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from .alias import AliasAnalysis
from .cfg import CFG
from .defs import Continuation, Def
from .domtree import DomTree
from .looptree import LoopTree
from .schedule import Placement, Schedule
from .scope import Scope, top_level_continuations

if TYPE_CHECKING:  # pragma: no cover
    from .world import World

# Beyond this many distinct touched defs between queries, tracking stops
# paying for itself: fall back to dropping every cached analysis.
PENDING_CAP = 4096


class AnalysisStats:
    """Counters describing cache effectiveness (see ``PipelineStats``)."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0  # cached entries dropped by touched sets
        self.drop_alls = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "analysis_hits": self.hits,
            "analysis_misses": self.misses,
            "analysis_invalidations": self.invalidations,
            "analysis_drop_alls": self.drop_alls,
        }


class AnalysisManager:
    """Memoized ``Scope``/``CFG``/``DomTree``/``LoopTree``/``Schedule``.

    One manager per :class:`~repro.core.world.World` (created lazily via
    ``world.analyses``).  When ``enabled`` is False every query builds a
    fresh analysis — exactly the pre-caching behaviour — which is the
    differential baseline for the fuzz oracle's cache check.
    """

    def __init__(self, world: "World", *, enabled: bool = True):
        self.world = world
        self.enabled = enabled
        self.stats = AnalysisStats()
        self._scopes: dict[Continuation, Scope] = {}
        self._cfgs: dict[Continuation, CFG] = {}
        self._domtrees: dict[Continuation, DomTree] = {}
        self._looptrees: dict[Continuation, LoopTree] = {}
        self._schedules: dict[tuple[Continuation, Placement], Schedule] = {}
        self._top_level: tuple[int, tuple[Continuation, ...]] | None = None
        self._alias: AliasAnalysis | None = None
        # Reverse membership index: def -> entries whose cached scope
        # contains it.  Makes a sync O(|pending|) lookups instead of one
        # subset test per cached scope.  Entries are appended when a
        # scope is cached and validated lazily against ``_scopes`` when
        # read (dropping a scope leaves its index rows stale but inert).
        # A row is a bare Continuation until a second entry shares the
        # def — most defs belong to exactly one cached scope, and the
        # bare form avoids allocating a set per indexed def.
        self._member_index: dict[Def, Continuation | set[Continuation]] = {}
        # None means "drop everything at the next sync".
        self._pending: set[Def] | None = set()

    # ------------------------------------------------------------------
    # mutation notes (called via World._note_*)
    # ------------------------------------------------------------------

    def _record_touched(self, user: Def, ops: Iterable[Def]) -> None:
        pending = self._pending
        if pending is None or not self.enabled:
            return
        pending.add(user)
        pending.update(ops)
        if len(pending) > PENDING_CAP:
            self._pending = None

    def _record_touched_defs(self, touched: Iterable[Def]) -> None:
        pending = self._pending
        if pending is None or not self.enabled:
            return
        pending.update(touched)
        if len(pending) > PENDING_CAP:
            self._pending = None

    def _record_all(self) -> None:
        self._pending = None

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------

    def invalidate(self, touched: Iterable[Def] | None = None) -> None:
        """Public contract for passes: report the defs you touched, or
        report nothing and lose every cached analysis."""
        if touched is None:
            self._pending = None
        else:
            self._record_touched_defs(touched)

    def set_enabled(self, enabled: bool) -> None:
        if not enabled:
            self._drop_all()
            self._pending = set()
        self.enabled = enabled

    def _drop_all(self) -> None:
        dropped = len(self._scopes)
        self._scopes.clear()
        self._cfgs.clear()
        self._domtrees.clear()
        self._looptrees.clear()
        self._schedules.clear()
        self._top_level = None
        self._alias = None
        self._member_index.clear()
        self.stats.invalidations += dropped
        self.stats.drop_alls += 1

    def _drop_entry(self, entry: Continuation) -> None:
        del self._scopes[entry]
        self._cfgs.pop(entry, None)
        self._domtrees.pop(entry, None)
        self._looptrees.pop(entry, None)
        for placement in Placement:
            self._schedules.pop((entry, placement), None)
        self.stats.invalidations += 1

    def _sync(self) -> None:
        pending = self._pending
        if pending is None:
            self._drop_all()
            self._pending = set()
            return
        if not pending:
            return
        index = self._member_index
        drop: set[Continuation] = set()
        for d in pending:
            entries = index.get(d)
            if entries is None:
                continue
            if entries.__class__ is set:
                drop.update(entries)
            else:
                drop.add(entries)
        for entry in drop:
            if entry in self._scopes:
                self._drop_entry(entry)
        pending.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def scope(self, entry: Continuation) -> Scope:
        if not self.enabled:
            return Scope(entry)
        self._sync()
        return self._scope_synced(entry)

    def _scope_synced(self, entry: Continuation) -> Scope:
        scope = self._scopes.get(entry)
        if scope is None:
            self.stats.misses += 1
            scope = Scope(entry)
            self._scopes[entry] = scope
            index = self._member_index
            for d in scope._defs:
                members = index.get(d)
                if members is None:
                    index[d] = entry
                elif members.__class__ is set:
                    members.add(entry)
                elif members is not entry:
                    index[d] = {members, entry}
        else:
            self.stats.hits += 1
        return scope

    def cfg(self, entry: Continuation) -> CFG:
        if not self.enabled:
            return CFG(Scope(entry))
        self._sync()
        return self._cfg_synced(entry)

    def _cfg_synced(self, entry: Continuation) -> CFG:
        cfg = self._cfgs.get(entry)
        if cfg is None:
            self.stats.misses += 1
            cfg = CFG(self._scope_synced(entry))
            self._cfgs[entry] = cfg
        else:
            self.stats.hits += 1
        return cfg

    def domtree(self, entry: Continuation) -> DomTree:
        if not self.enabled:
            return DomTree(CFG(Scope(entry)))
        self._sync()
        return self._domtree_synced(entry)

    def _domtree_synced(self, entry: Continuation) -> DomTree:
        tree = self._domtrees.get(entry)
        if tree is None:
            self.stats.misses += 1
            tree = DomTree(self._cfg_synced(entry))
            self._domtrees[entry] = tree
        else:
            self.stats.hits += 1
        return tree

    def looptree(self, entry: Continuation) -> LoopTree:
        if not self.enabled:
            return LoopTree(CFG(Scope(entry)))
        self._sync()
        return self._looptree_synced(entry)

    def _looptree_synced(self, entry: Continuation) -> LoopTree:
        tree = self._looptrees.get(entry)
        if tree is None:
            self.stats.misses += 1
            tree = LoopTree(self._cfg_synced(entry))
            self._looptrees[entry] = tree
        else:
            self.stats.hits += 1
        return tree

    def schedule(self, entry: Continuation,
                 placement: Placement = Placement.SMART) -> Schedule:
        if not self.enabled:
            return Schedule(Scope(entry), placement)
        self._sync()
        schedule = self._schedules.get((entry, placement))
        if schedule is None:
            self.stats.misses += 1
            schedule = Schedule(
                self._scope_synced(entry), placement,
                cfg=self._cfg_synced(entry),
                domtree=self._domtree_synced(entry),
                looptree=self._looptree_synced(entry),
            )
            self._schedules[(entry, placement)] = schedule
        else:
            self.stats.hits += 1
        return schedule

    def alias(self) -> AliasAnalysis:
        """The world's alias analysis, memoized per mutation generation.

        Alias classes and escape verdicts depend on use edges anywhere
        in the graph, so — like ``top_level`` — the cache is stamped
        with the whole-world generation rather than tracked per scope.
        """
        if not self.enabled:
            return AliasAnalysis(self.world)
        generation = self.world.generation
        cached = self._alias
        if cached is not None and cached.generation == generation:
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        result = AliasAnalysis(self.world)
        self._alias = result
        return result

    def top_level(self) -> list[Continuation]:
        if not self.enabled:
            return top_level_continuations(self.world)
        generation = self.world.generation
        cached = self._top_level
        if cached is not None and cached[0] == generation:
            self.stats.hits += 1
            return list(cached[1])
        self.stats.misses += 1
        result = top_level_continuations(self.world)
        self._top_level = (generation, tuple(result))
        return result

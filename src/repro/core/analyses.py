"""Truly incremental analysis caching: patch, don't recompute.

Scope recovery is the paper's answer to explicit nesting: structure is
*recomputed on demand* from the graph.  The pipeline demands it at ~14
call sites inside up to 8 fixed-point rounds, so without memoization the
compiler spends most of its time re-deriving scopes, CFGs and schedules
that did not change.

:class:`AnalysisManager` memoizes these analyses per entry continuation
and — instead of dropping a cached artifact whenever anything near it
moved — classifies every mutation and applies the cheapest sound patch.

The patch algebra
-----------------

Every use-edge rewiring funnels through ``Def._set_ops``, which reports
the **user** (the def whose operand edges changed) and its new
**operands** (defs that just gained a user).  Registry surgery (param
append/remove, GC pruning, external marking) reports the continuations
involved as **structural**; a wholesale rebuild (snapshot restore)
reports nothing and forces a drop-all.  For a cached scope ``S`` with
entry ``e`` the per-mutation consequences are:

* **operand gained a user, operand is ``e``** — no-op.  The scope flood
  never follows uses of its own entry (a mere reference to ``e`` must
  not pull the referrer in), so new users of ``e`` cannot change
  ``S``'s membership.  This is the single most common event in a
  specializing pipeline (every ``run(f)`` marker, every new call site)
  and the old manager dropped ``scope(f)`` for each one.
* **operand gained a user, operand is a member ≠ e** — growth only.  A
  new edge *into* the scope can add members but never remove any, so
  the flood is resumed from the touched member's use-list
  (:meth:`Scope._grow`), splicing new members in place.  Canonical gid
  member order makes the patched scope bit-identical to a fresh flood.
* **user's operands changed, user is a member ≠ e** — possible shrink:
  the member may have lost the use-chain that kept it (or others)
  inside.  The scope is re-flooded at the next query and *diffed*: on
  identical membership the old object (and its derived artifacts,
  validated separately) survives; otherwise it is replaced.
* **user is ``e`` itself (body rewire)** — membership is untouched
  (the flood inserts users of members, never operands of ``e``), but
  ``e``'s successor edges changed: the scope survives as-is and only
  the CFG is revalidated/refreshed in place.
* **structural surgery on a member** — seeds or registry changed;
  the affected entries rebuild unconditionally.

Derived artifacts follow the same discipline.  A CFG whose scope
survived a body rewire re-derives just the dirty nodes' successor lists
plus the address-taken set; if both match, the CFG *and* its RPO,
dominance masks and loop tree are provably unchanged and survive.
Otherwise the CFG object is rebuilt in place on the surviving scope
(:meth:`CFG._refresh`) — the expensive flood is never repeated.
Schedules hang on exact use-lists, so any touch of a scope's members
drops them (they rebuild from the surviving scope/CFG/loop tree).

Whole-world analyses: ``top_level`` is stamped with
:attr:`World.structural_generation`, which primop creation does not
bump — a fresh primop has no users, so it cannot change which
continuations are nested (reaching sets propagate def → user only).
``alias`` escape verdicts hang on arbitrary use edges and keep the
full-generation stamp.

Soundness of the membership test: a mutation changes the scope of an
entry ``e`` only if it adds or removes a use-edge incident to a member
of ``Scope(e)``.  For an added edge the new operand is a member; for a
removed edge the *user* was already a member (any user of a member is
flood-reachable, hence itself a member of the old scope — unless the
member is ``e`` itself, whose uses the flood ignores).  Both sides are
in the reported note, so every affected entry is marked — and a scope
that survives unmarked is bit-identical to a fresh recomputation,
which is what keeps ``cache_analyses`` on/off differentially checkable
(the fuzz oracle's ``cache``/``incremental`` stages).

Setting :attr:`AnalysisManager.incremental` to ``False`` reverts to
the historical drop-on-touch behaviour (member touched → entry
dropped), which the ``incremental(static)`` oracle stage uses as the
differential baseline for the patching logic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from .alias import AliasAnalysis
from .cfg import CFG
from .defs import Continuation, Def
from .domtree import DomTree
from .looptree import LoopTree
from .schedule import Placement, Schedule
from .scope import Scope, top_level_continuations

if TYPE_CHECKING:  # pragma: no cover
    from .world import World

_MISSING = object()


class AnalysisStats:
    """Counters describing cache effectiveness (see ``PipelineStats``)."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0   # cached scopes actually dropped/replaced
        self.drop_alls = 0
        self.scope_patches = 0   # scopes grown in place
        self.scope_refloods = 0  # stale scopes revalidated by re-flooding
        self.scope_survivals = 0  # re-floods that confirmed identical membership
        self.cfg_patches = 0     # CFGs rebuilt in place on a surviving scope
        self.cfg_survivals = 0   # CFGs proven unchanged after body rewires

    def snapshot(self) -> dict[str, int]:
        return {
            "analysis_hits": self.hits,
            "analysis_misses": self.misses,
            "analysis_invalidations": self.invalidations,
            "analysis_drop_alls": self.drop_alls,
            "analysis_scope_patches": self.scope_patches,
            "analysis_scope_refloods": self.scope_refloods,
            "analysis_scope_survivals": self.scope_survivals,
            "analysis_cfg_patches": self.cfg_patches,
            "analysis_cfg_survivals": self.cfg_survivals,
        }


class AnalysisManager:
    """Memoized ``Scope``/``CFG``/``LoopTree``/``Schedule`` (+``DomTree``).

    One manager per :class:`~repro.core.world.World` (created lazily via
    ``world.analyses``).  When ``enabled`` is False every query builds a
    fresh analysis — exactly the pre-caching behaviour — which is the
    differential baseline for the fuzz oracle's cache check.  When
    ``incremental`` is False, mutations drop touched entries instead of
    patching them — the baseline for the incremental check.
    """

    def __init__(self, world: "World", *, enabled: bool = True):
        self.world = world
        self.enabled = enabled
        self.incremental = True
        self.stats = AnalysisStats()
        self._scopes: dict[Continuation, Scope] = {}
        self._cfgs: dict[Continuation, CFG] = {}
        self._domtrees: dict[Continuation, DomTree] = {}
        self._looptrees: dict[Continuation, LoopTree] = {}
        self._schedules: dict[tuple[Continuation, Placement], Schedule] = {}
        self._top_level: tuple[int, tuple[Continuation, ...]] | None = None
        self._alias: AliasAnalysis | None = None
        # Reverse membership index: def -> entries whose cached scope
        # contains it.  Makes a sync O(|pending|) lookups instead of one
        # subset test per cached scope.  Rows are appended when a scope
        # is cached or grows and validated lazily against the scope's
        # member dict when read (dropping or shrinking a scope leaves
        # its rows stale but inert).  A row is a bare Continuation until
        # a second entry shares the def — most defs belong to exactly
        # one cached scope, and the bare form avoids a set per def.
        self._member_index: dict[Def, Continuation | set[Continuation]] = {}
        # Pending mutation notes, classified lazily at the next sync.
        self._pending_users: set[Def] = set()
        self._pending_refs: set[Def] = set()
        self._pending_structural: set[Def] = set()
        self._dropall = False
        # Per-entry repair marks, produced by ``_sync`` and consumed by
        # the ``_*_synced`` validators at the next query of that entry —
        # entries that are never queried again never pay for repair.
        #
        # _stale: re-flood + diff needed.  Value = the touched members
        #   (used to scope the CFG revalidation), or None for an
        #   unconditional rebuild (structural surgery).
        # _grow: members that gained users; resume the flood from them.
        # _dirty_cfg: member continuations whose bodies were rewired
        #   while the scope provably survived; None = refresh without
        #   checking.
        self._stale: dict[Continuation, set[Def] | None] = {}
        self._grow: dict[Continuation, set[Def]] = {}
        self._dirty_cfg: dict[Continuation, set[Continuation] | None] = {}

    # ------------------------------------------------------------------
    # mutation notes (called via World._note_*)
    # ------------------------------------------------------------------

    def _record_touched(self, user: Def, ops: Iterable[Def]) -> None:
        if self._dropall or not self.enabled:
            return
        self._pending_users.add(user)
        self._pending_refs.update(ops)

    def _record_structural(self, touched: Iterable[Def]) -> None:
        if self._dropall or not self.enabled:
            return
        self._pending_structural.update(touched)

    def _record_all(self) -> None:
        self._dropall = True

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------

    def invalidate(self, touched: Iterable[Def] | None = None) -> None:
        """Public contract for passes: report the defs you touched, or
        report nothing and lose every cached analysis."""
        if touched is None:
            self._dropall = True
        else:
            self._record_structural(touched)

    def set_enabled(self, enabled: bool) -> None:
        if not enabled:
            self._drop_all()
        self.enabled = enabled

    def _drop_all(self) -> None:
        dropped = len(self._scopes)
        self._scopes.clear()
        self._cfgs.clear()
        self._domtrees.clear()
        self._looptrees.clear()
        self._schedules.clear()
        self._top_level = None
        self._alias = None
        self._member_index.clear()
        self._pending_users.clear()
        self._pending_refs.clear()
        self._pending_structural.clear()
        self._stale.clear()
        self._grow.clear()
        self._dirty_cfg.clear()
        self._dropall = False
        self.stats.invalidations += dropped
        self.stats.drop_alls += 1

    def _drop_entry(self, entry: Continuation) -> None:
        del self._scopes[entry]
        self._cfgs.pop(entry, None)
        self._drop_derived(entry)
        self._stale.pop(entry, None)
        self._grow.pop(entry, None)
        self._dirty_cfg.pop(entry, None)
        self.stats.invalidations += 1

    def _drop_derived(self, entry: Continuation) -> None:
        """Drop everything hanging off *entry*'s CFG (but not the scope)."""
        self._domtrees.pop(entry, None)
        self._looptrees.pop(entry, None)
        for placement in Placement:
            self._schedules.pop((entry, placement), None)

    def _drop_schedules(self, entry: Continuation) -> None:
        self._domtrees.pop(entry, None)
        for placement in Placement:
            self._schedules.pop((entry, placement), None)

    # ------------------------------------------------------------------
    # sync: classify pending notes into per-entry repair marks
    # ------------------------------------------------------------------

    def _entries_of(self, d: Def):
        rows = self._member_index.get(d)
        if rows is None:
            return ()
        if rows.__class__ is set:
            return rows
        return (rows,)

    def _sync(self) -> None:
        if self._dropall:
            self._drop_all()
            return
        users = self._pending_users
        refs = self._pending_refs
        structural = self._pending_structural
        if not users and not refs and not structural:
            return
        if not self.incremental:
            self._sync_drop_on_touch(users | refs | structural)
            return
        scopes = self._scopes
        stale = self._stale
        dirty = self._dirty_cfg

        for d in structural:
            # Registry/param surgery on d: its own cached scope must
            # rebuild from scratch (the flood seeds changed), ...
            if d in scopes:
                stale[d] = None
            users.add(d)  # ... and containing scopes re-flood below.
        for d in users:
            for entry in self._entries_of(d):
                scope = scopes.get(entry)
                if scope is None or d not in scope._defs:
                    continue  # stale index row
                if d is entry and d not in structural:
                    # The entry's own body rewire: membership provably
                    # unaffected, only control edges (and placements).
                    if entry not in stale:
                        cur = dirty.get(entry, _MISSING)
                        if cur is _MISSING:
                            dirty[entry] = {entry}
                        elif cur is not None:
                            cur.add(entry)
                        self._drop_schedules(entry)
                    continue
                cur = stale.get(entry, _MISSING)
                if cur is _MISSING:
                    stale[entry] = {d}
                    self._drop_schedules(entry)
                elif cur is not None:
                    cur.add(d)
        grow = self._grow
        for d in refs:
            for entry in self._entries_of(d):
                if d is entry:
                    continue  # a new reference to the entry: no-op
                if entry in stale:
                    continue  # the re-flood will pick up any growth
                scope = scopes.get(entry)
                if scope is None or d not in scope._defs:
                    continue
                bucket = grow.get(entry)
                if bucket is None:
                    grow[entry] = {d}
                else:
                    bucket.add(d)
        users.clear()
        refs.clear()
        structural.clear()

    def _sync_drop_on_touch(self, pending: set[Def]) -> None:
        """Legacy invalidation: any touched member drops its entries."""
        drop: set[Continuation] = set()
        for d in pending:
            for entry in self._entries_of(d):
                drop.add(entry)
        for entry in drop:
            if entry in self._scopes:
                self._drop_entry(entry)
        self._pending_users.clear()
        self._pending_refs.clear()
        self._pending_structural.clear()

    # ------------------------------------------------------------------
    # per-entry validation (consumes repair marks lazily)
    # ------------------------------------------------------------------

    def _index_members(self, entry: Continuation, members) -> None:
        index = self._member_index
        for d in members:
            rows = index.get(d)
            if rows is None:
                index[d] = entry
            elif rows.__class__ is set:
                rows.add(entry)
            elif rows is not entry:
                index[d] = {rows, entry}

    def _scope_synced(self, entry: Continuation) -> Scope:
        scope = self._scopes.get(entry)
        if scope is None:
            self.stats.misses += 1
            scope = Scope(entry)
            self._scopes[entry] = scope
            self._index_members(entry, scope._defs)
            return scope
        flags = self._stale.pop(entry, _MISSING)
        if flags is not _MISSING:
            self._grow.pop(entry, None)
            return self._revalidate(entry, scope, flags)
        sources = self._grow.pop(entry, None)
        if sources:
            added = scope._grow(sources)
            if added:
                self.stats.scope_patches += 1
                self._index_members(entry, added)
                # Membership grew: every node's in-scope checks may now
                # answer differently — refresh the CFG unconditionally
                # (on the surviving scope object) at its next query.
                self._dirty_cfg[entry] = None
                self._drop_schedules(entry)
        self.stats.hits += 1
        return scope

    def _revalidate(self, entry: Continuation, scope: Scope,
                    flags: set[Def] | None) -> Scope:
        self.stats.scope_refloods += 1
        fresh = Scope(entry)
        # Both member dicts are gid-canonicalized, so dict equality
        # (same key set) implies identical iteration order too.
        if flags is not None and fresh._defs == scope._defs:
            self.stats.scope_survivals += 1
            # Same members, but some bodies/edges among them changed:
            # keep the scope and re-validate the CFG against exactly the
            # touched continuations.  Schedules were dropped at marking.
            touched_conts = {d for d in flags if isinstance(d, Continuation)}
            cur = self._dirty_cfg.get(entry, _MISSING)
            if not touched_conts or cur is None:
                self._dirty_cfg[entry] = None
            elif cur is _MISSING:
                self._dirty_cfg[entry] = touched_conts
            else:
                cur |= touched_conts
            return scope
        self.stats.invalidations += 1
        self._scopes[entry] = fresh
        self._index_members(entry, fresh._defs)
        self._cfgs.pop(entry, None)
        self._drop_derived(entry)
        self._dirty_cfg.pop(entry, None)
        return fresh

    def _cfg_synced(self, entry: Continuation) -> CFG:
        scope = self._scope_synced(entry)
        cfg = self._cfgs.get(entry)
        if cfg is None:
            self._dirty_cfg.pop(entry, None)
            self.stats.misses += 1
            cfg = CFG(scope)
            self._cfgs[entry] = cfg
            return cfg
        dirty = self._dirty_cfg.pop(entry, _MISSING)
        if dirty is not _MISSING:
            if dirty is not None and cfg._still_valid(dirty):
                self.stats.cfg_survivals += 1
            else:
                cfg._refresh()
                self.stats.cfg_patches += 1
                self._looptrees.pop(entry, None)
                self._domtrees.pop(entry, None)
        self.stats.hits += 1
        return cfg

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def scope(self, entry: Continuation) -> Scope:
        if not self.enabled:
            return Scope(entry)
        self._sync()
        return self._scope_synced(entry)

    def cfg(self, entry: Continuation) -> CFG:
        if not self.enabled:
            return CFG(Scope(entry))
        self._sync()
        return self._cfg_synced(entry)

    def domtree(self, entry: Continuation) -> DomTree:
        """Explicit dominator tree (test/tooling API; the pipeline's
        scheduling path answers dominance from CFG bitmasks instead)."""
        if not self.enabled:
            return DomTree(CFG(Scope(entry)))
        self._sync()
        tree = self._domtrees.get(entry)
        if tree is None:
            self.stats.misses += 1
            tree = DomTree(self._cfg_synced(entry))
            self._domtrees[entry] = tree
        else:
            self.stats.hits += 1
        return tree

    def looptree(self, entry: Continuation) -> LoopTree:
        if not self.enabled:
            return LoopTree(CFG(Scope(entry)))
        self._sync()
        return self._looptree_synced(entry)

    def _looptree_synced(self, entry: Continuation) -> LoopTree:
        cfg = self._cfg_synced(entry)
        tree = self._looptrees.get(entry)
        if tree is None:
            self.stats.misses += 1
            tree = LoopTree(cfg)
            self._looptrees[entry] = tree
        else:
            self.stats.hits += 1
        return tree

    def schedule(self, entry: Continuation,
                 placement: Placement = Placement.SMART) -> Schedule:
        if not self.enabled:
            return Schedule(Scope(entry), placement)
        self._sync()
        looptree = self._looptree_synced(entry)  # validates scope + CFG
        schedule = self._schedules.get((entry, placement))
        if schedule is None:
            self.stats.misses += 1
            schedule = Schedule(
                self._scopes[entry], placement,
                cfg=self._cfgs[entry],
                looptree=looptree,
            )
            self._schedules[(entry, placement)] = schedule
        else:
            self.stats.hits += 1
        return schedule

    def alias(self) -> AliasAnalysis:
        """The world's alias analysis, memoized per mutation generation.

        Alias classes and escape verdicts depend on use edges anywhere
        in the graph, so the cache is stamped with the whole-world
        generation rather than tracked per scope.
        """
        if not self.enabled:
            return AliasAnalysis(self.world)
        generation = self.world.generation
        cached = self._alias
        if cached is not None and cached.generation == generation:
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        result = AliasAnalysis(self.world)
        self._alias = result
        return result

    def top_level(self) -> list[Continuation]:
        if not self.enabled:
            return top_level_continuations(self.world)
        generation = self.world.structural_generation
        cached = self._top_level
        if cached is not None and cached[0] == generation:
            self.stats.hits += 1
            return list(cached[1])
        self.stats.misses += 1
        result = top_level_continuations(self.world)
        self._top_level = (generation, tuple(result))
        return result

"""Whole-``World`` checkpoints: serialize and restore the IR universe.

A snapshot captures *everything* that makes a :class:`~repro.core.world.
World` behave the way it does: the continuation registry (in order),
every parameter, every primop together with its membership in the
hash-consing table, the external and intrinsic registries, the id
counters (``gid``/``slot``/``alloc``/``global``) and the construction
stats.  Restoring reproduces each def with its **original gid and
name**, rebuilds the use-lists through the ordinary ``_set_ops`` path,
and re-keys the value-numbering table — so a restored world is
indistinguishable from the original to every pass, verifier, and
backend, and re-serializing it yields byte-identical JSON.

Two properties drive the design:

* **Fidelity over invariants.**  Snapshots exist so the optimization
  pipeline can roll back after a *buggy* pass; the world being captured
  may therefore be corrupt.  Defs are rebuilt via ``object.__new__`` +
  ``Def.__init__`` rather than the world's folding factories, bodies are
  installed with raw ``_set_ops`` (no arity assertions), and defs that
  are reachable from bodies but missing from the registries ("ghosts")
  are captured and restored as ghosts.
* **Restore in place.**  ``optimize`` mutates the caller's world, so a
  rollback must land in the *same* ``World`` object
  (``restore_world(snap, into=world)``): registries are cleared and
  rebuilt, counters overwritten, and the stale defs simply become
  unreachable.

Types need no per-world state — they are interned in a global table —
so the snapshot stores a structural type table indexed by first
encounter, which is itself deterministic.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from .defs import Continuation, Def, Param
from .primops import (
    Alloc,
    ArithKind,
    ArithOp,
    ArrayVal,
    Bitcast,
    Bottom,
    Cast,
    Cmp,
    CmpRel,
    Enter,
    Extract,
    Global,
    Hlt,
    Insert,
    Lea,
    Literal,
    Load,
    MathKind,
    MathOp,
    PrimOp,
    Run,
    Select,
    Slot,
    Store,
    StructVal,
    TupleVal,
)
from .types import (
    DefiniteArrayType,
    FnType,
    FrameType,
    IndefiniteArrayType,
    MemType,
    PrimType,
    PtrType,
    StructType,
    TupleType,
    Type,
    definite_array_type,
    fn_type,
    frame_type,
    indefinite_array_type,
    mem_type,
    prim_type,
    ptr_type,
    struct_type,
    tuple_type,
)

if TYPE_CHECKING:  # pragma: no cover
    from .world import World

SNAPSHOT_FORMAT = 1


def canonical_json(obj) -> str:
    """Deterministic JSON: sorted keys, compact separators, ASCII-safe.

    The one encoding used everywhere bytes must be reproducible —
    snapshots, compile-service cache keys, artifact files.  Two
    structurally equal objects always encode to the same string, so
    hashing the result is a sound content address.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


class SnapshotError(Exception):
    """A world could not be serialized or restored."""


# ---------------------------------------------------------------------------
# attribute codecs: the per-class "extra" state beyond (type, ops, name)
# ---------------------------------------------------------------------------

def _ident(v):
    return v


# class -> (slot names, encoders, decoders); classes not listed carry no
# extra state.  The encoded attrs are exactly ``op.attrs()`` made
# JSON-safe, which is also exactly the extra component of the world's
# hash-consing key for that class.
_ATTR_SPECS: dict[type, tuple[tuple[str, ...], tuple, tuple]] = {
    Literal: (("value",), (_ident,), (_ident,)),
    ArithOp: (("kind",), (lambda k: k.value,), (ArithKind,)),
    MathOp: (("kind",), (lambda k: k.value,), (MathKind,)),
    Cmp: (("rel",), (lambda r: r.value,), (CmpRel,)),
    Slot: (("slot_id",), (_ident,), (_ident,)),
    Alloc: (("alloc_id",), (_ident,), (_ident,)),
    Global: (("is_mutable", "global_id"), (_ident, _ident), (_ident, _ident)),
}

_PRIMOP_CLASSES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        Literal, Bottom, ArithOp, MathOp, Cmp, Cast, Bitcast, Select,
        TupleVal, ArrayVal, StructVal, Extract, Insert, Enter, Slot,
        Alloc, Load, Store, Lea, Global, Run, Hlt,
    )
}


def _encode_attrs(op: PrimOp) -> list:
    spec = _ATTR_SPECS.get(type(op))
    if spec is None:
        return []
    slots, encoders, _ = spec
    return [enc(getattr(op, slot)) for slot, enc in zip(slots, encoders)]


def _decode_attrs(cls: type, raw: list) -> dict:
    spec = _ATTR_SPECS.get(cls)
    if spec is None:
        return {}
    slots, _, decoders = spec
    if len(raw) != len(slots):
        raise SnapshotError(
            f"{cls.__name__}: expected {len(slots)} attr(s), got {len(raw)}")
    return {slot: dec(v) for slot, dec, v in zip(slots, decoders, raw)}


def table_key(op: PrimOp) -> tuple:
    """The world's hash-consing key for *op*, reconstructed generically.

    Matches every factory in :mod:`repro.core.world`: the key is
    ``(class, type, operand gids, op.attrs())``.
    """
    return (type(op), op.type, tuple(o.gid for o in op.ops), op.attrs())


# ---------------------------------------------------------------------------
# type table
# ---------------------------------------------------------------------------

class _TypeTable:
    """Structural type serialization with first-encounter indexing."""

    def __init__(self) -> None:
        self.entries: list[list] = []
        self._index: dict[Type, int] = {}

    def add(self, t: Type) -> int:
        idx = self._index.get(t)
        if idx is not None:
            return idx
        if isinstance(t, PrimType):
            entry = ["prim", t.kind.value]
        elif isinstance(t, FnType):
            entry = ["fn", [self.add(e) for e in t.param_types]]
        elif isinstance(t, TupleType):
            entry = ["tuple", [self.add(e) for e in t.elem_types]]
        elif isinstance(t, StructType):
            entry = ["struct", t.name, list(t.field_names),
                     [self.add(e) for e in t.field_types]]
        elif isinstance(t, PtrType):
            entry = ["ptr", self.add(t.pointee)]
        elif isinstance(t, DefiniteArrayType):
            entry = ["darr", self.add(t.elem_type), t.length]
        elif isinstance(t, IndefiniteArrayType):
            entry = ["iarr", self.add(t.elem_type)]
        elif isinstance(t, MemType):
            entry = ["mem"]
        elif isinstance(t, FrameType):
            entry = ["frame"]
        else:
            raise SnapshotError(f"unknown type class {type(t).__name__}")
        idx = len(self.entries)
        self.entries.append(entry)
        self._index[t] = idx
        return idx


def _decode_types(entries: list[list]) -> list[Type]:
    types: list[Type] = []
    for entry in entries:
        tag = entry[0]
        if tag == "prim":
            t = prim_type(entry[1])
        elif tag == "fn":
            t = fn_type(tuple(types[i] for i in entry[1]))
        elif tag == "tuple":
            t = tuple_type(tuple(types[i] for i in entry[1]))
        elif tag == "struct":
            t = struct_type(entry[1], tuple(entry[2]),
                            tuple(types[i] for i in entry[3]))
        elif tag == "ptr":
            t = ptr_type(types[entry[1]])
        elif tag == "darr":
            t = definite_array_type(types[entry[1]], entry[2])
        elif tag == "iarr":
            t = indefinite_array_type(types[entry[1]])
        elif tag == "mem":
            t = mem_type()
        elif tag == "frame":
            t = frame_type()
        else:
            raise SnapshotError(f"unknown type tag {tag!r}")
        types.append(t)
    return types


# ---------------------------------------------------------------------------
# capture
# ---------------------------------------------------------------------------

def _collect(world: "World") -> tuple[list[Continuation], list[PrimOp]]:
    """Every def the snapshot must carry.

    Roots are the three registries plus the value-numbering table; the
    walk follows operand edges (bodies and primop operands) and pulls in
    the owning continuation of any parameter it meets, so defs a buggy
    pass orphaned from the registries are still captured.
    """
    conts: dict[int, Continuation] = {}
    prims: dict[int, PrimOp] = {}
    stack: list[Def] = list(world._continuations)
    stack.extend(world._externals.values())
    stack.extend(world._intrinsics.values())
    stack.extend(world._primops.values())
    while stack:
        d = stack.pop()
        if isinstance(d, Param):
            d = d.continuation
        if isinstance(d, Continuation):
            if d.gid in conts:
                continue
            conts[d.gid] = d
        elif isinstance(d, PrimOp):
            if d.gid in prims:
                continue
            prims[d.gid] = d
        else:
            raise SnapshotError(
                f"unexpected def class {type(d).__name__} in graph walk")
        stack.extend(d.ops)

    registered = {id(c) for c in world._continuations}
    ordered_conts = list(world._continuations)
    ordered_conts.extend(
        c for _, c in sorted(conts.items()) if id(c) not in registered)
    ordered_prims = [op for _, op in sorted(prims.items())]
    return ordered_conts, ordered_prims


class Snapshot:
    """A plain-data capture of one world; cheap to hold, JSON on demand."""

    __slots__ = ("data",)

    def __init__(self, data: dict):
        self.data = data

    def to_json(self) -> str:
        return canonical_json(self.data)

    @classmethod
    def from_json(cls, text: str) -> "Snapshot":
        data = json.loads(text)
        if not isinstance(data, dict) or data.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError("not a world snapshot (bad format marker)")
        return cls(data)

    def restore(self, *, into: "World | None" = None) -> "World":
        return restore_world(self, into=into)


def snapshot_world(world: "World") -> Snapshot:
    """Capture *world* as plain data (see module docstring)."""
    conts, prims = _collect(world)
    types = _TypeTable()
    registered = {id(c) for c in world._continuations}
    tabled = {id(op) for op in world._primops.values()}

    cont_rows = []
    body_rows = []
    for c in conts:
        cont_rows.append([
            c.gid, c.name, types.add(c.type),
            c.intrinsic, 1 if c.is_external else 0,
            [1 if f else 0 for f in c.filter],
            [[p.gid, p.name, types.add(p.type)] for p in c.params],
            1 if id(c) in registered else 0,
        ])
        if c.has_body():
            body_rows.append([c.gid, [d.gid for d in c.ops]])

    prim_rows = []
    for op in prims:
        cls_name = type(op).__name__
        if cls_name not in _PRIMOP_CLASSES:
            raise SnapshotError(f"unknown primop class {cls_name}")
        prim_rows.append([
            op.gid, cls_name, types.add(op.type),
            [d.gid for d in op.ops], _encode_attrs(op), op.name,
            1 if id(op) in tabled else 0,
        ])

    data = {
        "format": SNAPSHOT_FORMAT,
        "name": world.name,
        "folding": world.folding,
        "counters": [world._gid, world._slot_id, world._alloc_id,
                     world._global_id],
        "stats": [world.stats.gvn_hits, world.stats.gvn_misses,
                  world.stats.folds],
        "types": types.entries,
        "continuations": cont_rows,
        "primops": prim_rows,
        "bodies": body_rows,
        "externals": [[name, c.gid] for name, c in world._externals.items()],
        "intrinsics": [[name, c.gid] for name, c in world._intrinsics.items()],
    }
    return Snapshot(data)


# ---------------------------------------------------------------------------
# restore
# ---------------------------------------------------------------------------

def _raw_def(cls: type, world: "World", type_: Type, name: str) -> Def:
    """Allocate a def of *cls* without running its class constructor."""
    d = object.__new__(cls)
    Def.__init__(d, world, type_, (), name)
    return d


def restore_world(snapshot: Snapshot | dict, *,
                  into: "World | None" = None) -> "World":
    """Rebuild the captured world; ``into`` restores in place."""
    from .world import World

    data = snapshot.data if isinstance(snapshot, Snapshot) else snapshot
    if data.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError("not a world snapshot (bad format marker)")
    types = _decode_types(data["types"])

    world = into if into is not None else World(data["name"])
    # A restore rebuilds the graph wholesale: cached analyses cannot be
    # attributed, so drop them all up front (the per-def mutation notes
    # below then short-circuit against the already-pending drop-all).
    world._note_all()
    world.name = data["name"]
    world.folding = data["folding"]
    world._primops = {}
    world._continuations = []
    world._externals = {}
    world._intrinsics = {}

    defs: dict[int, Def] = {}

    for (gid, name, type_idx, intrinsic, is_external, filt, params,
         registered) in data["continuations"]:
        cont = _raw_def(Continuation, world, types[type_idx], name)
        cont.gid = gid
        cont.params = []
        cont.is_external = bool(is_external)
        cont.intrinsic = intrinsic
        cont.filter = tuple(bool(f) for f in filt)
        for index, (pgid, pname, ptype_idx) in enumerate(params):
            param = _raw_def(Param, world, types[ptype_idx], pname)
            param.gid = pgid
            param.continuation = cont
            param.index = index
            cont.params.append(param)
            defs[pgid] = param
        defs[gid] = cont
        if registered:
            world._continuations.append(cont)

    for gid, cls_name, type_idx, op_gids, attrs, name, tabled in \
            data["primops"]:
        cls = _PRIMOP_CLASSES.get(cls_name)
        if cls is None:
            raise SnapshotError(f"unknown primop class {cls_name!r}")
        try:
            ops = tuple(defs[g] for g in op_gids)
        except KeyError as exc:
            raise SnapshotError(
                f"primop gid {gid} references unknown operand gid "
                f"{exc.args[0]}") from exc
        op = object.__new__(cls)
        for slot, value in _decode_attrs(cls, attrs).items():
            setattr(op, slot, value)
        Def.__init__(op, world, types[type_idx], ops, name)
        op.gid = gid
        defs[gid] = op
        if tabled:
            world._primops[table_key(op)] = op

    for gid, op_gids in data["bodies"]:
        try:
            ops = tuple(defs[g] for g in op_gids)
        except KeyError as exc:
            raise SnapshotError(
                f"body of continuation gid {gid} references unknown gid "
                f"{exc.args[0]}") from exc
        defs[gid]._set_ops(ops)

    for name, gid in data["externals"]:
        world._externals[name] = defs[gid]
    for name, gid in data["intrinsics"]:
        world._intrinsics[name] = defs[gid]

    (world._gid, world._slot_id, world._alloc_id,
     world._global_id) = data["counters"]
    (world.stats.gvn_hits, world.stats.gvn_misses,
     world.stats.folds) = data["stats"]
    # The generation counter is deliberately *not* part of the snapshot:
    # it must stay monotone across rollbacks so stamped memos taken
    # before the restore can never be mistaken for current.
    world._note_all()
    return world

"""Structured resource limits shared by every execution engine.

The repo has three ways to run a program (graph interpreter, bytecode
VM, nested-CPS baseline) plus the compiled-SSA baseline riding on the
VM.  Each historically raised its own flat error when a budget ran out,
which forced the fuzz oracle to pattern-match error strings.  This
module gives them a common, structured base:

* :class:`ResourceLimitError` — "a *configured* limit was hit", carrying
  ``resource`` (``"steps"``, ``"heap"``, ``"wall-clock"``, ...), the
  ``limit`` value and the ``engine`` that hit it.  Engine-specific
  subclasses multiply inherit from the engine's existing error type
  (e.g. ``class StepLimitExceeded(InterpError, ResourceLimitError)``) so
  every pre-existing ``except InterpError`` keeps working while new code
  can catch the whole family with one clause.
* :class:`DeadlineExceeded` plus the :func:`deadline` context manager —
  a preemptive wall-clock guard built on ``SIGALRM``/``setitimer``.
  Nesting-safe: an inner deadline saves and re-arms the outer timer with
  its remaining budget, so a per-pass deadline composes with a per-case
  fuzz timeout.  Off the main thread (or off Unix) it degrades to a
  no-op; callers that need a guarantee combine it with a post-hoc
  elapsed-time check.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager


class ResourceLimitError(Exception):
    """A configured resource limit was exceeded.

    Not a bug and not an engine crash: the program simply needed more
    ``resource`` than the caller allowed.  Differential oracles
    normalize this family to a trap, the same way they treat division
    by zero.
    """

    def __init__(self, resource: str, limit, engine: str,
                 message: str | None = None):
        self.resource = resource
        self.limit = limit
        self.engine = engine
        super().__init__(
            message
            or f"{engine}: {resource} limit exceeded (limit={limit})"
        )


class DeadlineExceeded(ResourceLimitError):
    """A wall-clock deadline passed before the guarded region finished."""

    def __init__(self, seconds: float, what: str = ""):
        self.seconds = seconds
        self.what = what
        where = f" in {what}" if what else ""
        super().__init__(
            "wall-clock", seconds, "deadline",
            f"deadline of {seconds:g}s exceeded{where}",
        )


def can_preempt() -> bool:
    """True when :func:`deadline` can actually interrupt (Unix main thread)."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def deadline(seconds: float | None, *, what: str = ""):
    """Raise :class:`DeadlineExceeded` if the body runs longer than *seconds*.

    ``seconds`` of ``None`` or ``<= 0`` disables the guard.  Uses
    ``ITIMER_REAL``; the previous timer and handler are saved on entry
    and restored — with the outer timer's *remaining* budget re-armed —
    on exit, so deadlines nest.  When preemption is unavailable (not the
    main thread, no ``SIGALRM``) the body runs unguarded; use
    :func:`can_preempt` plus an elapsed-time check for a fallback.
    """
    if not seconds or seconds <= 0 or not can_preempt():
        yield
        return

    def _fire(signum, frame):
        raise DeadlineExceeded(seconds, what)

    old_handler = signal.signal(signal.SIGALRM, _fire)
    old_remaining, _old_interval = signal.getitimer(signal.ITIMER_REAL)
    started = time.monotonic()
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old_handler)
        if old_remaining:
            # Re-arm the enclosing deadline with whatever it has left; if
            # it expired while we were active, fire it (almost) at once.
            left = old_remaining - (time.monotonic() - started)
            signal.setitimer(signal.ITIMER_REAL, max(left, 1e-6))

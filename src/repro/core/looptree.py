"""Loop forest of a scope's CFG.

Loops are recovered as nested strongly connected components (Tarjan SCC
applied recursively after removing back edges into each loop's headers),
yielding a loop-nesting forest and a per-node loop depth.  The scheduler
uses depths to hoist primops out of hot loops (schedule "smart"), and
the experiments report loop statistics per benchmark.
"""

from __future__ import annotations

from .cfg import CFG


class Loop:
    """One loop in the forest: headers, member nodes, children."""

    def __init__(self, parent: "Loop | None", headers: list[object],
                 nodes: set[object], depth: int):
        self.parent = parent
        self.headers = headers
        self.nodes = nodes
        self.depth = depth
        self.children: list[Loop] = []

    def __repr__(self) -> str:  # pragma: no cover
        names = ", ".join(getattr(h, "name", "?") for h in self.headers)
        return f"<Loop depth={self.depth} headers=[{names}] size={len(self.nodes)}>"


class LoopTree:
    """Loop-nesting forest with per-node depth queries."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.root = Loop(None, [], set(cfg.nodes()), 0)
        self._depth: dict[object, int] = {n: 0 for n in cfg.nodes()}
        self._innermost: dict[object, Loop] = {n: self.root for n in cfg.nodes()}
        self._discover(self.root, set(cfg.nodes()), set())

    def _discover(self, parent: Loop, region: set[object],
                  banned_edges: set[tuple[object, object]]) -> None:
        for scc in self._sccs(region, banned_edges):
            entry_like = self._headers(scc, region, banned_edges)
            loop = Loop(parent, entry_like, scc, parent.depth + 1)
            parent.children.append(loop)
            for node in scc:
                self._depth[node] = loop.depth
                self._innermost[node] = loop
            # Recurse with the back edges into the headers removed so the
            # loop itself no longer forms an SCC.
            inner_banned = set(banned_edges)
            for node in scc:
                for succ in self.cfg.succs(node):
                    if succ in entry_like:
                        inner_banned.add((node, succ))
            self._discover(loop, scc, inner_banned)

    def _headers(self, scc: set[object], region: set[object],
                 banned_edges: set[tuple[object, object]]) -> list[object]:
        headers = []
        for node in sorted(scc, key=self.cfg.rpo_index):
            for pred in self.cfg.preds(node):
                if pred not in scc and (pred, node) not in banned_edges:
                    headers.append(node)
                    break
        if not headers:  # the entry itself can head a loop
            headers = [min(scc, key=self.cfg.rpo_index)]
        return headers

    def _sccs(self, region: set[object],
              banned_edges: set[tuple[object, object]]) -> list[set[object]]:
        """Non-trivial SCCs of the sub-CFG, iterative Tarjan."""
        index: dict[object, int] = {}
        low: dict[object, int] = {}
        on_stack: set[object] = set()
        stack: list[object] = []
        sccs: list[set[object]] = []
        counter = [0]

        def strongconnect(root: object) -> None:
            work = [(root, iter(self._region_succs(root, region, banned_edges)))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter(self._region_succs(succ, region, banned_edges)))
                        )
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent_node = work[-1][0]
                    low[parent_node] = min(low[parent_node], low[node])
                if low[node] == index[node]:
                    scc: set[object] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.add(member)
                        if member is node:
                            break
                    if len(scc) > 1 or self._self_loop(node, region, banned_edges):
                        sccs.append(scc)

        for node in region:
            if node not in index:
                strongconnect(node)
        return sccs

    def _region_succs(self, node: object, region: set[object],
                      banned_edges: set[tuple[object, object]]):
        for succ in self.cfg.succs(node):
            if succ in region and (node, succ) not in banned_edges:
                yield succ

    def _self_loop(self, node: object, region: set[object],
                   banned_edges: set[tuple[object, object]]) -> bool:
        return any(s is node for s in self._region_succs(node, region, banned_edges))

    # ------------------------------------------------------------------

    def depth(self, node: object) -> int:
        """Loop-nesting depth (0 = not in any loop)."""
        return self._depth[node]

    def innermost(self, node: object):
        return self._innermost[node]

    def loops(self) -> list[Loop]:
        """All loops, preorder."""
        result: list[Loop] = []
        stack = list(self.root.children)
        while stack:
            loop = stack.pop()
            result.append(loop)
            stack.extend(loop.children)
        return result

"""First-touch undo log: checkpoints without deep serialization.

:mod:`repro.core.snapshot` checkpoints by walking the whole graph into
plain data and rebuilding every def on restore.  That is the right tool
for crash bundles (self-contained, survives the process) but far too
heavy for the optimistic per-phase checkpoints the pipeline takes on
the off chance a pass misbehaves: profiling shows deep snapshots eat a
third of a warm cached compile, and the rollback they enable almost
never fires.

An :class:`UndoLog` exploits the fact that every mutation of a
**pre-existing** def funnels through a handful of choke points:

* ``Def._set_ops`` — the single place use-edges change.  It reports the
  user *before* swapping ``_ops``, so the hook can capture the old
  operand tuple on first touch.
* ``Continuation.append_param`` / ``remove_param`` — param-list surgery
  (also rewrites the fn type and later params' indices).
* ``World.make_external`` / ``remove_external`` — the ``is_external``
  flag (the registry dict itself is covered by the eager copy).
* ``World.global_`` — a GVN hit can re-``name`` a pre-existing global.

Everything else a pass does either creates *new* defs (which a rollback
simply abandons: the restored registries don't mention them, and
replaying old operand tuples detaches them from every use list) or is
registry-only surgery covered by the eager shallow copies taken when
the log is armed.  Defs minted after the checkpoint are filtered out of
the lazy logs by a gid floor, so the log's size is proportional to the
defs a pass actually touched, not to the world.

``restore()`` reinstates absolute state — old operand tuples are
replayed through ``_set_ops`` (which maintains use lists pairwise, so
replay order is irrelevant), params/types/flags/names are reassigned,
the registry copies and counters are swapped back in — and finishes
with ``world._note_all()`` so cached analyses drop, exactly like a
snapshot restore.  The generation counter stays monotone throughout:
a rollback *advances* it.

A wholesale :func:`~repro.core.snapshot.restore_world` disarms any
active log (``_note_all`` clears ``world._undo``): after a rebuild the
logged objects no longer belong to the world and the log is meaningless.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .defs import Continuation, Def
    from .world import World


class UndoLog:
    """A cheap, armed-in-place checkpoint of one :class:`World`.

    Arm with :meth:`arm` (done by ``__init__``), mutate the world
    through its normal API, then either :meth:`restore` to roll every
    tracked mutation back or :meth:`arm` again to slide the checkpoint
    forward.  Only one log can be armed per world at a time.
    """

    def __init__(self, world: "World"):
        self.world = world
        self._ops: dict["Def", tuple] = {}
        self._params: dict["Continuation", tuple] = {}
        self._flags: dict["Continuation", bool] = {}
        self._names: dict["Def", str] = {}
        self.arm()

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """(Re)take the checkpoint here: empty lazy logs, O(1) registry
        marks, hook into the world's mutation notes.

        The big registries are append-only between prunes —
        ``_continuations`` only grows by registration, ``_primops`` only
        gains fresh GVN keys — so arming records their *lengths* and
        restoring trims back down; a prune inside the armed window
        first-touch-copies the whole registry instead.  Arming is O(1)
        in the world size, which matters because the pipeline re-arms
        before every mutating phase.
        """
        w = self.world
        self._cont_len = len(w._continuations)
        self._cont_copy: list | None = None
        self._primop_len = len(w._primops)
        self._primop_copy: dict | None = None
        self._externals = dict(w._externals)
        self._intrinsics = dict(w._intrinsics)
        self._counters = (w._gid, w._slot_id, w._alloc_id, w._global_id)
        self._stats = (w.stats.gvn_hits, w.stats.gvn_misses, w.stats.folds)
        self._gid_floor = w._gid
        self._ops.clear()
        self._params.clear()
        self._flags.clear()
        self._names.clear()
        w._undo = self

    @property
    def armed(self) -> bool:
        return self.world._undo is self

    # ------------------------------------------------------------------
    # first-touch hooks (called from World/defs mutation choke points,
    # always *before* the mutation lands)
    # ------------------------------------------------------------------

    def _on_touched(self, user: "Def") -> None:
        if user.gid > self._gid_floor or user in self._ops:
            return
        self._ops[user] = user._ops

    def _on_params(self, cont: "Continuation") -> None:
        if cont.gid > self._gid_floor or cont in self._params:
            return
        self._params[cont] = (tuple(cont.params), cont.type)

    def _on_external(self, cont: "Continuation") -> None:
        if cont.gid > self._gid_floor or cont in self._flags:
            return
        self._flags[cont] = cont.is_external

    def _on_rename(self, op: "Def") -> None:
        if op.gid > self._gid_floor or op in self._names:
            return
        self._names[op] = op.name

    def _on_prune_continuations(self) -> None:
        if self._cont_copy is None:
            # Up to the first prune the registry has only been appended
            # to, so the armed image is exactly the prefix.
            self._cont_copy = list(
                self.world._continuations[:self._cont_len])

    def _on_prune_primops(self) -> None:
        if self._primop_copy is None:
            from itertools import islice

            self._primop_copy = dict(
                islice(self.world._primops.items(), self._primop_len))

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------

    def restore(self) -> None:
        """Roll the world back to the armed checkpoint and re-arm there.

        Mirrors :func:`~repro.core.snapshot.restore_world` semantics:
        counters and stats are reinstated, cached analyses are dropped
        via ``_note_all``, and the generation counter keeps moving
        forward.  Defs created since the checkpoint become garbage —
        absent from the restored registries and detached from every
        surviving use list.
        """
        w = self.world
        # Params/types first so replayed bodies see the original arity.
        for cont, (params, type) in self._params.items():
            cont.params = list(params)
            for index, param in enumerate(cont.params):
                param.index = index
            cont.type = type
        # Absolute-state replay: _set_ops maintains use lists pairwise,
        # so the order of replay is irrelevant.  Replaying notes each
        # user again, but every one is already in the log (no growth).
        for user, old_ops in list(self._ops.items()):
            user._set_ops(old_ops)
        for cont, flag in self._flags.items():
            cont.is_external = flag
        for op, name in self._names.items():
            op.name = name
        if self._cont_copy is not None:
            w._continuations = list(self._cont_copy)
        else:
            del w._continuations[self._cont_len:]
        if self._primop_copy is not None:
            w._primops = dict(self._primop_copy)
        else:
            # Fresh GVN keys land at the end of the insertion-ordered
            # table; popitem() peels them off most-recent-first.
            for _ in range(len(w._primops) - self._primop_len):
                w._primops.popitem()
        w._externals = dict(self._externals)
        w._intrinsics = dict(self._intrinsics)
        (w._gid, w._slot_id, w._alloc_id, w._global_id) = self._counters
        (w.stats.gvn_hits, w.stats.gvn_misses,
         w.stats.folds) = self._stats
        w._note_all()  # disarms the log (wholesale change)
        self.arm()

"""Fork-based process pools shared by the fuzzer and the compile server.

Two tools live here:

* :func:`map_cases` — the fuzz CLI's one-shot fan-out: lazily map a
  function over a case stream on N forked processes, results in
  submission order.  Extracted from ``fuzz/cli.py`` so the serve smoke
  driver and benchmarks can reuse it.
* :class:`WorkerPool` / :class:`ForkWorker` — *persistent* crash-
  isolated workers for the compile service.  Each worker is a forked
  child on a duplex pipe; a job that crashes the child (segfault,
  ``SIGKILL`` fault injection, runaway recursion) surfaces as a
  structured :class:`WorkerCrash` in the parent while the pool respawns
  the seat, so one poisoned request never takes the server down.

Fork (not spawn) is deliberate in both cases: children inherit the
loaded modules and the handler closure, so there is no re-import or
re-pickle cost per seat, and handlers may close over rich objects.
POSIX-only, like the rest of the fuzz tooling.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
import traceback


def map_cases(worker, cases, jobs):
    """Lazily map *worker* over *cases*, in order, on *jobs* processes.

    ``jobs <= 1`` degrades to plain in-process ``map``.  Parallel runs
    use a fork-context pool (workers inherit the loaded modules; no
    re-import cost per task) and ``imap`` so results come back in
    submission order — the campaign report stays deterministic.
    """
    if jobs <= 1:
        yield from map(worker, cases)
        return
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=jobs) as pool:
        yield from pool.imap(worker, cases, chunksize=1)


class WorkerCrash(Exception):
    """A forked worker died (or hung past its deadline) mid-job.

    Distinct from an *error result*: the handler never got to reply.
    Carries enough for the caller to write a crash bundle — the job
    that killed the worker and how the death was observed.
    """

    def __init__(self, reason: str, job=None, exitcode: int | None = None):
        self.reason = reason
        self.job = job
        self.exitcode = exitcode
        super().__init__(reason)


class JobError(Exception):
    """The handler raised inside the worker; the worker itself survived.

    ``kind`` is the original exception class name, ``detail`` its
    message, and ``trace`` the formatted traceback from the child.
    """

    def __init__(self, kind: str, detail: str, trace: str):
        self.kind = kind
        self.detail = detail
        self.trace = trace
        super().__init__(f"{kind}: {detail}")


def _child_loop(conn, handler, parent_conn=None):
    """Worker main: serve jobs off *conn* until EOF or parent death."""
    # A fresh process group would also work, but keeping the parent's
    # group lets Ctrl-C at the terminal reach the whole tree.
    #
    # The fork also inherits the *parent's* end of the pipe; close our
    # copy or EOF can never arrive.  Even then, sibling seats forked
    # later inherit this seat's parent end too, so a parent that dies
    # without cleanup (SIGKILL) may never produce EOF here — watch for
    # reparenting as the backstop, or the worker outlives the daemon.
    if parent_conn is not None:
        parent_conn.close()
    parent_pid = os.getppid()
    while True:
        try:
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    os._exit(0)
            job = conn.recv()
        except (EOFError, OSError):
            os._exit(0)
        if job is _SHUTDOWN:
            os._exit(0)
        try:
            result = handler(job)
            reply = ("ok", result)
        except BaseException as exc:  # noqa: BLE001 — child must not die
            reply = ("error", (type(exc).__name__, str(exc),
                               traceback.format_exc()))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            os._exit(1)


class _Shutdown:
    def __reduce__(self):
        return (_shutdown_sentinel, ())


def _shutdown_sentinel():
    return _SHUTDOWN


_SHUTDOWN = _Shutdown()


class ForkWorker:
    """One persistent forked worker on a duplex pipe.

    ``run(job, timeout)`` is synchronous: send the job, poll for the
    reply, and translate every way the child can fail into a structured
    exception.  Not thread-safe — :class:`WorkerPool` serializes access
    per seat.
    """

    def __init__(self, handler):
        self._handler = handler
        self._spawn()

    def _spawn(self):
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_child_loop,
            args=(child_conn, self._handler, parent_conn),
            daemon=True)
        self._proc.start()
        child_conn.close()
        self._conn = parent_conn
        self.jobs_done = 0

    @property
    def pid(self) -> int | None:
        return self._proc.pid

    def alive(self) -> bool:
        return self._proc.is_alive()

    def run(self, job, timeout: float | None = None):
        """Execute *job* in the child; return the handler's result.

        Raises :class:`JobError` if the handler raised (worker fine),
        :class:`WorkerCrash` if the child died or blew *timeout* —
        in both crash cases the seat is killed and respawned before
        the exception propagates, so the worker is immediately
        reusable.
        """
        if not self.alive():
            self._respawn()
        try:
            self._conn.send(job)
        except (BrokenPipeError, OSError):
            self._respawn()
            raise WorkerCrash("worker pipe closed before submit", job=job)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = 0.25 if deadline is None else min(
                0.25, max(0.0, deadline - time.monotonic()))
            if self._conn.poll(wait):
                try:
                    status, payload = self._conn.recv()
                except (EOFError, OSError):
                    exitcode = self._reap()
                    raise WorkerCrash(
                        f"worker died mid-job (exitcode={exitcode})",
                        job=job, exitcode=exitcode)
                self.jobs_done += 1
                if status == "ok":
                    return payload
                kind, detail, trace = payload
                raise JobError(kind, detail, trace)
            if not self._proc.is_alive():
                exitcode = self._reap()
                raise WorkerCrash(
                    f"worker died mid-job (exitcode={exitcode})",
                    job=job, exitcode=exitcode)
            if deadline is not None and time.monotonic() >= deadline:
                exitcode = self._reap()
                raise WorkerCrash(
                    f"worker deadline exceeded ({timeout:g}s); killed",
                    job=job, exitcode=exitcode)

    def _reap(self) -> int | None:
        """Kill (if needed) and respawn; return the old exitcode."""
        if self._proc.is_alive():
            self._proc.kill()
        self._proc.join(timeout=5.0)
        exitcode = self._proc.exitcode
        self._respawn()
        return exitcode

    def _respawn(self):
        try:
            self._conn.close()
        except OSError:
            pass
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(timeout=5.0)
        self._spawn()

    def close(self):
        if self._proc.is_alive():
            try:
                self._conn.send(_SHUTDOWN)
            except (BrokenPipeError, OSError):
                pass
            self._proc.join(timeout=2.0)
            if self._proc.is_alive():
                self._proc.kill()
                self._proc.join(timeout=5.0)
        try:
            self._conn.close()
        except OSError:
            pass


class WorkerPool:
    """A fixed set of :class:`ForkWorker` seats behind a checkout lock.

    ``run(job, timeout)`` blocks until a seat is free (bounded by the
    caller's own admission control — the server sheds load *before*
    reaching here), runs the job, and returns the seat even when the
    job crashed it (the seat respawned itself).  Thread-safe: designed
    to be driven from an executor under asyncio.
    """

    def __init__(self, handler, size: int = 2):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self._workers = [ForkWorker(handler) for _ in range(size)]
        self._idle = list(self._workers)
        self._cond = threading.Condition()
        self._closed = False
        self.crashes = 0

    @property
    def size(self) -> int:
        return len(self._workers)

    def run(self, job, timeout: float | None = None):
        with self._cond:
            while not self._idle:
                if self._closed:
                    raise RuntimeError("pool is closed")
                self._cond.wait()
            if self._closed:
                raise RuntimeError("pool is closed")
            worker = self._idle.pop()
        try:
            return worker.run(job, timeout=timeout)
        except WorkerCrash:
            with self._cond:
                self.crashes += 1
            raise
        finally:
            with self._cond:
                self._idle.append(worker)
                self._cond.notify()

    def close(self):
        with self._cond:
            self._closed = True
            workers, self._workers = self._workers, []
            self._idle = []
            self._cond.notify_all()
        for worker in workers:
            worker.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
